"""The join-based SQL baseline (paper footnote 3).

The paper notes that star-free ``SEQ(C1, ..., Cn)`` under UNRESTRICTED mode
is expressible as an n-way join: *"For each incoming C4 tuple, we join it
with all the tuples that have arrived so far in the other 3 streams, apply
the join conditions and the timing conditions."*  This module implements
that formulation literally, as a DSMS without temporal operators would run
it:

* full tuple history per stream (optionally truncated by an explicit
  retention window, which a careful SQL author would add);
* on every last-stream arrival, a nested-loop join over the histories with
  timestamp-ordering predicates;
* arbitrary join conditions via a binding predicate.

Two properties matter for the benchmarks:

1. **Equivalence** — with the same retention, its output matches
   UNRESTRICTED SEQ exactly (a property test asserts this).
2. **Cost** — per-arrival work is the product of history sizes, where SEQ
   with RECENT/CHRONICLE is near-constant; and it cannot express ``R1*``
   at all (:attr:`supports_star` is False — Example 4 motivates the
   language extension precisely because "detection of this pattern cannot
   be expressed using regular join operators").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Mapping, Sequence

from ..dsms.engine import Engine
from ..dsms.errors import EslSemanticError
from ..dsms.tuples import Tuple

#: The baseline can only express fixed-length sequences.
supports_star = False

BindingPredicate = Callable[[Mapping[str, Tuple]], bool]
MatchCallback = Callable[[dict[str, Tuple]], None]


class JoinSequenceBaseline:
    """n-way windowed self-join sequence detection.

    Args:
        engine: source of streams.
        streams: stream names, in sequence order; the last is the trigger.
        aliases: binding names (default: the stream names).
        predicate: optional condition over the full binding (the WHERE
            residue: equality on tag ids, timing conditions, ...).
        retention: optional seconds of history to retain per stream (what a
            SQL window clause would give); None keeps everything, which is
            the literal footnote-3 formulation.
        on_match: callback per produced combination.
    """

    def __init__(
        self,
        engine: Engine,
        streams: Sequence[str],
        aliases: Sequence[str] | None = None,
        predicate: BindingPredicate | None = None,
        retention: float | None = None,
        on_match: MatchCallback | None = None,
        store_matches: bool = True,
    ) -> None:
        if len(streams) < 2:
            raise EslSemanticError("a sequence join needs at least two streams")
        self.engine = engine
        self.streams = list(streams)
        self.aliases = list(aliases) if aliases is not None else list(streams)
        if len(self.aliases) != len(self.streams):
            raise EslSemanticError("aliases must match streams one-to-one")
        self.predicate = predicate
        self.retention = retention
        self.store_matches = store_matches
        self.matches: list[dict[str, Tuple]] = []
        self._on_match = on_match
        self.matches_emitted = 0
        self.tuples_seen = 0
        self.join_probes = 0  # candidate combinations examined (cost metric)
        self._histories: list[list[Tuple]] = [
            [] for _ in range(len(streams) - 1)
        ]
        self._positions: dict[str, list[int]] = {}
        for index, name in enumerate(self.streams):
            self._positions.setdefault(name.lower(), []).append(index)
        self._unsubscribes = [
            engine.streams.get(name).subscribe(self._on_tuple)
            for name in set(s.lower() for s in self.streams)
        ]

    def stop(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    @property
    def state_size(self) -> int:
        return sum(len(history) for history in self._histories)

    def drain_matches(self) -> list[dict[str, Tuple]]:
        out = self.matches
        self.matches = []
        return out

    # -- ingestion ---------------------------------------------------------

    def _on_tuple(self, tup: Tuple) -> None:
        self.tuples_seen += 1
        positions = self._positions.get(tup.stream.lower(), ())
        last = len(self.streams) - 1
        for index in positions:
            if index == last:
                self._join(tup)
            else:
                self._histories[index].append(tup)
        if self.retention is not None:
            horizon = tup.ts - self.retention
            for history in self._histories:
                keep_from = 0
                while keep_from < len(history) and history[keep_from].ts < horizon:
                    keep_from += 1
                if keep_from:
                    del history[:keep_from]

    def _join(self, anchor: Tuple) -> None:
        """Nested-loop join: all time-ordered combinations ending at *anchor*."""
        n = len(self.streams)
        binding: dict[str, Tuple] = {self.aliases[n - 1]: anchor}
        chain: list[Tuple | None] = [None] * n
        chain[n - 1] = anchor

        def descend(index: int, upper: Tuple) -> None:
            history = self._histories[index]
            cut = bisect_left(history, upper)
            for candidate in history[:cut]:
                self.join_probes += 1
                chain[index] = candidate
                binding[self.aliases[index]] = candidate
                if index == 0:
                    if self.predicate is None or self.predicate(binding):
                        self._emit(dict(binding))
                else:
                    descend(index - 1, candidate)
            chain[index] = None
            binding.pop(self.aliases[index], None)

        descend(n - 2, anchor)

    def _emit(self, binding: dict[str, Tuple]) -> None:
        self.matches_emitted += 1
        if self.store_matches:
            self.matches.append(binding)
        if self._on_match is not None:
            self._on_match(binding)

    def __repr__(self) -> str:
        return (
            f"JoinSequenceBaseline({' -> '.join(self.aliases)}, "
            f"matches={self.matches_emitted}, state={self.state_size}, "
            f"probes={self.join_probes})"
        )
