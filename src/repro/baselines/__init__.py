"""Baselines the paper compares against: the n-way join formulation of
sequence detection (footnote 3) and an RCEDA-style graph event engine [23]."""

from .join_baseline import JoinSequenceBaseline
from .rceda import (
    AndNode,
    EventInstance,
    Node,
    NotNode,
    OrNode,
    PrimitiveNode,
    RcedaEngine,
    SeqNode,
    StarContainmentDetector,
    StarSeqNode,
)

__all__ = [
    "AndNode",
    "EventInstance",
    "JoinSequenceBaseline",
    "Node",
    "NotNode",
    "OrNode",
    "PrimitiveNode",
    "RcedaEngine",
    "SeqNode",
    "StarContainmentDetector",
    "StarSeqNode",
]
