"""RCEDA-style graph-based composite event engine (paper reference [23]).

The paper's first comparison point is the declarative rule-based RFID event
system of Wang et al., whose engine (RCEDA) detects composite events with a
*graph-based processing model*: each event constructor is a node in a DAG;
primitive event instances enter at the leaves and propagate upward, each
node combining child instances into composite instances.  The paper's
critiques, which the ablation benchmark quantifies:

* "takes a simple graph-based processing model and lacks optimization
  techniques" — nodes retain full instance histories (no pairing-mode
  purging);
* "windows are not natural constructs" — time limits are per-constructor
  interval parameters checked during composition, not windows that bound
  state; expired instances are only discarded when a *sweep* is explicitly
  requested.

Constructors implemented (the core set from [23]):

* :class:`PrimitiveNode` — one per observed stream;
* :class:`SeqNode` — binary sequence ``SEQ(E1, E2)`` with an optional
  ``within`` interval between the two ends;
* :class:`StarSeqNode` — ``E+`` runs segmented by a maximum inter-arrival
  gap (the TSEQ+-style constructor [23] uses for aggregation patterns);
* :class:`AndNode` / :class:`OrNode` — conjunction / disjunction;
* :class:`NotNode` — negation of an event within an interval around
  another event, evaluated at sweep time.

The engine is deliberately faithful to the critique, not improved.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..dsms.engine import Engine
from ..dsms.tuples import Tuple


class EventInstance:
    """A (composite) event instance: constituent tuples plus interval."""

    __slots__ = ("tuples", "start", "end")

    def __init__(self, tuples: Sequence[Tuple]) -> None:
        self.tuples = tuple(tuples)
        self.start = self.tuples[0].ts
        self.end = self.tuples[-1].ts

    def __repr__(self) -> str:
        return f"EventInstance([{self.start:g},{self.end:g}], {len(self.tuples)} tuples)"


class Node:
    """Base constructor node: stores every instance it ever produced."""

    def __init__(self) -> None:
        self.instances: list[EventInstance] = []
        self.parents: list["Node"] = []
        self.callbacks: list[Callable[[EventInstance], None]] = []

    def add_parent(self, parent: "Node") -> None:
        self.parents.append(parent)

    def on_instance(self, callback: Callable[[EventInstance], None]) -> None:
        self.callbacks.append(callback)

    def publish(self, instance: EventInstance) -> None:
        self.instances.append(instance)
        for callback in self.callbacks:
            callback(instance)
        for parent in self.parents:
            parent.child_produced(self, instance)

    def child_produced(self, child: "Node", instance: EventInstance) -> None:
        raise NotImplementedError

    @property
    def state_size(self) -> int:
        return len(self.instances)

    def sweep(self, horizon: float) -> int:
        """Discard instances ending before *horizon*; returns drop count.

        RCEDA has no automatic window purging — the application must call
        this explicitly, which is exactly the paper's complaint.
        """
        before = len(self.instances)
        self.instances = [i for i in self.instances if i.end >= horizon]
        return before - len(self.instances)


class PrimitiveNode(Node):
    """Leaf node fed by one stream."""

    def __init__(self, stream: str) -> None:
        super().__init__()
        self.stream = stream

    def ingest(self, tup: Tuple) -> None:
        self.publish(EventInstance([tup]))

    def child_produced(self, child: Node, instance: EventInstance) -> None:
        raise AssertionError("primitive nodes have no children")


class SeqNode(Node):
    """Binary sequence: an E2 instance following an E1 instance.

    Unrestricted pairing: every retained E1 instance that ends before the
    new E2 instance starts yields a composite (subject to ``within``).
    """

    def __init__(self, left: Node, right: Node, within: float | None = None) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.within = within
        left.add_parent(self)
        right.add_parent(self)

    def child_produced(self, child: Node, instance: EventInstance) -> None:
        if child is self.right:
            for earlier in self.left.instances:
                if earlier.end >= instance.start:
                    continue
                if self.within is not None and (
                    instance.start - earlier.end > self.within
                ):
                    continue
                self.publish(EventInstance([*earlier.tuples, *instance.tuples]))
        # Left-child instances are just retained (self.left.instances).


class StarSeqNode(Node):
    """``E+`` runs: consecutive child instances separated by <= max_gap.

    Publishes the *run so far is closed* instance when a gap violation or an
    explicit close occurs; the currently-open run is matched by parent
    SeqNodes through :meth:`open_run`.
    """

    def __init__(self, child: Node, max_gap: float | None = None) -> None:
        super().__init__()
        self.child = child
        self.max_gap = max_gap
        self._open: list[EventInstance] = []
        self.closed_runs: list[EventInstance] = []
        child.add_parent(self)

    def child_produced(self, child: Node, instance: EventInstance) -> None:
        if self._open and self.max_gap is not None:
            gap = instance.start - self._open[-1].end
            if gap > self.max_gap:
                self._close()
        self._open.append(instance)

    def _close(self) -> None:
        if not self._open:
            return
        tuples = [t for inst in self._open for t in inst.tuples]
        run = EventInstance(tuples)
        self.closed_runs.append(run)
        self.publish(run)
        self._open = []

    def runs_before(self, ts: float, within: float | None) -> list[EventInstance]:
        """Closed and open runs ending before *ts* (within the interval)."""
        candidates = list(self.closed_runs)
        if self._open and self._open[-1].end < ts:
            tuples = [t for inst in self._open for t in inst.tuples]
            candidates.append(EventInstance(tuples))
        out = []
        for run in candidates:
            if run.end >= ts:
                continue
            if within is not None and ts - run.end > within:
                continue
            out.append(run)
        return out

    def consume_run(self, run: EventInstance) -> None:
        """Chronicle-style consumption used by StarContainmentDetector."""
        self.closed_runs = [r for r in self.closed_runs if r is not run]
        if self._open and run.tuples and self._open[0].tuples:
            if run.tuples[0] is self._open[0].tuples[0]:
                self._open = []

    @property
    def state_size(self) -> int:
        return (
            len(self.instances)
            + len(self._open)
            + sum(len(r.tuples) for r in self.closed_runs)
        )


class AndNode(Node):
    """Both children have occurred (any order)."""

    def __init__(self, left: Node, right: Node) -> None:
        super().__init__()
        self.left = left
        self.right = right
        left.add_parent(self)
        right.add_parent(self)

    def child_produced(self, child: Node, instance: EventInstance) -> None:
        other = self.right if child is self.left else self.left
        for counterpart in other.instances:
            tuples = sorted(
                [*instance.tuples, *counterpart.tuples], key=lambda t: (t.ts, t.seq)
            )
            self.publish(EventInstance(tuples))


class OrNode(Node):
    """Either child occurred."""

    def __init__(self, left: Node, right: Node) -> None:
        super().__init__()
        left.add_parent(self)
        right.add_parent(self)

    def child_produced(self, child: Node, instance: EventInstance) -> None:
        self.publish(instance)


class NotNode(Node):
    """E1 occurred with no E2 instance inside [start - before, end + after].

    Decidable only once time has advanced past ``end + after``; evaluated
    lazily by :meth:`evaluate` (RCEDA-style periodic evaluation rather than
    the DSMS's active timers).
    """

    def __init__(self, positive: Node, negative: Node,
                 before: float, after: float) -> None:
        super().__init__()
        self.positive = positive
        self.negative = negative
        self.before = before
        self.after = after
        self._pending: list[EventInstance] = []
        positive.add_parent(self)
        negative.add_parent(self)

    def child_produced(self, child: Node, instance: EventInstance) -> None:
        if child is self.positive:
            self._pending.append(instance)

    def evaluate(self, now: float) -> None:
        """Resolve pending positives whose decision point has passed."""
        still: list[EventInstance] = []
        for instance in self._pending:
            deadline = instance.end + self.after
            if now < deadline:
                still.append(instance)
                continue
            lo = instance.start - self.before
            hi = instance.end + self.after
            vetoed = any(
                lo <= neg.start and neg.end <= hi
                for neg in self.negative.instances
            )
            if not vetoed:
                self.publish(instance)
        self._pending = still

    @property
    def state_size(self) -> int:
        return len(self.instances) + len(self._pending)


class RcedaEngine:
    """The graph engine: routes stream tuples into primitive nodes."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.primitives: dict[str, PrimitiveNode] = {}
        self.nodes: list[Node] = []
        self._unsubscribes: list[Callable[[], None]] = []
        self.tuples_seen = 0

    def primitive(self, stream: str) -> PrimitiveNode:
        key = stream.lower()
        node = self.primitives.get(key)
        if node is None:
            node = PrimitiveNode(stream)
            self.primitives[key] = node
            self.nodes.append(node)
            source = self.engine.streams.get(stream)

            def ingest(tup: Tuple, node: PrimitiveNode = node) -> None:
                self.tuples_seen += 1
                node.ingest(tup)

            self._unsubscribes.append(source.subscribe(ingest))
        return node

    def register(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    def seq(self, left: Node, right: Node, within: float | None = None) -> SeqNode:
        return self.register(SeqNode(left, right, within))  # type: ignore[return-value]

    def star(self, child: Node, max_gap: float | None = None) -> StarSeqNode:
        return self.register(StarSeqNode(child, max_gap))  # type: ignore[return-value]

    def and_(self, left: Node, right: Node) -> AndNode:
        return self.register(AndNode(left, right))  # type: ignore[return-value]

    def or_(self, left: Node, right: Node) -> OrNode:
        return self.register(OrNode(left, right))  # type: ignore[return-value]

    def not_(self, positive: Node, negative: Node,
             before: float, after: float) -> NotNode:
        return self.register(NotNode(positive, negative, before, after))  # type: ignore[return-value]

    def stop(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    @property
    def state_size(self) -> int:
        return sum(node.state_size for node in self.nodes)

    def sweep(self, horizon: float) -> int:
        return sum(node.sweep(horizon) for node in self.nodes)

    def __repr__(self) -> str:
        return f"RcedaEngine({len(self.nodes)} nodes, state={self.state_size})"


class StarContainmentDetector:
    """The Figure 1 containment pattern expressed in RCEDA constructors.

    ``SEQ(StarSeq(R1, gap<=t1), R2, within<=t0)`` with chronicle-style run
    consumption so each run packs into one case.  Used by the A3 benchmark
    to compare accuracy and state against the ESL-EV query.
    """

    def __init__(
        self,
        engine: Engine,
        product_stream: str,
        case_stream: str,
        intra_gap: float = 1.0,
        case_delay: float = 5.0,
    ) -> None:
        self.graph = RcedaEngine(engine)
        products = self.graph.primitive(product_stream)
        cases = self.graph.primitive(case_stream)
        self.star = self.graph.star(products, max_gap=intra_gap)
        self.case_delay = case_delay
        self.results: list[tuple[str, list[str]]] = []

        def on_case(instance: EventInstance,
                    star: StarSeqNode = self.star) -> None:
            case_tuple = instance.tuples[0]
            runs = star.runs_before(case_tuple.ts, within=self.case_delay)
            if not runs:
                return
            run = runs[0]  # earliest (chronicle)
            star.consume_run(run)
            self.results.append(
                (
                    str(case_tuple["tagid"]),
                    [str(t["tagid"]) for t in run.tuples],
                )
            )

        cases.on_instance(on_case)

    @property
    def state_size(self) -> int:
        return self.graph.state_size

    def stop(self) -> None:
        self.graph.stop()
