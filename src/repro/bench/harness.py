"""Benchmark harness: consistent row/series printing.

The paper has no measurement tables of its own (it is a language-design
paper), so the harness defines the house format every experiment reports
in: a named experiment, parameter columns, and measured columns — printed
as an aligned text table so ``pytest benchmarks/ --benchmark-only -s``
reads like an evaluation section.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Sequence


class ResultTable:
    """An aligned text table accumulated row by row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_format(value) for value in values])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(
            col.ljust(widths[index]) for index, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


class Timed:
    """Context manager measuring wall-clock seconds."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._start


def sweep(values: Iterable[Any], fn: Callable[[Any], Sequence[Any]],
          table: ResultTable) -> ResultTable:
    """Run *fn* for each parameter value, adding its row to *table*."""
    for value in values:
        table.add(*fn(value))
    return table
