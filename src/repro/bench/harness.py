"""Benchmark harness: consistent row/series printing and JSON reports.

The paper has no measurement tables of its own (it is a language-design
paper), so the harness defines the house format every experiment reports
in: a named experiment, parameter columns, and measured columns — printed
as an aligned text table so ``pytest benchmarks/ --benchmark-only -s``
reads like an evaluation section.

For tracking performance over time, :class:`BenchReport` writes the same
measurements machine-readably as ``BENCH_<name>.json`` in the repository
root (or a caller-chosen directory): per-experiment throughput in
tuples/s, p50/p99 per-tuple latency in microseconds, and operator state
size, plus free-form parameters.  CI archives these files so perf
trajectories survive across runs.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Any, Callable, Iterable, Mapping, Sequence


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def standard_meta(
    *,
    execution_tier: str | None = None,
    pairing_tier: str | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """The uniform meta keys every :class:`BenchReport` carries.

    Runners historically hand-rolled their meta dicts and the keys
    drifted: some emitted ``cpu_count``, some ``effective_cpu_count``,
    some both, and none recorded which execution tier the engines ran
    at.  Every runner now builds its meta through this helper, which
    pins the house keys — ``effective_cpu_count`` (affinity-aware),
    ``cpu_count`` (legacy alias, same value), ``python``, the active
    admission ``execution_tier``, and the active ``pairing_tier`` (the
    SEQ match-enumeration mask tier, which shares admission's ladder)
    — and merges runner-specific keys on top.
    """
    cpus = effective_cpu_count()
    meta: dict[str, Any] = {
        "effective_cpu_count": cpus,
        "cpu_count": cpus,
        "python": platform.python_version(),
    }
    if execution_tier is not None:
        meta["execution_tier"] = execution_tier
    if pairing_tier is not None:
        meta["pairing_tier"] = pairing_tier
    meta.update(extra)
    return meta


class ResultTable:
    """An aligned text table accumulated row by row."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_format(value) for value in values])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(
            col.ljust(widths[index]) for index, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


class Timed:
    """Context manager measuring wall-clock seconds."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._start


def sweep(values: Iterable[Any], fn: Callable[[Any], Sequence[Any]],
          table: ResultTable) -> ResultTable:
    """Run *fn* for each parameter value, adding its row to *table*."""
    for value in values:
        table.add(*fn(value))
    return table


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Matches ``statistics.quantiles(..., method='inclusive')`` at interior
    points and clamps to min/max at the ends, so p50 of two samples is
    their mean and p99 of a small sample set is (close to) its max.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class BenchReport:
    """Accumulates experiments and writes them as ``BENCH_<name>.json``.

    Each experiment is one measured configuration: a label, its
    parameters, and the house metrics — throughput (tuples/s), p50/p99
    per-tuple latency (µs, from a list of per-tuple seconds), and state
    size (resident operator state after the run, in whatever unit the
    benchmark defines — typically retained tuples).
    """

    SCHEMA_VERSION = 1

    def __init__(self, name: str, meta: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.meta = dict(meta or {})
        self.experiments: list[dict[str, Any]] = []

    def add_experiment(
        self,
        label: str,
        *,
        n_tuples: int,
        seconds: float,
        latencies_s: Sequence[float] | None = None,
        state_size: int | None = None,
        shards: int | None = None,
        params: Mapping[str, Any] | None = None,
        **extra: Any,
    ) -> dict[str, Any]:
        """Record one configuration; returns the entry (already appended).

        ``shards`` marks a sharded-engine run so trajectory tooling can
        group one benchmark's scaling arms without parsing labels.
        """
        entry: dict[str, Any] = {
            "label": label,
            "n_tuples": int(n_tuples),
            "seconds": float(seconds),
            "throughput_tuples_per_s": (
                n_tuples / seconds if seconds > 0 else 0.0
            ),
        }
        if shards is not None:
            entry["shards"] = int(shards)
        if latencies_s:
            entry["latency_us"] = {
                "p50": percentile(latencies_s, 50.0) * 1e6,
                "p99": percentile(latencies_s, 99.0) * 1e6,
                "max": max(latencies_s) * 1e6,
                "samples": len(latencies_s),
            }
        if state_size is not None:
            entry["state_size"] = int(state_size)
        if params:
            entry["params"] = dict(params)
        entry.update(extra)
        self.experiments.append(entry)
        return entry

    def add_scaling_curve(
        self,
        label: str,
        points: Sequence[tuple[int, float]],
        *,
        n_tuples: int,
        baseline_shards: int = 1,
        params: Mapping[str, Any] | None = None,
        **extra: Any,
    ) -> dict[str, Any]:
        """Record a shard-count scaling curve as one entry.

        ``points`` is a sequence of ``(shards, seconds)`` measurements over
        the *same* workload of ``n_tuples`` records.  Speedups are computed
        against the ``baseline_shards`` point (which must be present).
        """
        by_shards = {int(shards): float(seconds) for shards, seconds in points}
        if baseline_shards not in by_shards:
            raise ValueError(
                f"baseline shards={baseline_shards} missing from curve "
                f"points {sorted(by_shards)}"
            )
        baseline_seconds = by_shards[baseline_shards]
        curve = [
            {
                "shards": shards,
                "seconds": seconds,
                "throughput_tuples_per_s": (
                    n_tuples / seconds if seconds > 0 else 0.0
                ),
                "speedup": (baseline_seconds / seconds if seconds > 0 else 0.0),
            }
            for shards, seconds in sorted(by_shards.items())
        ]
        entry: dict[str, Any] = {
            "label": label,
            "kind": "scaling_curve",
            "n_tuples": int(n_tuples),
            "baseline_shards": int(baseline_shards),
            "curve": curve,
        }
        if params:
            entry["params"] = dict(params)
        entry.update(extra)
        self.experiments.append(entry)
        return entry

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.SCHEMA_VERSION,
            "name": self.name,
            "meta": self.meta,
            "experiments": self.experiments,
        }

    def write(self, directory: str | None = None) -> str:
        """Write ``BENCH_<name>.json`` into *directory* (default: cwd)."""
        payload = self.as_dict()
        target = os.path.join(directory or os.getcwd(), f"BENCH_{self.name}.json")
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return target


def measure_latencies(
    push_one: Callable[[], Any], n: int
) -> list[float]:
    """Call *push_one* *n* times, returning per-call wall-clock seconds.

    A helper for per-tuple latency sampling: the caller binds the record
    iterator into ``push_one`` and this loop times each delivery
    individually (distinct from throughput runs, which time the batch)."""
    clock = time.perf_counter
    out = []
    append = out.append
    for _ in range(n):
        start = clock()
        push_one()
        append(clock() - start)
    return out
