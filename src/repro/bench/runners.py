"""Named benchmark runners shared by the CLI and ``benchmarks/`` scripts.

Each runner builds its own workload, measures, and returns a
:class:`BenchReport`; callers decide where to write it.  The registry maps
the public benchmark name (as used by ``python -m repro bench <name>``)
to its runner, so the CLI, CI smoke jobs, and the pytest wrappers under
``benchmarks/`` all execute exactly the same measurement code.
"""

from __future__ import annotations

import gc
import os
import random
import time
from typing import Any, Callable, Mapping, Sequence

from .harness import (
    BenchReport,
    effective_cpu_count,
    measure_latencies,
    standard_meta,
)


def active_execution_tier(
    compile_expressions: bool = True,
    vectorized_admission: bool = True,
    native_admission: bool = False,
) -> str:
    """The admission tier an Engine with these flags actually runs at.

    Mirrors :meth:`~repro.dsms.engine.Engine.execution_tier`'s
    degradation ladder (native needs a C compiler on the host), so bench
    metadata records what was measured, not just what was requested.
    """
    if native_admission:
        from ..dsms.native import find_compiler

        if find_compiler() is not None:
            return "native"
    if vectorized_admission:
        return "vector"
    if compile_expressions:
        return "closure"
    return "interpreted"


def _timed_feed(
    make_scenario: Callable[[], Any], reps: int, keep: bool = False
) -> tuple[float, list[dict], Any]:
    """Best-of-*reps* wall-clock seconds for feeding one fresh scenario.

    Every rep builds a fresh engine (sharded reps spawn fresh worker
    processes, so startup cost is outside the timed region: the clock
    starts at the first push).  Returns ``(best_seconds, rows, scenario)``
    where *scenario* is the last rep's fed scenario when ``keep`` is set
    (so callers can read operator statistics) and None otherwise — kept
    scenarios are not closed; the caller owns them.
    """
    best = float("inf")
    rows: list[dict] = []
    scenario = None
    for rep in range(reps):
        scenario = make_scenario()
        gc.disable()
        try:
            start = time.perf_counter()
            scenario.feed()
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
        rows = scenario.rows()
        best = min(best, seconds)
        if keep and rep == reps - 1:
            break
        close = getattr(scenario.engine, "close", None)
        if close is not None:
            close()
    return best, rows, scenario if keep else None


# ---------------------------------------------------------------------------
# sharded_scaling — weak scaling of ShardedEngine on Example 6
# ---------------------------------------------------------------------------


def run_sharded_scaling(
    *,
    n_products: int = 150,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    executor: str = "parallel",
    codec: str = "framed",
    batch_size: int = 512,
    reps: int | None = None,
    seed: int = 122,
) -> BenchReport:
    """Example 6 SEQ weak-scaling across shard counts, with correctness.

    Each arm processes ``n_products * n_shards`` products — the workload
    grows with the shard count, so an arm always has enough tuples to
    amortize process hand-off (a fixed 298-tuple trace across 8 shards
    measured dispatch overhead, not scaling).  Under ideal weak scaling
    the wall-clock stays flat as shards grow; ``weak_efficiency`` is the
    smallest arm's seconds over this arm's seconds.

    Every arm is also timed against a single :class:`~repro.dsms.engine.
    Engine` on the *same* workload (``speedup_vs_single``), and the merged
    sharded output must equal the single-engine output row for row — a
    wrong-but-fast shard is a bug, not a result.  Arms with more shards
    than available CPUs are tagged ``cpu_limited`` so a flat-to-negative
    point on a starved host isn't read as a real regression.
    """
    from ..rfid import build_quality_check, build_quality_check_sharded
    from ..rfid import quality_check_workload

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    cpus = effective_cpu_count()
    shard_counts = tuple(shard_counts)

    report = BenchReport(
        "sharded_scaling",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=active_execution_tier(),
            workload="example6-quality",
            scaling_mode="weak",
            n_products_per_shard=n_products,
            executor=executor,
            codec=codec if executor == "parallel" else None,
            batch_size=batch_size,
            reps=reps,
            cpu_limited=cpus < max(shard_counts),
            note=(
                "weak scaling: each arm feeds n_products_per_shard * "
                "n_shards products, so ideal scaling holds seconds flat "
                "as shards grow; arms with n_shards > cpu_count are "
                "tagged cpu_limited"
            ),
        ),
    )

    baseline_seconds: float | None = None
    for n_shards in shard_counts:
        workload = quality_check_workload(
            n_products=n_products * n_shards, seed=seed
        )
        n_tuples = len(workload.trace)
        single_seconds, reference_rows, _ = _timed_feed(
            lambda w=workload: build_quality_check(w), reps
        )
        sharded_kwargs: dict[str, Any] = {}
        if executor == "parallel":
            sharded_kwargs["codec"] = codec
        sharded_seconds, rows, _ = _timed_feed(
            lambda w=workload, n=n_shards: build_quality_check_sharded(
                w, n_shards=n, executor=executor, batch_size=batch_size,
                **sharded_kwargs,
            ),
            reps,
        )
        if rows != reference_rows:
            raise AssertionError(
                f"sharded output diverged from single engine at "
                f"{n_shards} shards ({len(rows)} vs {len(reference_rows)} rows)"
            )
        if baseline_seconds is None:
            baseline_seconds = sharded_seconds
        report.add_experiment(
            f"single-{n_shards}x",
            n_tuples=n_tuples,
            seconds=single_seconds,
            params={"engine": "Engine", "n_products": n_products * n_shards},
        )
        report.add_experiment(
            f"sharded-{n_shards}",
            n_tuples=n_tuples,
            seconds=sharded_seconds,
            shards=n_shards,
            params={
                "engine": "ShardedEngine",
                "executor": executor,
                "n_products": n_products * n_shards,
            },
            speedup_vs_single=(
                single_seconds / sharded_seconds if sharded_seconds else 0.0
            ),
            weak_efficiency=(
                baseline_seconds / sharded_seconds if sharded_seconds else 0.0
            ),
            cpu_limited=n_shards > cpus,
        )
    return report


def scaling_speedup(report: BenchReport, shards: int) -> float | None:
    """Speedup at *shards*: the arm's single-engine speedup for weak-scaling
    reports, or the curve point for (older) strong-scaling reports."""
    for entry in report.experiments:
        if entry.get("kind") == "scaling_curve":
            for point in entry["curve"]:
                if point["shards"] == shards:
                    return point["speedup"]
        elif entry.get("shards") == shards and "speedup_vs_single" in entry:
            return entry["speedup_vs_single"]
    return None


def weak_efficiency(report: BenchReport, shards: int) -> float | None:
    """Weak-scaling efficiency at *shards* (1.0 = perfectly flat)."""
    for entry in report.experiments:
        if entry.get("shards") == shards and "weak_efficiency" in entry:
            return entry["weak_efficiency"]
    return None


# ---------------------------------------------------------------------------
# shard_transport — futures-pickle vs pipe-pickle vs pipe-framed ablation
# ---------------------------------------------------------------------------

#: The three transport arms: (label, executor kind, codec or None).
TRANSPORT_ARMS: Sequence[tuple[str, str, str | None]] = (
    ("futures-pickle", "futures", None),
    ("pipe-pickle", "parallel", "pickle"),
    ("pipe-framed", "parallel", "framed"),
)


def run_shard_transport(
    *,
    n_products: int = 600,
    shard_counts: Sequence[int] = (2, 4),
    batch_size: int = 512,
    reps: int | None = None,
    seed: int = 122,
) -> BenchReport:
    """Shard-transport ablation on the weak-scaling Example 6 workload.

    Three arms move the *same* records to the *same* shard engines over
    different plumbing:

    * ``futures-pickle`` — the legacy :class:`ProcessPoolExecutor`
      submit-per-batch transport (one pickled work item and one pickled
      result per epoch, through the pool's queue machinery);
    * ``pipe-pickle`` — persistent pipe workers, payloads pickled whole;
    * ``pipe-framed`` — persistent pipe workers, struct-packed columnar
      frames with interned stream ids (see :mod:`repro.dsms.transport`).

    Every arm is warmed (``ShardedEngine.start()`` runs outside the timed
    region, for all arms alike — lazy pool spawn inside the clock would
    charge process startup to the futures arm only), reps interleave
    across arms so host drift degrades each best-of equally, and each
    arm's merged rows must equal the single-engine reference row for row.

    Wire accounting comes from :meth:`ShardedEngine.transport_stats`:
    bytes on the wire in each direction, frame and round-trip counts,
    heartbeat-only frames, and codec encode/decode seconds.  The futures
    arm counts bytes in one extra untimed rep with ``measure_bytes=True``
    (its double-pickle accounting must not pollute the timed run).

    On hosts with fewer CPUs than ``n_shards + 1`` the arms serialize
    onto the same cores, wall-clock collapses to total CPU work, and the
    pipe transport's latency hiding cannot show; such arms are tagged
    ``cpu_limited`` and the headline ``speedup_framed_vs_futures`` should
    be read as a parity check there, not as the transport win.
    """
    from ..rfid import build_quality_check, build_quality_check_sharded
    from ..rfid import quality_check_workload

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    cpus = effective_cpu_count()
    shard_counts = tuple(shard_counts)

    report = BenchReport(
        "shard_transport",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=active_execution_tier(),
            workload="example6-quality",
            scaling_mode="weak",
            n_products_per_shard=n_products,
            batch_size=batch_size,
            arms=[label for label, _, _ in TRANSPORT_ARMS],
            reps=reps,
            cpu_limited=cpus < max(shard_counts) + 1,
            note=(
                "transport ablation: same records, same shard engines, "
                "different plumbing; engines are started before the "
                "timed region for every arm alike; arms on hosts with "
                "cpu_count < n_shards + 1 serialize onto shared cores "
                "and are tagged cpu_limited"
            ),
        ),
    )

    def _build(arm_executor: str, codec: str | None, n_shards: int,
               workload: Any, **extra: Any) -> Any:
        kwargs: dict[str, Any] = {}
        if codec is not None:
            kwargs["codec"] = codec
        kwargs.update(extra)
        return build_quality_check_sharded(
            workload,
            n_shards=n_shards,
            executor=arm_executor,
            batch_size=batch_size,
            **kwargs,
        )

    speedups: dict[int, float] = {}
    for n_shards in shard_counts:
        workload = quality_check_workload(
            n_products=n_products * n_shards, seed=seed
        )
        n_tuples = len(workload.trace)
        single_seconds, reference_rows, _ = _timed_feed(
            lambda w=workload: build_quality_check(w), reps
        )
        arm_seconds = {label: float("inf") for label, _, _ in TRANSPORT_ARMS}
        arm_rows: dict[str, list] = {}
        arm_stats: dict[str, dict[str, Any]] = {}
        for rep in range(reps):
            for label, arm_executor, codec in TRANSPORT_ARMS:
                scenario = _build(arm_executor, codec, n_shards, workload)
                engine = scenario.engine.start()
                gc.disable()
                try:
                    start = time.perf_counter()
                    scenario.feed()
                    seconds = time.perf_counter() - start
                finally:
                    gc.enable()
                arm_seconds[label] = min(arm_seconds[label], seconds)
                if rep == reps - 1:
                    arm_rows[label] = scenario.rows()
                    arm_stats[label] = engine.transport_stats()
                engine.close()
        # Untimed byte-accounting rep for the futures arm (its wire
        # counter double-pickles every dispatch, so it stays out of the
        # timed loop above).
        scenario = _build(
            "futures", None, n_shards, workload, measure_bytes=True
        )
        engine = scenario.engine.start()
        scenario.feed()
        futures_totals = engine.transport_stats()["totals"]
        engine.close()
        arm_stats["futures-pickle"]["totals"]["bytes_sent"] = (
            futures_totals["bytes_sent"]
        )

        for label, arm_executor, codec in TRANSPORT_ARMS:
            if arm_rows[label] != reference_rows:
                raise AssertionError(
                    f"{label} output diverged from single engine at "
                    f"{n_shards} shards ({len(arm_rows[label])} vs "
                    f"{len(reference_rows)} rows)"
                )
            totals = arm_stats[label]["totals"]
            report.add_experiment(
                f"{label}-{n_shards}",
                n_tuples=n_tuples,
                seconds=arm_seconds[label],
                shards=n_shards,
                params={
                    "engine": "ShardedEngine",
                    "executor": arm_executor,
                    "codec": codec,
                    "n_products": n_products * n_shards,
                    "batch_size": batch_size,
                },
                speedup_vs_single=(
                    single_seconds / arm_seconds[label]
                    if arm_seconds[label]
                    else 0.0
                ),
                cpu_limited=n_shards + 1 > cpus,
                transport=totals,
            )
        report.add_experiment(
            f"single-{n_shards}x",
            n_tuples=n_tuples,
            seconds=single_seconds,
            params={"engine": "Engine", "n_products": n_products * n_shards},
        )
        speedups[n_shards] = (
            arm_seconds["futures-pickle"] / arm_seconds["pipe-framed"]
            if arm_seconds["pipe-framed"]
            else 0.0
        )

    report.meta["speedup_framed_vs_futures"] = speedups[shard_counts[0]]
    report.meta["speedup_framed_vs_futures_by_shards"] = {
        str(n): value for n, value in speedups.items()
    }
    return report


def transport_speedup(report: BenchReport, shards: int) -> float | None:
    """Framed-over-futures wall-clock speedup at *shards*, if measured."""
    by_shards = report.meta.get("speedup_framed_vs_futures_by_shards", {})
    value = by_shards.get(str(shards))
    return float(value) if value is not None else None


# ---------------------------------------------------------------------------
# operator_state — indexed vs. reference SEQ state layer
# ---------------------------------------------------------------------------

_QUALITY_STREAMS = ("c1", "c2", "c3", "c4")
_QUALITY_SCHEMA = "readerid str, tagid str, tagtime float"


def _operator_scenario(indexed: bool, window_seconds: float):
    """An Engine plus a bare Example 6 SEQ operator (no query layer).

    Driving the operator directly keeps SELECT projection and sink costs
    out of the measured loop, so the arms compare the state layer itself:
    admission, window eviction, match enumeration, and expiry.
    """
    from ..core.operators.base import OperatorWindow, PairingMode, SeqArg
    from ..core.operators.seq import SeqOperator
    from ..dsms.engine import Engine

    engine = Engine(indexed_state=indexed)
    for name in _QUALITY_STREAMS:
        engine.create_stream(name, _QUALITY_SCHEMA)
    args = [SeqArg(name, name.upper()) for name in _QUALITY_STREAMS]
    operator = SeqOperator(
        engine,
        args,
        mode=PairingMode.UNRESTRICTED,
        window=OperatorWindow(window_seconds, len(args) - 1, "preceding"),
        partition_by=lambda tup: tup.values[1],  # tagid
        store_matches=False,
    )
    return engine, operator


def _push_latencies(engine: Any, trace: Sequence[tuple]) -> list[float]:
    """Per-record delivery latencies for *trace* through ``engine.push``."""
    records = iter(trace)
    push = engine.push

    def push_one() -> None:
        stream, values, ts = next(records)
        push(stream, values, ts)

    return measure_latencies(push_one, len(trace))


def run_operator_state(
    *,
    n_products: int = 150,
    rereads: int = 5,
    window_minutes: float = 30.0,
    idle_counts: Sequence[int] = (500, 2000),
    reps: int | None = None,
    seed: int = 123,
) -> BenchReport:
    """Indexed vs. reference SEQ state layer on a many-partition workload.

    Three experiment families, each run with ``indexed_state`` on and off:

    * ``naive`` / ``indexed`` — the headline arms.  A bare Example 6
      UNRESTRICTED SEQ operator (one partition per tag) fed the quality
      workload with *rereads* reports per checkpoint dwell, so every
      anchor enumerates the full cross-product of re-reads — the dense
      enumeration the predecessor-cut index exists for.  Records
      throughput (best of *reps*), per-tuple latency percentiles, peak
      ``state_size``, and the expiry-work counters.
    * ``query-naive`` / ``query-indexed`` — the same workload end to end
      through the parsed Example 6 query (SELECT projection and collector
      included), with a row-for-row equality check between the arms.
    * ``idle-<n>-naive`` / ``idle-<n>-indexed`` — *n* one-shot tags (a
      single c1 read each, then silence) spread over 2.5 window widths.
      The reference sweep walks every live partition on the arrival that
      pays for it, so its worst single tick (``max_tick_touches``) grows
      with the tag count; the expiry heap pops only due partitions and
      stays flat.  The heap's heartbeat timer also drains state after the
      trace ends (``final_state_size`` 0), which the arrival-driven sweep
      cannot.
    """
    from ..rfid import quality_check_workload
    from ..rfid.scenarios import build_quality_check

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    window_seconds = window_minutes * 60.0
    workload = quality_check_workload(
        n_products=n_products, seed=seed, rereads=rereads
    )
    trace = workload.trace
    n_tuples = len(trace)

    report = BenchReport(
        "operator_state",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=active_execution_tier(),
            workload="example6-quality-rereads",
            n_products=n_products,
            rereads=rereads,
            window_minutes=window_minutes,
            n_tuples=n_tuples,
            reps=reps,
        ),
    )

    arms = (("naive", False), ("indexed", True))
    # Interleave the arms' reps (naive, indexed, naive, ...) so slow drift
    # on a shared host degrades both best-of measurements equally instead
    # of biasing whichever arm ran last.
    arm_seconds = {label: float("inf") for label, _ in arms}
    arm_operator: dict[str, Any] = {}
    for _ in range(reps):
        for label, indexed in arms:
            engine, operator = _operator_scenario(indexed, window_seconds)
            gc.disable()
            try:
                start = time.perf_counter()
                engine.run_trace(trace)
                arm_seconds[label] = min(
                    arm_seconds[label], time.perf_counter() - start
                )
            finally:
                gc.enable()
            arm_operator[label] = operator
    for label, indexed in arms:
        latency_engine, _latency_op = _operator_scenario(
            indexed, window_seconds
        )
        latencies = _push_latencies(latency_engine, trace)
        operator = arm_operator[label]
        report.add_experiment(
            label,
            n_tuples=n_tuples,
            seconds=arm_seconds[label],
            latencies_s=latencies,
            state_size=operator.peak_state_size,
            params={"driver": "operator", "indexed_state": indexed},
            matches=operator.matches_emitted,
            final_state_size=operator.state_size,
            sweep_touches=operator.sweep_touches,
            max_tick_touches=operator.max_tick_touches,
        )
    arm_matches = {
        label: operator.matches_emitted
        for label, operator in arm_operator.items()
    }
    if arm_matches["naive"] != arm_matches["indexed"]:
        raise AssertionError(
            f"indexed arm emitted {arm_matches['indexed']} matches vs "
            f"{arm_matches['naive']} from the reference path"
        )
    report.meta["speedup_indexed_vs_naive"] = (
        arm_seconds["naive"] / arm_seconds["indexed"]
        if arm_seconds["indexed"]
        else 0.0
    )

    query_rows: dict[str, list[dict]] = {}
    for label, indexed in (("query-naive", False), ("query-indexed", True)):
        seconds, rows, scenario = _timed_feed(
            lambda i=indexed: build_quality_check(
                workload,
                mode="UNRESTRICTED",
                window_minutes=window_minutes,
                indexed_state=i,
            ),
            reps,
            keep=True,
        )
        operator = scenario.handle.operator
        query_rows[label] = rows
        report.add_experiment(
            label,
            n_tuples=n_tuples,
            seconds=seconds,
            state_size=operator.peak_state_size,
            params={"driver": "query", "indexed_state": indexed},
            rows=len(rows),
        )
    if query_rows["query-naive"] != query_rows["query-indexed"]:
        raise AssertionError(
            "indexed query output diverged from the reference path "
            f"({len(query_rows['query-indexed'])} vs "
            f"{len(query_rows['query-naive'])} rows)"
        )

    for n_idle in idle_counts:
        spacing = (2.5 * window_seconds) / n_idle
        idle_trace = [
            (
                "c1",
                {
                    "readerid": "c1",
                    "tagid": f"idle.{index}",
                    "tagtime": index * spacing,
                },
                index * spacing,
            )
            for index in range(n_idle)
        ]
        for label, indexed in (("naive", False), ("indexed", True)):
            engine, operator = _operator_scenario(indexed, window_seconds)
            latencies = _push_latencies(engine, idle_trace)
            # Snapshot the expiry-work counters before the closing
            # heartbeat: one advance_time jump past the window legitimately
            # drains every remaining partition in a single batch, which
            # would mask the steady-state per-tick numbers.
            sweep_touches = operator.sweep_touches
            max_tick_touches = operator.max_tick_touches
            engine.advance_time(3.5 * window_seconds + 1.0)
            report.add_experiment(
                f"idle-{n_idle}-{label}",
                n_tuples=n_idle,
                seconds=sum(latencies),
                latencies_s=latencies,
                state_size=operator.peak_state_size,
                params={
                    "driver": "operator-idle",
                    "indexed_state": indexed,
                    "n_idle": n_idle,
                },
                final_state_size=operator.state_size,
                sweep_touches=sweep_touches,
                max_tick_touches=max_tick_touches,
            )
    return report


# ---------------------------------------------------------------------------
# vectorized_admission — columnar batch admission vs the scalar tuple path
# ---------------------------------------------------------------------------

_ADMISSION_SCHEMA = "tag_id int, pressure float, loc str"


def _admission_workload(
    n_rows: int, batch_rows: int, seed: int
) -> tuple[Any, list, list]:
    """A uniform-pressure readings trace, pre-shaped for every arm.

    Returns ``(schema, column_batches, row_records)`` where the batches
    and the flat ``(values, ts)`` record list carry identical rows —
    pressures are uniform on [0, 1), so a ``pressure < T`` filter admits
    a T fraction of them.  Shaping happens here, outside any timed
    region: the benchmark measures admission, not input marshalling.
    """
    import random

    from ..dsms.columns import ColumnBatch
    from ..dsms.schema import Schema

    rng = random.Random(seed)
    schema = Schema.parse(_ADMISSION_SCHEMA)
    locations = ("dock", "yard", "belt", "gate")
    rows = [
        (
            (index % 10_000, rng.random(), locations[index % 4]),
            float(index),
        )
        for index in range(n_rows)
    ]
    batches = [
        ColumnBatch.from_rows(schema, rows[start:start + batch_rows])
        for start in range(0, n_rows, batch_rows)
    ]
    return schema, batches, rows


def run_vectorized_admission(
    *,
    n_rows: int = 100_000,
    batch_rows: int = 512,
    selectivities: Sequence[float] = (0.01, 0.10, 0.50),
    reps: int | None = None,
    seed: int = 7,
) -> BenchReport:
    """Columnar vectorized admission vs the scalar compiled path.

    Both headline arms consume the *same* pre-built
    :class:`~repro.dsms.columns.ColumnBatch` stream through a compiled
    filter query; the only difference is the Engine's
    ``vectorized_admission`` flag:

    * ``scalar-*`` — flag off: every row materializes a ``Tuple`` and the
      compiled WHERE closure runs per tuple.
    * ``vectorized-*`` — flag on: the WHERE conjuncts evaluate once per
      batch over whole column arrays and only surviving rows materialize.

    A third ``rows-*`` arm feeds the identical records through the
    per-record ``push_batch`` path for context (what callers paid before
    batches stayed columnar).  Selectivity is the filter threshold itself
    (pressures are uniform on [0, 1)): at 1% the vectorized arm skips
    materializing ~99% of rows, which is where the win concentrates; at
    50% materialization dominates and the gap narrows.  Reps interleave
    across arms, and each selectivity asserts exact output equality
    between all three arms — same values, same timestamps, same order.
    """
    from ..dsms.engine import Engine

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    selectivities = tuple(selectivities)
    _schema, batches, rows = _admission_workload(n_rows, batch_rows, seed)

    report = BenchReport(
        "vectorized_admission",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=active_execution_tier(),
            workload="uniform-pressure-filter",
            n_rows=n_rows,
            batch_rows=batch_rows,
            selectivities=list(selectivities),
            reps=reps,
            note=(
                "single process; scalar and vectorized arms consume "
                "identical pre-built ColumnBatches through the same "
                "compiled filter query, differing only in the Engine's "
                "vectorized_admission flag; the rows arm is the "
                "per-record push_batch path for context"
            ),
        ),
    )

    def _make(vectorized: bool, threshold: float) -> tuple[Any, Any]:
        engine = Engine(vectorized_admission=vectorized)
        engine.create_stream("readings", _ADMISSION_SCHEMA)
        handle = engine.query(
            "SELECT tag_id, pressure FROM readings AS R "
            f"WHERE R.pressure < {threshold!r}"
        )
        return engine, handle

    arms = (
        ("scalar", False, "columns"),
        ("vectorized", True, "columns"),
        ("rows", False, "records"),
    )
    speedups: dict[float, float] = {}
    for threshold in selectivities:
        pct = f"{threshold * 100:g}pct"
        arm_seconds = {label: float("inf") for label, _, _ in arms}
        arm_rows: dict[str, list] = {}
        for _ in range(reps):
            for label, vectorized, shape in arms:
                engine, handle = _make(vectorized, threshold)
                gc.disable()
                try:
                    start = time.perf_counter()
                    if shape == "columns":
                        for batch in batches:
                            engine.push_columns("readings", batch)
                    else:
                        engine.push_batch("readings", rows)
                    seconds = time.perf_counter() - start
                finally:
                    gc.enable()
                arm_seconds[label] = min(arm_seconds[label], seconds)
                arm_rows[label] = [
                    (tup.values, tup.ts) for tup in handle.results
                ]
        reference = arm_rows["scalar"]
        for label, vectorized, shape in arms:
            if arm_rows[label] != reference:
                raise AssertionError(
                    f"{label} output diverged at selectivity {threshold} "
                    f"({len(arm_rows[label])} vs {len(reference)} rows)"
                )
            report.add_experiment(
                f"{label}-{pct}",
                n_tuples=n_rows,
                seconds=arm_seconds[label],
                params={
                    "selectivity": threshold,
                    "vectorized_admission": vectorized,
                    "input_shape": shape,
                },
                rows_admitted=len(arm_rows[label]),
            )
        speedups[threshold] = (
            arm_seconds["scalar"] / arm_seconds["vectorized"]
            if arm_seconds["vectorized"]
            else 0.0
        )
    report.meta["speedup_vectorized_vs_scalar"] = speedups[selectivities[0]]
    report.meta["speedup_vectorized_vs_scalar_by_selectivity"] = {
        f"{threshold:g}": value for threshold, value in speedups.items()
    }
    return report


def vectorized_speedup(
    report: BenchReport, selectivity: float
) -> float | None:
    """Vectorized-over-scalar speedup at *selectivity*, if measured."""
    by_sel = report.meta.get("speedup_vectorized_vs_scalar_by_selectivity", {})
    value = by_sel.get(f"{selectivity:g}")
    return float(value) if value is not None else None


# ---------------------------------------------------------------------------
# native_codegen — C admission kernels vs the closure and interpreted tiers
# ---------------------------------------------------------------------------

_NATIVE_ARMS = (
    # (label, Engine flags).  The native arm keeps the vector tier off so
    # the measured gap is C kernel vs Python closure, not a mix; when the
    # kernel cannot lower (or there is no compiler) it degrades to the
    # closure path and the arm measures parity, never breakage.
    ("interpreted", {"compile_expressions": False,
                     "vectorized_admission": False}),
    ("closure", {"vectorized_admission": False}),
    ("native", {"vectorized_admission": False, "native_admission": True}),
)


def _native_seq_workload(
    n_rows: int, batch_rows: int, seed: int
) -> list[tuple[str, Any]]:
    """Interleaved a/b ColumnBatches for the quality SEQ query.

    Tag cardinality scales with size so pairing output stays linear-ish
    and the timed region keeps measuring admission, not pair explosion.
    """
    from ..dsms.columns import ColumnBatch
    from ..dsms.schema import Schema

    rng = random.Random(seed)
    tags = max(64, n_rows // 20)
    schema_a = Schema.parse("tag_id str, v float")
    schema_b = Schema.parse("tag_id str, w float")
    per_stream = n_rows // 2
    batches: list[tuple[str, Any]] = []
    ts = 0.0
    for start in range(0, per_stream, batch_rows):
        count = min(batch_rows, per_stream - start)
        a_rows = [
            ({"tag_id": f"t{rng.randrange(tags)}", "v": rng.random()},
             ts + index)
            for index in range(count)
        ]
        b_rows = [
            ({"tag_id": f"t{rng.randrange(tags)}", "w": rng.random()},
             ts + count + index)
            for index in range(count)
        ]
        batches.append(("a", ColumnBatch.from_rows(schema_a, a_rows)))
        batches.append(("b", ColumnBatch.from_rows(schema_b, b_rows)))
        ts += 2.0 * count
    return batches


def _native_dedup_workload(
    n_rows: int, batch_rows: int, seed: int
) -> list[Any]:
    """Bursty duplicate readings for the paper's Example 1 dedup query."""
    from ..dsms.columns import ColumnBatch
    from ..dsms.schema import Schema

    rng = random.Random(seed)
    schema = Schema.parse("reader_id str, tag_id str, read_time float")
    rows = []
    ts = 0.0
    while len(rows) < n_rows:
        reader = f"g{rng.randrange(8)}"
        tag = f"t{rng.randrange(500)}"
        for _ in range(rng.randrange(1, 5)):  # in-window duplicates
            rows.append(
                ({"reader_id": reader, "tag_id": tag, "read_time": ts}, ts)
            )
            ts += 0.2
        ts += 3.0  # gap: next burst is a fresh logical reading
    rows = rows[:n_rows]
    return [
        ColumnBatch.from_rows(schema, rows[start:start + batch_rows])
        for start in range(0, n_rows, batch_rows)
    ]


def run_native_codegen(
    *,
    n_rows: int = 100_000,
    batch_rows: int = 512,
    selectivities: Sequence[float] = (0.01, 0.10, 0.50),
    seq_rows: int = 20_000,
    dedup_rows: int = 20_000,
    reps: int | None = None,
    seed: int = 7,
) -> BenchReport:
    """Native C admission kernels vs the closure and interpreted tiers.

    Three arms run every workload through identical pre-built
    ColumnBatches; only the Engine flags differ:

    * ``interpreted-*`` — no closures, no masks: the tree-walking
      evaluator checks every materialized row.
    * ``closure-*`` — compiled Python closures per row (the pre-columnar
      default), no admission masks.
    * ``native-*`` — admission predicates compiled to C kernels over the
      raw column buffers; survivors only are materialized.  Without a C
      compiler on the host the arm degrades to the closure path (the
      report's ``compiler``/``execution_tier`` meta says which happened).

    Workloads: the uniform-pressure filter selectivity sweep (mirroring
    ``BENCH_vectorized_admission`` so the native and vector tiers are
    directly comparable), the quality SEQ pairing workload (lenient
    masks feeding a temporal operator), and the paper's Example 1
    duplicate-filtering query — whose NOT EXISTS subquery deliberately
    cannot lower to C, pinning the cost of the fallback chain at ~zero.
    Every arm must produce byte-identical output or the runner raises.
    """
    from ..dsms.engine import Engine
    from ..dsms.native import find_compiler

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    selectivities = tuple(selectivities)
    compiler = find_compiler()
    native_tier = active_execution_tier(
        vectorized_admission=False, native_admission=True
    )

    report = BenchReport(
        "native_codegen",
        meta=standard_meta(
            execution_tier=native_tier,
            pairing_tier=native_tier,
            workload="filter-sweep + quality-SEQ + example1-dedup",
            n_rows=n_rows,
            batch_rows=batch_rows,
            selectivities=list(selectivities),
            seq_rows=seq_rows,
            dedup_rows=dedup_rows,
            reps=reps,
            compiler=compiler,
            cpu_limited=effective_cpu_count() < 2,
            note=(
                "single process; all arms consume identical pre-built "
                "ColumnBatches; the native arm compiles admission "
                "predicates to C kernels (vector tier off, so the gap "
                "is kernel vs closure); kernels compile at query "
                "registration, outside every timed region"
            ),
        ),
    )

    def _timed_arms(build, feed):
        """Interleave best-of-*reps* over the three arms; assert equal
        output; return ``{label: (seconds, rows, engine)}``."""
        results: dict[str, Any] = {}
        for _ in range(reps):
            for label, flags in _NATIVE_ARMS:
                engine, rows_of = build(Engine(**flags))
                gc.disable()
                try:
                    start = time.perf_counter()
                    feed(engine)
                    seconds = time.perf_counter() - start
                finally:
                    gc.enable()
                rows = rows_of()
                best = results.get(label)
                if best is None or seconds < best[0]:
                    results[label] = (seconds, rows, engine)
                else:
                    results[label] = (best[0], rows, engine)
        reference = results["interpreted"][1]
        for label, (_s, rows, _e) in results.items():
            if rows != reference:
                raise AssertionError(
                    f"{label} output diverged "
                    f"({len(rows)} vs {len(reference)} rows)"
                )
        return results

    def _native_stats(engine: Any) -> dict[str, Any]:
        state = getattr(engine, "native_state", None)
        return state.stats() if state is not None else {}

    # -- workload 1: uniform-pressure filter selectivity sweep ----------
    _schema, batches, _rows = _admission_workload(n_rows, batch_rows, seed)
    speedups: dict[float, float] = {}
    for threshold in selectivities:
        pct = f"{threshold * 100:g}pct"

        def build(engine, threshold=threshold):
            engine.create_stream("readings", _ADMISSION_SCHEMA)
            handle = engine.query(
                "SELECT tag_id, pressure FROM readings AS R "
                f"WHERE R.pressure < {threshold!r}"
            )
            return engine, lambda: [
                (tup.values, tup.ts) for tup in handle.results
            ]

        def feed(engine):
            for batch in batches:
                engine.push_columns("readings", batch)

        results = _timed_arms(build, feed)
        for label, (seconds, rows, engine) in results.items():
            report.add_experiment(
                f"{label}-{pct}",
                n_tuples=n_rows,
                seconds=seconds,
                params={
                    "workload": "filter",
                    "selectivity": threshold,
                    "tier": (
                        native_tier if label == "native" else label
                    ),
                },
                rows_admitted=len(rows),
                native=_native_stats(engine),
            )
        speedups[threshold] = (
            results["closure"][0] / results["native"][0]
            if results["native"][0]
            else 0.0
        )

    # -- workload 2: quality SEQ pairing (lenient masks) -----------------
    seq_batches = _native_seq_workload(seq_rows, batch_rows, seed)

    def build_seq(engine):
        engine.create_stream("a", "tag_id str, v float")
        engine.create_stream("b", "tag_id str, w float")
        handle = engine.query(
            "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
            "WHERE SEQ(X, Y) AND X.tag_id = Y.tag_id "
            "AND X.v < 0.3 AND Y.w > 0.6"
        )
        return engine, lambda: [(tup.values, tup.ts) for tup in handle.results]

    def feed_seq(engine):
        for stream, batch in seq_batches:
            engine.push_columns(stream, batch)

    seq_results = _timed_arms(build_seq, feed_seq)
    for label, (seconds, rows, engine) in seq_results.items():
        report.add_experiment(
            f"{label}-seq",
            n_tuples=seq_rows,
            seconds=seconds,
            params={
                "workload": "quality-seq",
                "tier": native_tier if label == "native" else label,
            },
            rows_admitted=len(rows),
            native=_native_stats(engine),
        )
    seq_speedup = (
        seq_results["closure"][0] / seq_results["native"][0]
        if seq_results["native"][0]
        else 0.0
    )

    # -- workload 3: Example 1 dedup (subquery -> fallback chain) --------
    dedup_batches = _native_dedup_workload(dedup_rows, batch_rows, seed)

    def build_dedup(engine):
        engine.create_stream(
            "readings", "reader_id str, tag_id str, read_time float"
        )
        engine.create_stream(
            "cleaned_readings", "reader_id str, tag_id str, read_time float"
        )
        engine.query(
            "INSERT INTO cleaned_readings "
            "SELECT * FROM readings AS r1 "
            "WHERE NOT EXISTS "
            "  (SELECT * FROM TABLE( readings OVER "
            "     (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2 "
            "   WHERE r2.reader_id = r1.reader_id "
            "     AND r2.tag_id = r1.tag_id)"
        )
        sink = engine.collect("cleaned_readings")
        return engine, lambda: [(tup.values, tup.ts) for tup in sink.results]

    def feed_dedup(engine):
        for batch in dedup_batches:
            engine.push_columns("readings", batch)

    dedup_results = _timed_arms(build_dedup, feed_dedup)
    for label, (seconds, rows, engine) in dedup_results.items():
        report.add_experiment(
            f"{label}-dedup",
            n_tuples=dedup_rows,
            seconds=seconds,
            params={"workload": "example1-dedup", "tier": label},
            rows_admitted=len(rows),
            native=_native_stats(engine),
        )
    dedup_speedup = (
        dedup_results["closure"][0] / dedup_results["native"][0]
        if dedup_results["native"][0]
        else 0.0
    )

    report.meta["speedup_native_vs_closure"] = speedups[min(selectivities)]
    report.meta["speedup_native_vs_closure_by_selectivity"] = {
        f"{threshold:g}": value for threshold, value in speedups.items()
    }
    report.meta["speedup_native_vs_closure_seq"] = seq_speedup
    report.meta["speedup_native_vs_closure_dedup"] = dedup_speedup
    return report


def native_speedup(report: BenchReport, selectivity: float) -> float | None:
    """Native-over-closure speedup at *selectivity*, if measured."""
    by_sel = report.meta.get("speedup_native_vs_closure_by_selectivity", {})
    value = by_sel.get(f"{selectivity:g}")
    return float(value) if value is not None else None


# ---------------------------------------------------------------------------
# pairing_kernels — vectorized/native masks on the SEQ match-enumeration path
# ---------------------------------------------------------------------------

_PAIRING_ARMS = (
    # (label, Engine flags).  The interpreted arm is the byte-identity
    # reference; "scalar" is the compiled-closure pairing loop (the
    # pre-mask hot path); "vector" adds the Python columnar stage masks;
    # "native" runs the two-operand C pairing kernels with the vector
    # tier off, so its gap is kernel vs scalar, not a mix.
    ("interpreted", {"compile_expressions": False,
                     "vectorized_admission": False}),
    ("scalar", {"vectorized_admission": False}),
    ("vector", {"vectorized_admission": True}),
    ("native", {"vectorized_admission": False, "native_admission": True}),
)


def _pairing_seq_workload(
    n_rows: int, batch_rows: int, rereads: int, tags: int, seed: int
) -> list[tuple[str, Any]]:
    """Dense re-read quality-SEQ trace: interleaved a/b ColumnBatches.

    Every logical reading is emitted *rereads* times (the RFID re-read
    burst of a tag sitting on a checkpoint reader) and tag cardinality
    is kept low, so each partition's history — and therefore every
    anchor's candidate slice — grows long enough that match enumeration,
    not admission, dominates the run.
    """
    from ..dsms.columns import ColumnBatch
    from ..dsms.schema import Schema

    rng = random.Random(seed)
    schema_a = Schema.parse("tag_id str, v float")
    schema_b = Schema.parse("tag_id str, w float")
    per_stream = n_rows // 2
    batches: list[tuple[str, Any]] = []
    ts = 0.0
    remaining = per_stream
    while remaining:
        count = min(batch_rows, remaining)
        block: dict[str, list[tuple[dict, float]]] = {"a": [], "b": []}
        for stream, field in (("a", "v"), ("b", "w")):
            rows = block[stream]
            while len(rows) < count:
                tag = f"t{rng.randrange(tags)}"
                base = rng.random()
                for _ in range(min(rereads, count - len(rows))):
                    # Re-reads jitter the measured value slightly, as a
                    # real reader would; timestamps stay strictly
                    # increasing across the whole trace (the a-block
                    # precedes its b-block, matching the push order).
                    value = min(1.0, base + rng.random() * 0.02)
                    rows.append(({"tag_id": tag, field: value}, ts))
                    ts += 1.0
        batches.append(("a", ColumnBatch.from_rows(schema_a, block["a"])))
        batches.append(("b", ColumnBatch.from_rows(schema_b, block["b"])))
        remaining -= count
    return batches


def run_pairing_kernels(
    *,
    n_rows: int = 20_000,
    batch_rows: int = 512,
    rereads: int = 3,
    tags: int = 8,
    window_s: float = 2_000.0,
    threshold: float = 0.85,
    reps: int | None = None,
    seed: int = 11,
) -> BenchReport:
    """Pairing-mask tiers on the SEQ match-enumeration hot path.

    All four arms consume identical pre-built ColumnBatches through the
    same windowed quality-SEQ query; only the Engine flags differ.  The
    query hash-partitions on the tag equality, leaving ``Y.w - X.v >
    threshold`` as the sole cross conjunct — deliberately *not*
    hoistable to admission, so every arm pays for it at pairing time:
    the scalar arm once per candidate (dict store + closure tree per
    row), the vector arm once per anchor as a columnar mask over the
    partition's history mirror, the native arm as a two-operand C
    kernel over the mirror's packed buffers.  Masks only prune;
    survivors re-run the scalar check, and every arm must produce the
    interpreted arm's rows byte-identically or the runner raises.
    """
    from ..dsms.engine import Engine
    from ..dsms.native import find_compiler

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    compiler = find_compiler()
    native_tier = active_execution_tier(
        vectorized_admission=False, native_admission=True
    )

    report = BenchReport(
        "pairing_kernels",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=native_tier,
            workload="dense-reread-quality-seq",
            n_rows=n_rows,
            batch_rows=batch_rows,
            rereads=rereads,
            tags=tags,
            window_s=window_s,
            threshold=threshold,
            reps=reps,
            compiler=compiler,
            cpu_limited=effective_cpu_count() < 2,
            note=(
                "single process; all arms consume identical pre-built "
                "ColumnBatches; the cross conjunct cannot hoist to "
                "admission, so the measured gap is the pairing loop "
                "itself; pairing kernels compile at query registration, "
                "outside every timed region"
            ),
        ),
    )

    batches = _pairing_seq_workload(n_rows, batch_rows, rereads, tags, seed)
    query = (
        "SELECT X.tag_id, X.v, Y.w FROM a AS X, b AS Y "
        f"WHERE SEQ(X, Y) OVER [{window_s:g} SECONDS PRECEDING Y] "
        "AND X.tag_id = Y.tag_id "
        f"AND Y.w - X.v > {threshold!r}"
    )

    results: dict[str, Any] = {}
    for _ in range(reps):
        for label, flags in _PAIRING_ARMS:
            engine = Engine(**flags)
            engine.create_stream("a", "tag_id str, v float")
            engine.create_stream("b", "tag_id str, w float")
            handle = engine.query(query)
            gc.disable()
            try:
                start = time.perf_counter()
                for stream, batch in batches:
                    engine.push_columns(stream, batch)
                seconds = time.perf_counter() - start
            finally:
                gc.enable()
            rows = [(tup.values, tup.ts) for tup in handle.results]
            best = results.get(label)
            if best is None or seconds < best[0]:
                results[label] = (seconds, rows, engine)
            else:
                results[label] = (best[0], rows, engine)
    reference = results["interpreted"][1]
    for label, (_s, rows, _e) in results.items():
        if rows != reference:
            raise AssertionError(
                f"{label} output diverged "
                f"({len(rows)} vs {len(reference)} rows)"
            )
    for label, (seconds, rows, engine) in results.items():
        state = getattr(engine, "native_state", None)
        report.add_experiment(
            f"{label}-pairing",
            n_tuples=n_rows,
            seconds=seconds,
            params={
                "workload": "dense-reread-quality-seq",
                "tier": native_tier if label == "native" else label,
            },
            rows_admitted=len(rows),
            native=state.stats() if state is not None else {},
        )
    scalar_s = results["scalar"][0]
    report.meta["speedup_vector_vs_scalar_pairing"] = (
        scalar_s / results["vector"][0] if results["vector"][0] else 0.0
    )
    report.meta["speedup_native_vs_scalar_pairing"] = (
        scalar_s / results["native"][0] if results["native"][0] else 0.0
    )
    return report


def pairing_speedup(report: BenchReport, arm: str) -> float | None:
    """Pairing speedup of *arm* ("vector" or "native") over scalar."""
    value = report.meta.get(f"speedup_{arm}_vs_scalar_pairing")
    return float(value) if value is not None else None


# ---------------------------------------------------------------------------
# fault_tolerance — checkpoint overhead and crash-recovery latency
# ---------------------------------------------------------------------------


def run_fault_tolerance(
    *,
    n_products: int = 1500,
    n_shards: int = 2,
    batch_size: int = 64,
    checkpoint_intervals: Sequence[float] = (1.0, 10.0),
    reps: int | None = None,
    seed: int = 99,
) -> BenchReport:
    """Cost and latency of the fault-tolerance layer on Example 6.

    Two questions, one workload (the quality-check trace, hash-sharded by
    tagid over persistent pipe workers):

    **What does protection cost when nothing fails?**  Four arms feed the
    identical trace: ``fail-fast`` (flag off — the pre-existing hot path
    and the overhead baseline), ``ft-off`` (``fault_tolerance="restart"``
    with replay logging but no checkpoints), and one ``ft-<interval>s``
    arm per entry of *checkpoint_intervals* (periodic stream-time shard
    checkpoints; the trace's stream time is normalized to a 60 s span, so
    the 1 s arm cuts ~60 checkpoints and the 10 s arm ~6 — aggressive
    and relaxed cadences over the same records).
    Checkpointing drains the pipeline before cutting state, so tight
    intervals surrender exactly the latency hiding the transport buys;
    the per-arm overhead ratio quantifies that trade.

    **How long does a crash cost?**  A ``FaultPlan`` SIGTERMs one worker
    mid-trace under ``restart``; the run is timed end to end and the
    supervisor's recovery latency (respawn + checkpoint restore + replay)
    is read from :meth:`~repro.ShardedEngine.fault_stats`.  One recovery
    arm replays from the trace start (no checkpoints), one restores the
    latest periodic checkpoint first.

    Every arm — faulted or not — must produce the single-engine reference
    rows exactly; divergence raises.  Wall-clock ratios on hosts without
    ``n_shards + 1`` free cores are tagged ``cpu_limited``: there the
    drain stalls of tight checkpointing don't cost extra (the pipeline
    never overlapped to begin with), so overhead reads optimistic.
    """
    from ..dsms.faults import FaultPlan
    from ..rfid import build_quality_check, build_quality_check_sharded
    from ..rfid import quality_check_workload

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    cpus = effective_cpu_count()
    checkpoint_intervals = tuple(checkpoint_intervals)
    # Normalize stream time to a fixed span so the checkpoint intervals
    # mean the same cadence at every workload size: 60 s of stream time
    # makes the 1 s arm checkpoint ~60 times (aggressive) and the 10 s
    # arm ~6 times (relaxed).  Scaling every ts/tagtime by one monotone
    # factor preserves SEQ order, ties, and hash routing exactly.
    raw = quality_check_workload(n_products=n_products, seed=seed)
    span = raw.trace[-1][2] - raw.trace[0][2]
    scale = 60.0 / span if span else 1.0
    workload = type(raw)(
        [
            (stream, dict(values, tagtime=values["tagtime"] * scale),
             ts * scale)
            for stream, values, ts in raw.trace
        ],
        raw.truth,
    )
    n_tuples = len(workload.trace)
    span = workload.trace[-1][2] - workload.trace[0][2]
    # A sliding window bounds operator state (products complete in well
    # under 5 s of normalized stream time), so a checkpoint's cost is
    # O(window contents), not O(everything seen so far) — matching how a
    # long-running deployment would actually run.
    window_s = 5.0

    report = BenchReport(
        "fault_tolerance",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=active_execution_tier(),
            workload="example6-quality",
            n_products=n_products,
            n_shards=n_shards,
            batch_size=batch_size,
            checkpoint_intervals=list(checkpoint_intervals),
            stream_time_span_s=span,
            reps=reps,
            cpu_limited=cpus < n_shards + 1,
            note=(
                "checkpoint overhead: identical trace, fault_tolerance "
                "and checkpoint_interval vary, zero faults injected; "
                "recovery: one worker SIGTERMed mid-trace, latency is "
                "the supervisor's respawn+restore+replay time; every "
                "arm's merged rows must equal the single-engine "
                "reference"
            ),
        ),
    )

    def _build(**kwargs: Any) -> Any:
        # Fixed-size batches keep the per-shard frame count deterministic,
        # so the kill trigger (counted in data frames) lands at the same
        # trace position every rep.
        return build_quality_check_sharded(
            workload,
            n_shards=n_shards,
            executor="parallel",
            batch_size=batch_size,
            adaptive_batch=False,
            window_minutes=window_s / 60.0,
            **kwargs,
        )

    single_seconds, reference_rows, _ = _timed_feed(
        lambda: build_quality_check(workload, window_minutes=window_s / 60.0),
        reps,
    )
    report.add_experiment(
        "single",
        n_tuples=n_tuples,
        seconds=single_seconds,
        params={"engine": "Engine"},
    )

    overhead_arms: list[tuple[str, dict[str, Any]]] = [
        ("fail-fast", {}),
        ("ft-off", {"fault_tolerance": "restart"}),
    ]
    for interval in checkpoint_intervals:
        overhead_arms.append((
            f"ft-{interval:g}s",
            {"fault_tolerance": "restart", "checkpoint_interval": interval},
        ))

    arm_seconds = {label: float("inf") for label, _ in overhead_arms}
    arm_stats: dict[str, dict[str, Any]] = {}
    for _ in range(reps):
        for label, kwargs in overhead_arms:
            scenario = _build(**kwargs)
            engine = scenario.engine.start()
            gc.disable()
            try:
                start = time.perf_counter()
                scenario.feed()
                seconds = time.perf_counter() - start
            finally:
                gc.enable()
            rows = scenario.rows()
            arm_stats[label] = engine.fault_stats()
            engine.close()
            if rows != reference_rows:
                raise AssertionError(
                    f"{label} output diverged from single engine "
                    f"({len(rows)} vs {len(reference_rows)} rows)"
                )
            arm_seconds[label] = min(arm_seconds[label], seconds)

    baseline = arm_seconds["fail-fast"]
    overheads: dict[str, float] = {}
    for label, kwargs in overhead_arms:
        stats = arm_stats[label]
        overhead = (
            arm_seconds[label] / baseline - 1.0 if baseline else 0.0
        )
        overheads[label] = overhead
        report.add_experiment(
            f"overhead-{label}",
            n_tuples=n_tuples,
            seconds=arm_seconds[label],
            shards=n_shards,
            params={
                "engine": "ShardedEngine",
                "fault_tolerance": kwargs.get("fault_tolerance", "fail_fast"),
                "checkpoint_interval": kwargs.get("checkpoint_interval"),
            },
            overhead_vs_fail_fast=overhead,
            checkpoints=stats["checkpoints"],
            cpu_limited=cpus < n_shards + 1,
        )

    recovery_arms: list[tuple[str, float | None]] = [
        ("replay-from-start", None),
        (f"restore-{checkpoint_intervals[-1]:g}s", checkpoint_intervals[-1]),
    ]
    victim = n_shards - 1
    # Land the kill mid-trace: roughly half the data frames a shard will
    # see (records hash-split across shards, one frame per full batch).
    kill_after = max(1, n_tuples // (n_shards * batch_size) // 2)
    for label, interval in recovery_arms:
        best_seconds = float("inf")
        latencies: list[float] = []
        recoveries = 0
        for _ in range(reps):
            plan = FaultPlan().kill_worker(victim, after_batches=kill_after)
            scenario = _build(
                fault_tolerance="restart",
                checkpoint_interval=interval,
                fault_plan=plan,
            )
            engine = scenario.engine.start()
            gc.disable()
            try:
                start = time.perf_counter()
                scenario.feed()
                seconds = time.perf_counter() - start
            finally:
                gc.enable()
            rows = scenario.rows()
            stats = engine.fault_stats()
            engine.close()
            if rows != reference_rows:
                raise AssertionError(
                    f"{label} output diverged after recovery "
                    f"({len(rows)} vs {len(reference_rows)} rows)"
                )
            if stats["recoveries"] < 1:
                raise AssertionError(
                    f"{label}: injected kill never triggered a recovery "
                    f"(events: {stats['events']})"
                )
            recoveries += stats["recoveries"]
            latencies.extend(
                event["latency_s"]
                for event in stats["events"]
                if event.get("action") == "recovered"
            )
            best_seconds = min(best_seconds, seconds)
        report.add_experiment(
            f"recovery-{label}",
            n_tuples=n_tuples,
            seconds=best_seconds,
            shards=n_shards,
            params={
                "engine": "ShardedEngine",
                "fault_tolerance": "restart",
                "checkpoint_interval": interval,
                "kill_after_batches": kill_after,
                "victim_shard": victim,
            },
            recoveries=recoveries,
            recovery_latency_s=min(latencies),
            recovery_latency_mean_s=sum(latencies) / len(latencies),
            cpu_limited=cpus < n_shards + 1,
        )

    report.meta["overhead_by_arm"] = overheads
    report.meta["checkpoint_overhead"] = overheads[
        f"ft-{checkpoint_intervals[-1]:g}s"
    ]
    return report


def checkpoint_overhead(report: BenchReport, interval: float) -> float | None:
    """Wall-clock overhead ratio of the ``ft-<interval>s`` arm over the
    ``fail-fast`` baseline, if measured."""
    value = report.meta.get("overhead_by_arm", {}).get(f"ft-{interval:g}s")
    return float(value) if value is not None else None


# ---------------------------------------------------------------------------
# multi_query — shared registry execution vs one engine per query
# ---------------------------------------------------------------------------


def run_multi_query(
    *,
    query_counts: Sequence[int] = (1_000, 10_000, 100_000),
    n_rows: int = 2_000,
    naive_at: int = 1_000,
    verify_sample: int = 25,
    dedup_queries: int = 1_000,
    reps: int | None = None,
    seed: int = 11,
) -> BenchReport:
    """Shared multi-query execution vs the naive one-engine-per-query path.

    The workload is the paper's deployment shape: N registered continuous
    queries (one per tag of interest) over one RFID ``readings`` stream.
    Every arm feeds the identical trace and the harness asserts that a
    sample of subscriptions is byte-identical — same values, same
    timestamps, same order — to an independent single-engine run of the
    same query text, plus an exact answer-count check across *all*
    subscriptions.

    * ``shared-N`` — one Engine + QueryRegistry with N registered
      queries.  Tag-equality predicates hoist into the router's hash
      index, so per-tuple dispatch cost is one lookup, independent of N.
    * ``naive-N`` — N private Engines, every tuple pushed N times (only
      run up to *naive_at* queries; beyond that it is pointless to wait
      for).

    Registration (parse + compile, once per query) is timed separately
    and reported as ``register_seconds`` — the headline arm seconds
    measure steady-state feed throughput only, which is what a running
    deployment pays per tuple.

    A final pair of ``dedup-*`` arms registers *dedup_queries* identical
    SEQ queries: sub-plan dedup collapses them onto one operator
    (``shared_plans == 1``), against the distinct-filter arm where every
    plan is unique.

    Both modes are single-process and single-threaded, so the measured
    speedup does not depend on free cores; ``cpu_limited`` is always
    False for this report.
    """
    from ..dsms.engine import Engine
    from ..dsms.multi_engine import MultiQueryEngine

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    query_counts = tuple(query_counts)
    max_queries = max(query_counts)

    schema = "reader_id str, tag_id str, read_time float"

    def query_text(i: int) -> str:
        return (
            "SELECT reader_id, tag_id, read_time FROM readings "
            f"WHERE tag_id = 't{i:06d}'"
        )

    # Rows cycle the registered tag universe with a coprime stride, so
    # matches spread across queries: each row answers exactly one query.
    rng = random.Random(seed)
    stride = 7919  # prime, coprime with the power-of-ten query counts
    rows = [
        (
            (f"r{rng.randrange(8)}", f"t{(j * stride) % max_queries:06d}", float(j)),
            float(j),
        )
        for j in range(n_rows)
    ]

    def rows_for(count: int, offset: float) -> list:
        # Re-key tags into [0, count) so every scale sees the same match
        # density (one query answered per row), and shift timestamps so
        # one engine can replay the trace across reps monotonically.
        return [
            ((reader, f"t{int(tag[1:]) % count:06d}", ts), ts + offset)
            for (reader, tag, ts), _ in rows
        ]

    report = BenchReport(
        "multi_query",
        meta=standard_meta(
            execution_tier=active_execution_tier(),
            pairing_tier=active_execution_tier(),
            workload="per-tag filter queries over one readings stream",
            query_counts=list(query_counts),
            n_rows=n_rows,
            naive_at=naive_at,
            reps=reps,
            verify_sample=verify_sample,
            cpu_limited=False,
            note=(
                "single process, single thread in every arm; arm seconds "
                "are steady-state feed time only — per-query compile cost "
                "is reported separately as register_seconds"
            ),
        ),
    )

    def _verify(mq: Any, subs: list, count: int, trace: list) -> None:
        expected: dict[str, int] = {}
        for (_reader, tag, _rt), _ts in trace:
            expected[tag] = expected.get(tag, 0) + 1
        for i, sub in enumerate(subs):
            want = expected.get(f"t{i:06d}", 0)
            if len(sub.results) != want:
                raise AssertionError(
                    f"query {i} of {count}: {len(sub.results)} answers, "
                    f"expected {want}"
                )
        sample = range(0, count, max(1, count // verify_sample))
        for i in sample:
            engine = Engine()
            engine.create_stream("readings", schema)
            handle = engine.query(query_text(i))
            engine.push_batch("readings", trace)
            reference = [(tup.values, tup.ts) for tup in handle.results]
            got = [(tup.values, tup.ts) for tup in subs[i].results]
            if got != reference:
                raise AssertionError(
                    f"query {i} of {count} diverged from a single-engine "
                    f"run ({len(got)} vs {len(reference)} rows)"
                )

    speedups: dict[int, float] = {}
    shared_seconds: dict[int, float] = {}
    for count in query_counts:
        mq = MultiQueryEngine(shared_execution=True)
        mq.create_stream("readings", schema)
        start = time.perf_counter()
        subs = [mq.register(query_text(i)) for i in range(count)]
        register_seconds = time.perf_counter() - start
        best = float("inf")
        for rep in range(reps):
            trace = rows_for(count, offset=rep * (n_rows + 1.0))
            gc.disable()
            try:
                start = time.perf_counter()
                mq.push_batch("readings", trace)
                seconds = time.perf_counter() - start
            finally:
                gc.enable()
            best = min(best, seconds)
            if rep == 0:
                _verify(mq, subs, count, trace)
            for sub in subs:
                sub.clear()
        stats = mq.stats()
        mq.close()
        shared_seconds[count] = best
        report.add_experiment(
            f"shared-{count}",
            n_tuples=n_rows,
            seconds=best,
            params={"queries": count, "mode": "shared"},
            register_seconds=register_seconds,
            indexed_entries=stats["indexed_entries"],
            residual_entries=stats["residual_entries"],
            deliveries=stats["deliveries"],
        )

        if count > naive_at:
            continue
        mq = MultiQueryEngine(shared_execution=False)
        mq.create_stream("readings", schema)
        start = time.perf_counter()
        subs = [mq.register(query_text(i)) for i in range(count)]
        register_seconds = time.perf_counter() - start
        best = float("inf")
        for rep in range(reps):
            trace = rows_for(count, offset=rep * (n_rows + 1.0))
            gc.disable()
            try:
                start = time.perf_counter()
                mq.push_batch("readings", trace)
                seconds = time.perf_counter() - start
            finally:
                gc.enable()
            best = min(best, seconds)
            if rep == 0:
                _verify(mq, subs, count, trace)
            for sub in subs:
                sub.clear()
        mq.close()
        report.add_experiment(
            f"naive-{count}",
            n_tuples=n_rows,
            seconds=best,
            params={"queries": count, "mode": "naive"},
            register_seconds=register_seconds,
        )
        speedups[count] = best / shared_seconds[count] if shared_seconds[count] else 0.0

    # Sub-plan dedup: identical SEQ queries collapse onto one operator.
    seq_text = (
        "SELECT S.tag_id, E.read_time FROM readings AS S, readings AS E "
        "WHERE SEQ(S, E) OVER [60 SECONDS PRECEDING E] "
        "AND S.tag_id = E.tag_id AND S.reader_id = 'r0'"
    )
    mq = MultiQueryEngine(shared_execution=True)
    mq.create_stream("readings", schema)
    subs = [mq.register(seq_text) for _ in range(dedup_queries)]
    dedup_plans = mq.stats()["shared_plans"]
    best = float("inf")
    for rep in range(reps):
        trace = rows_for(max(dedup_queries, 1), offset=rep * (n_rows + 1.0))
        gc.disable()
        try:
            start = time.perf_counter()
            mq.push_batch("readings", trace)
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
        best = min(best, seconds)
        if rep == 0:
            engine = Engine()
            engine.create_stream("readings", schema)
            handle = engine.query(seq_text)
            engine.push_batch("readings", trace)
            reference = [(tup.values, tup.ts) for tup in handle.results]
            for sub in subs[:verify_sample]:
                if [(tup.values, tup.ts) for tup in sub.results] != reference:
                    raise AssertionError("dedup fan-out diverged")
        for sub in subs:
            sub.clear()
    mq.close()
    if dedup_plans != 1:
        raise AssertionError(
            f"{dedup_queries} identical queries produced {dedup_plans} plans"
        )
    report.add_experiment(
        f"dedup-seq-{dedup_queries}",
        n_tuples=n_rows,
        seconds=best,
        params={"queries": dedup_queries, "mode": "shared-dedup"},
        shared_plans=dedup_plans,
    )

    headline = min(speedups) if speedups else None
    report.meta["speedup_shared_vs_naive"] = (
        speedups[headline] if headline is not None else None
    )
    report.meta["speedup_shared_vs_naive_by_queries"] = {
        str(count): value for count, value in speedups.items()
    }
    return report


def multi_query_speedup(report: BenchReport, queries: int) -> float | None:
    """Shared-over-naive speedup at *queries* registered queries, if run."""
    by_count = report.meta.get("speedup_shared_vs_naive_by_queries", {})
    value = by_count.get(str(queries))
    return float(value) if value is not None else None


BENCH_RUNNERS: Mapping[str, Callable[..., BenchReport]] = {
    "sharded_scaling": run_sharded_scaling,
    "shard_transport": run_shard_transport,
    "operator_state": run_operator_state,
    "vectorized_admission": run_vectorized_admission,
    "native_codegen": run_native_codegen,
    "pairing_kernels": run_pairing_kernels,
    "fault_tolerance": run_fault_tolerance,
    "multi_query": run_multi_query,
}
