"""Named benchmark runners shared by the CLI and ``benchmarks/`` scripts.

Each runner builds its own workload, measures, and returns a
:class:`BenchReport`; callers decide where to write it.  The registry maps
the public benchmark name (as used by ``python -m repro bench <name>``)
to its runner, so the CLI, CI smoke jobs, and the pytest wrappers under
``benchmarks/`` all execute exactly the same measurement code.
"""

from __future__ import annotations

import gc
import os
import platform
import time
from typing import Any, Callable, Mapping, Sequence

from .harness import BenchReport


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _timed_feed(make_scenario: Callable[[], Any], reps: int) -> tuple[float, list[dict]]:
    """Best-of-*reps* wall-clock seconds for feeding one fresh scenario.

    Every rep builds a fresh engine (sharded reps spawn fresh worker
    processes, so startup cost is outside the timed region: the clock
    starts at the first push).  Returns (best_seconds, rows of last rep).
    """
    best = float("inf")
    rows: list[dict] = []
    for _ in range(reps):
        scenario = make_scenario()
        gc.disable()
        try:
            start = time.perf_counter()
            scenario.feed()
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
        rows = scenario.rows()
        best = min(best, seconds)
        close = getattr(scenario.engine, "close", None)
        if close is not None:
            close()
    return best, rows


def run_sharded_scaling(
    *,
    n_products: int = 400,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    executor: str = "parallel",
    batch_size: int = 512,
    reps: int | None = None,
    seed: int = 122,
) -> BenchReport:
    """Example 6 SEQ workload across shard counts, with a correctness check.

    Measures the single :class:`~repro.dsms.engine.Engine` as the reference
    arm, then :class:`~repro.dsms.sharding.ShardedEngine` at each shard
    count (same executor throughout, so the curve isolates parallelism, not
    dispatch overhead).  Every arm's merged output must equal the
    single-engine output row for row — a wrong-but-fast shard is a bug,
    not a result.
    """
    from ..rfid import build_quality_check, build_quality_check_sharded
    from ..rfid import quality_check_workload

    if reps is None:
        reps = int(os.environ.get("REPRO_BENCH_REPS", "3"))
    workload = quality_check_workload(n_products=n_products, seed=seed)
    n_tuples = len(workload.trace)

    report = BenchReport(
        "sharded_scaling",
        meta={
            "workload": "example6-quality",
            "n_products": n_products,
            "n_tuples": n_tuples,
            "executor": executor,
            "batch_size": batch_size,
            "reps": reps,
            "cpu_count": effective_cpu_count(),
            "python": platform.python_version(),
        },
    )

    single_seconds, reference_rows = _timed_feed(
        lambda: build_quality_check(workload), reps
    )
    report.add_experiment(
        "single-engine",
        n_tuples=n_tuples,
        seconds=single_seconds,
        params={"engine": "Engine"},
    )

    points: list[tuple[int, float]] = []
    for n_shards in shard_counts:
        seconds, rows = _timed_feed(
            lambda n=n_shards: build_quality_check_sharded(
                workload,
                n_shards=n,
                executor=executor,
                batch_size=batch_size,
            ),
            reps,
        )
        if rows != reference_rows:
            raise AssertionError(
                f"sharded output diverged from single engine at "
                f"{n_shards} shards ({len(rows)} vs {len(reference_rows)} rows)"
            )
        points.append((n_shards, seconds))
        report.add_experiment(
            f"sharded-{n_shards}",
            n_tuples=n_tuples,
            seconds=seconds,
            shards=n_shards,
            params={"engine": "ShardedEngine", "executor": executor},
        )

    report.add_scaling_curve(
        f"example6-seq-{executor}",
        points,
        n_tuples=n_tuples,
        baseline_shards=min(n for n, _ in points),
        params={"executor": executor, "batch_size": batch_size},
    )
    return report


def scaling_speedup(report: BenchReport, shards: int) -> float | None:
    """Speedup at *shards* from the report's first scaling curve."""
    for entry in report.experiments:
        if entry.get("kind") != "scaling_curve":
            continue
        for point in entry["curve"]:
            if point["shards"] == shards:
                return point["speedup"]
    return None


BENCH_RUNNERS: Mapping[str, Callable[..., BenchReport]] = {
    "sharded_scaling": run_sharded_scaling,
}
