"""Accuracy and cost metrics shared by the benchmark harness."""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence


class Accuracy:
    """Set-based precision/recall/F1 against ground truth."""

    __slots__ = ("tp", "fp", "fn")

    def __init__(self, tp: int, fp: int, fn: int) -> None:
        self.tp = tp
        self.fp = fp
        self.fn = fn

    @classmethod
    def from_sets(
        cls, detected: Iterable[Hashable], truth: Iterable[Hashable]
    ) -> "Accuracy":
        detected_set = set(detected)
        truth_set = set(truth)
        tp = len(detected_set & truth_set)
        return cls(tp, len(detected_set) - tp, len(truth_set) - tp)

    @property
    def precision(self) -> float:
        total = self.tp + self.fp
        return self.tp / total if total else 1.0

    @property
    def recall(self) -> float:
        total = self.tp + self.fn
        return self.tp / total if total else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def exact(self) -> bool:
        return self.fp == 0 and self.fn == 0

    def __repr__(self) -> str:
        return (
            f"Accuracy(P={self.precision:.3f} R={self.recall:.3f} "
            f"F1={self.f1:.3f})"
        )


def containment_accuracy(
    detected: Sequence[tuple[str, Sequence[str]]],
    truth: dict[str, Sequence[str]],
) -> Accuracy:
    """Score case->products assignments (both the case and its full
    product set must match)."""
    detected_pairs = {
        (case, tuple(products)) for case, products in detected
    }
    truth_pairs = {
        (case, tuple(products)) for case, products in truth.items()
    }
    return Accuracy.from_sets(detected_pairs, truth_pairs)


def throughput(n_tuples: int, seconds: float) -> float:
    """Tuples per wall-clock second (0 when the clock did not move)."""
    return n_tuples / seconds if seconds > 0 else 0.0


def summarize_rows(rows: Sequence[dict[str, Any]], keys: Sequence[str]) -> list[tuple]:
    """Project result rows onto key columns for set comparison."""
    return [tuple(row.get(key) for key in keys) for row in rows]


def wire_summary(
    totals: dict[str, Any], n_tuples: int
) -> dict[str, float]:
    """Per-record wire costs from a ``transport_stats()["totals"]`` dict.

    Normalizes the transport counters one arm accumulated into
    comparable per-record figures: bytes each way, round trips per
    thousand records, and the heartbeat-amplification share (heartbeat-
    only frames as a fraction of all frames sent).  Missing counters
    (e.g. ``bytes_received`` for the futures arm, whose results come
    back through the pool rather than a measured pipe) are reported as
    0.0 rather than omitted, so tables stay rectangular.
    """
    n = max(n_tuples, 1)
    frames_sent = float(totals.get("frames_sent", 0) or 0)
    heartbeats = float(totals.get("heartbeat_frames", 0) or 0)
    return {
        "bytes_sent_per_record": float(totals.get("bytes_sent", 0) or 0) / n,
        "bytes_received_per_record": (
            float(totals.get("bytes_received", 0) or 0) / n
        ),
        "round_trips_per_1k_records": (
            float(totals.get("round_trips", 0) or 0) * 1000.0 / n
        ),
        "heartbeat_frame_share": (
            heartbeats / frames_sent if frames_sent else 0.0
        ),
    }
