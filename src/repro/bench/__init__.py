"""Benchmark support: metrics and the shared result-table harness."""

from .harness import (
    BenchReport,
    ResultTable,
    Timed,
    measure_latencies,
    percentile,
    sweep,
)
from .metrics import Accuracy, containment_accuracy, summarize_rows, throughput

__all__ = [
    "Accuracy",
    "BenchReport",
    "ResultTable",
    "Timed",
    "containment_accuracy",
    "measure_latencies",
    "percentile",
    "summarize_rows",
    "sweep",
    "throughput",
]
