"""Benchmark support: metrics and the shared result-table harness."""

from .harness import (
    BenchReport,
    ResultTable,
    Timed,
    measure_latencies,
    percentile,
    sweep,
)
from .metrics import (
    Accuracy,
    containment_accuracy,
    summarize_rows,
    throughput,
    wire_summary,
)
from .runners import (
    BENCH_RUNNERS,
    TRANSPORT_ARMS,
    checkpoint_overhead,
    effective_cpu_count,
    run_fault_tolerance,
    run_operator_state,
    run_shard_transport,
    run_sharded_scaling,
    run_vectorized_admission,
    scaling_speedup,
    transport_speedup,
    vectorized_speedup,
    weak_efficiency,
)

__all__ = [
    "Accuracy",
    "BENCH_RUNNERS",
    "BenchReport",
    "ResultTable",
    "TRANSPORT_ARMS",
    "Timed",
    "checkpoint_overhead",
    "containment_accuracy",
    "effective_cpu_count",
    "measure_latencies",
    "percentile",
    "run_fault_tolerance",
    "run_operator_state",
    "run_shard_transport",
    "run_sharded_scaling",
    "run_vectorized_admission",
    "scaling_speedup",
    "summarize_rows",
    "sweep",
    "throughput",
    "transport_speedup",
    "vectorized_speedup",
    "weak_efficiency",
    "wire_summary",
]
