"""Benchmark support: metrics and the shared result-table harness."""

from .harness import (
    BenchReport,
    ResultTable,
    Timed,
    measure_latencies,
    percentile,
    sweep,
)
from .metrics import Accuracy, containment_accuracy, summarize_rows, throughput
from .runners import (
    BENCH_RUNNERS,
    effective_cpu_count,
    run_operator_state,
    run_sharded_scaling,
    scaling_speedup,
    weak_efficiency,
)

__all__ = [
    "Accuracy",
    "BENCH_RUNNERS",
    "BenchReport",
    "ResultTable",
    "Timed",
    "containment_accuracy",
    "effective_cpu_count",
    "measure_latencies",
    "percentile",
    "run_operator_state",
    "run_sharded_scaling",
    "scaling_speedup",
    "summarize_rows",
    "sweep",
    "throughput",
    "weak_efficiency",
]
