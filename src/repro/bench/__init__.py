"""Benchmark support: metrics and the shared result-table harness."""

from .harness import ResultTable, Timed, sweep
from .metrics import Accuracy, containment_accuracy, summarize_rows, throughput

__all__ = [
    "Accuracy",
    "ResultTable",
    "Timed",
    "containment_accuracy",
    "summarize_rows",
    "sweep",
    "throughput",
]
