"""Semantic analysis for ESL-EV SELECT statements.

The analyzer sits between the parser and the compiler.  Given a parsed
:class:`SelectStatement` and the engine catalogs, it:

* resolves FROM items against the stream/table catalogs;
* splits the WHERE clause into top-level conjuncts and classifies them:
  the (at most one) temporal operator predicate, EXISTS sub-queries,
  CLEVEL_SEQ threshold comparisons, star-gap (``previous``) constraints,
  equality join keys suitable for partition hoisting, and plain residual
  predicates;
* promotes :class:`FunctionCall` nodes to :class:`AggregateCall` when the
  name is a registered aggregate (SELECT list and HAVING only);
* determines the query's shape (temporal / aggregate / filter / one-shot
  table query) and its output behaviour (single-row vs. per-star-tuple
  multi-return, paper footnote 4).

The result is a :class:`Analysis` record the compiler consumes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ...dsms.engine import Engine
from ...dsms.errors import EslSemanticError
from ...dsms.expressions import (
    And,
    Between,
    BinaryOp,
    Case,
    Column,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from .ast_nodes import (
    ExistsPredicate,
    FromItem,
    PreviousRef,
    SelectItem,
    SelectStatement,
    SeqPredicate,
    StarAggregate,
    iter_and_terms,
)
from .parser import AggregateCall


class ClevelThreshold:
    """A ``CLEVEL_SEQ(...) <op> k`` conjunct, normalized.

    ``accepts(level)`` decides whether an outcome with the given completion
    level satisfies the comparison.
    """

    __slots__ = ("predicate", "op", "value")

    def __init__(self, predicate: SeqPredicate, op: str, value: float) -> None:
        self.predicate = predicate
        self.op = op
        self.value = value

    def accepts(self, level: int) -> bool:
        if self.op == "<":
            return level < self.value
        if self.op == "<=":
            return level <= self.value
        if self.op == ">":
            return level > self.value
        if self.op == ">=":
            return level >= self.value
        if self.op == "=":
            return level == self.value
        if self.op in ("<>", "!="):
            return level != self.value
        raise EslSemanticError(f"unsupported CLEVEL comparison {self.op!r}")

    def __repr__(self) -> str:
        return f"ClevelThreshold(level {self.op} {self.value:g})"


class SourceInfo:
    """A resolved FROM item."""

    __slots__ = ("item", "is_stream", "is_table")

    def __init__(self, item: FromItem, is_stream: bool, is_table: bool) -> None:
        self.item = item
        self.is_stream = is_stream
        self.is_table = is_table

    @property
    def alias(self) -> str:
        return self.item.alias

    @property
    def name(self) -> str:
        return self.item.name

    def __repr__(self) -> str:
        kind = "stream" if self.is_stream else "table"
        return f"SourceInfo({self.name} AS {self.alias}: {kind})"


class Analysis:
    """Everything the compiler needs to know about one SELECT statement."""

    def __init__(self, statement: SelectStatement) -> None:
        self.statement = statement
        self.sources: list[SourceInfo] = []
        self.temporal: SeqPredicate | None = None
        self.clevel: ClevelThreshold | None = None
        self.exists_terms: list[ExistsPredicate] = []
        self.gap_terms: list[Expression] = []       # contain PreviousRef
        self.guard_terms: list[Expression] = []     # everything else
        self.partition_field: str | None = None     # hoisted equality key
        self.has_aggregates = False
        self.multi_return_alias: str | None = None  # starred alias returned per-tuple
        self.kind = "filter"  # temporal | aggregate | filter | table_query

    def source_for(self, alias: str) -> SourceInfo:
        for source in self.sources:
            if source.alias.lower() == alias.lower():
                return source
        raise EslSemanticError(
            f"unknown alias {alias!r}; FROM defines "
            f"{', '.join(s.alias for s in self.sources)}"
        )

    def __repr__(self) -> str:
        return (
            f"Analysis(kind={self.kind}, sources={len(self.sources)}, "
            f"temporal={self.temporal is not None}, "
            f"aggregates={self.has_aggregates})"
        )


# ---------------------------------------------------------------------------
# Expression rewriting: FunctionCall -> AggregateCall promotion
# ---------------------------------------------------------------------------


def promote_aggregates(expr: Expression, engine: Engine) -> Expression:
    """Return *expr* with registered-aggregate calls promoted.

    Only single-argument calls are promoted (SQL aggregates take one
    argument); multi-argument calls stay scalar functions.
    """
    if isinstance(expr, FunctionCall):
        new_args = [promote_aggregates(arg, engine) for arg in expr.args]
        if expr.name.lower() in engine.aggregates and len(new_args) <= 1:
            return AggregateCall(
                expr.name.lower(), new_args[0] if new_args else None
            )
        return FunctionCall(expr.name, new_args)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            promote_aggregates(expr.left, engine),
            promote_aggregates(expr.right, engine),
        )
    if isinstance(expr, And):
        return And(*(promote_aggregates(op, engine) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(*(promote_aggregates(op, engine) for op in expr.operands))
    if isinstance(expr, Not):
        return Not(promote_aggregates(expr.operand, engine))
    if isinstance(expr, Negate):
        return Negate(promote_aggregates(expr.operand, engine))
    if isinstance(expr, IsNull):
        return IsNull(promote_aggregates(expr.operand, engine), expr.negate)
    if isinstance(expr, Between):
        return Between(
            promote_aggregates(expr.operand, engine),
            promote_aggregates(expr.low, engine),
            promote_aggregates(expr.high, engine),
            expr.negate,
        )
    if isinstance(expr, InList):
        return InList(
            promote_aggregates(expr.operand, engine),
            [promote_aggregates(option, engine) for option in expr.options],
            expr.negate,
        )
    if isinstance(expr, Like):
        return Like(
            promote_aggregates(expr.operand, engine),
            promote_aggregates(expr.pattern, engine),
            expr.negate,
        )
    if isinstance(expr, Case):
        return Case(
            [
                (
                    promote_aggregates(cond, engine),
                    promote_aggregates(value, engine),
                )
                for cond, value in expr.branches
            ],
            promote_aggregates(expr.default, engine)
            if expr.default is not None
            else None,
        )
    return expr


def collect_aggregate_calls(expr: Expression) -> Iterator[AggregateCall]:
    """Yield every AggregateCall node in *expr* (depth-first)."""
    if isinstance(expr, AggregateCall):
        yield expr
        return
    for child in expr.children():
        yield from collect_aggregate_calls(child)


# ---------------------------------------------------------------------------
# Main analysis
# ---------------------------------------------------------------------------


def analyze(statement: SelectStatement, engine: Engine) -> Analysis:
    """Analyze *statement* against the engine catalogs."""
    analysis = Analysis(statement)
    _resolve_sources(analysis, engine)
    _promote_select_aggregates(analysis, engine)
    _classify_where(analysis)
    _detect_shape(analysis)
    if analysis.temporal is not None:
        _hoist_partition_key(analysis)
        _detect_multi_return(analysis)
    return analysis


def _resolve_sources(analysis: Analysis, engine: Engine) -> None:
    seen: set[str] = set()
    for item in analysis.statement.from_items:
        key = item.alias.lower()
        if key in seen:
            raise EslSemanticError(f"duplicate FROM alias {item.alias!r}")
        seen.add(key)
        is_stream = item.name in engine.streams
        is_table = item.name in engine.tables
        if not is_stream and not is_table:
            raise EslSemanticError(
                f"unknown stream or table {item.name!r} in FROM"
            )
        analysis.sources.append(SourceInfo(item, is_stream, is_table))


def _promote_select_aggregates(analysis: Analysis, engine: Engine) -> None:
    statement = analysis.statement
    new_items: list[SelectItem] = []
    for item in statement.select_items:
        promoted = promote_aggregates(item.expr, engine)
        new_items.append(SelectItem(promoted, item.alias))
    statement.select_items = tuple(new_items)
    if statement.having is not None:
        statement.having = promote_aggregates(statement.having, engine)
    analysis.has_aggregates = any(
        any(True for _ in collect_aggregate_calls(item.expr))
        for item in statement.select_items
    ) or (
        statement.having is not None
        and any(True for _ in collect_aggregate_calls(statement.having))
    )


def _contains_seq(expr: Expression) -> bool:
    if isinstance(expr, SeqPredicate):
        return True
    return any(_contains_seq(child) for child in expr.children())


def _contains_previous(expr: Expression) -> bool:
    if isinstance(expr, PreviousRef):
        return True
    return any(_contains_previous(child) for child in expr.children())


def _classify_where(analysis: Analysis) -> None:
    statement = analysis.statement
    for term in iter_and_terms(statement.where):
        if isinstance(term, SeqPredicate):
            if analysis.temporal is not None or analysis.clevel is not None:
                raise EslSemanticError(
                    "only one temporal operator per query is supported"
                )
            analysis.temporal = term
            continue
        clevel = _match_clevel(term)
        if clevel is not None:
            if analysis.temporal is not None or analysis.clevel is not None:
                raise EslSemanticError(
                    "only one temporal operator per query is supported"
                )
            analysis.clevel = clevel
            continue
        if isinstance(term, ExistsPredicate):
            analysis.exists_terms.append(term)
            continue
        if isinstance(term, Not) and isinstance(term.operand, ExistsPredicate):
            inner = term.operand
            analysis.exists_terms.append(
                ExistsPredicate(inner.query, not inner.negate)
            )
            continue
        if _contains_seq(term):
            raise EslSemanticError(
                "temporal operators must appear as top-level AND-terms of "
                "WHERE (not inside OR/NOT or nested expressions)"
            )
        if _contains_previous(term):
            analysis.gap_terms.append(term)
            continue
        analysis.guard_terms.append(term)


def _match_clevel(term: Expression) -> ClevelThreshold | None:
    """Recognize ``(CLEVEL_SEQ(...) OVER [...]) <op> literal`` (either side)."""
    if not isinstance(term, BinaryOp) or term.op not in (
        "<", "<=", ">", ">=", "=", "<>", "!=",
    ):
        return None
    left, right = term.left, term.right
    if isinstance(left, SeqPredicate) and left.op_name == "CLEVEL_SEQ":
        if not isinstance(right, Literal):
            raise EslSemanticError("CLEVEL_SEQ must be compared to a literal")
        return ClevelThreshold(left, term.op, float(right.value))
    if isinstance(right, SeqPredicate) and right.op_name == "CLEVEL_SEQ":
        if not isinstance(left, Literal):
            raise EslSemanticError("CLEVEL_SEQ must be compared to a literal")
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
            term.op, term.op
        )
        return ClevelThreshold(right, flipped, float(left.value))
    if isinstance(left, SeqPredicate) or isinstance(right, SeqPredicate):
        raise EslSemanticError(
            "SEQ/EXCEPTION_SEQ cannot appear inside comparisons; "
            "only CLEVEL_SEQ yields a value"
        )
    return None


def _detect_shape(analysis: Analysis) -> None:
    statement = analysis.statement
    if analysis.temporal is not None or analysis.clevel is not None:
        analysis.kind = "temporal"
        return
    if any(source.is_stream for source in analysis.sources):
        stream_sources = [s for s in analysis.sources if s.is_stream]
        if len(stream_sources) > 1:
            raise EslSemanticError(
                "joining multiple streams requires a temporal operator "
                "(SEQ/EXCEPTION_SEQ); plain multi-stream joins are not "
                "supported"
            )
        analysis.kind = "aggregate" if (
            analysis.has_aggregates or statement.group_by
        ) else "filter"
        return
    analysis.kind = "table_query"


def _hoist_partition_key(analysis: Analysis) -> None:
    """Detect an all-aliases equality chain on one shared field.

    ``C1.tagid = C2.tagid AND C1.tagid = C3.tagid AND C1.tagid = C4.tagid``
    lets the operator shard its state by ``tagid``.  Hoisting requires every
    temporal-operator alias to join the chain on the *same field name* — the
    common RFID case.  The hoisted equality terms are *removed* from the
    guard: per-field partitioning makes them tautological within a
    partition, and a guard-free operator can apply the RECENT domination
    purge (the paper's "aggressive purge of tuple history").
    """
    predicate = analysis.temporal or (
        analysis.clevel.predicate if analysis.clevel else None
    )
    if predicate is None:
        return
    aliases = {arg.name.lower() for arg in predicate.args}
    if len(aliases) < 2:
        return
    joined: dict[str, str] = {}
    field_names: set[str] = set()
    hoistable: list[Expression] = []
    for term in analysis.guard_terms:
        if not isinstance(term, BinaryOp) or term.op != "=":
            continue
        left, right = term.left, term.right
        if not isinstance(left, Column) or not isinstance(right, Column):
            continue
        if left.alias is None or right.alias is None:
            continue
        la, ra = left.alias.lower(), right.alias.lower()
        if la in aliases and ra in aliases:
            joined[la] = left.field
            joined[ra] = right.field
            field_names.add(left.field.lower())
            field_names.add(right.field.lower())
            hoistable.append(term)
    if len(field_names) == 1 and set(joined) == aliases:
        analysis.partition_field = next(iter(field_names))
        hoisted = set(map(id, hoistable))
        analysis.guard_terms = [
            term for term in analysis.guard_terms if id(term) not in hoisted
        ]


def _detect_multi_return(analysis: Analysis) -> None:
    """Paper footnote 4: per-tuple output for a single starred argument.

    A SELECT item that references a starred alias directly (``R1.tagid``
    rather than ``FIRST(R1*).tagid``) requests one output row per tuple of
    the star run.  Allowed for exactly one starred alias.
    """
    predicate = analysis.temporal
    if predicate is None:
        return
    starred = {arg.name.lower() for arg in predicate.args if arg.starred}
    if not starred:
        return
    referenced: set[str] = set()
    for item in analysis.statement.select_items:
        for node in item.expr.walk():
            if isinstance(node, Column) and node.alias is not None:
                if node.alias.lower() in starred:
                    referenced.add(node.alias.lower())
    if not referenced:
        return
    if len(referenced) > 1:
        raise EslSemanticError(
            "per-tuple return is allowed for only one starred argument "
            "(paper footnote 4); use FIRST/LAST/COUNT for the others"
        )
    analysis.multi_return_alias = next(iter(referenced))
