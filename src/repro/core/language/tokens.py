"""Token definitions for the ESL-EV lexer."""

from __future__ import annotations

import enum
from typing import Any


class TokenType(enum.Enum):
    IDENT = "ident"          # identifiers and keywords (keywords resolved later)
    NUMBER = "number"        # integer or float literal
    STRING = "string"        # 'single quoted'
    OPERATOR = "operator"    # = <> != < <= > >= + - * / % || :=
    LPAREN = "lparen"
    RPAREN = "rparen"
    LBRACKET = "lbracket"
    RBRACKET = "rbracket"
    COMMA = "comma"
    DOT = "dot"
    SEMICOLON = "semicolon"
    STAR = "star"            # '*' — multiplication, SELECT *, or star-sequence
    EOF = "eof"


#: Reserved words recognized case-insensitively.  Stored uppercase.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS",
        "INSERT", "INTO", "VALUES", "CREATE", "STREAM", "TABLE",
        "AGGREGATE", "INITIALIZE", "ITERATE", "TERMINATE", "RETURN",
        "AND", "OR", "NOT", "EXISTS", "IN", "IS", "NULL", "LIKE",
        "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "TRUE", "FALSE",
        "OVER", "RANGE", "ROWS", "PRECEDING", "FOLLOWING", "CURRENT",
        "UNBOUNDED", "MODE", "SEQ", "EXCEPTION_SEQ", "CLEVEL_SEQ",
        "UNRESTRICTED", "RECENT", "CHRONICLE", "CONSECUTIVE",
        "MILLISECONDS", "SECONDS", "MINUTES", "HOURS", "DAYS",
        "MILLISECOND", "SECOND", "MINUTE", "HOUR", "DAY",
        "FIRST", "LAST", "COUNT", "PREVIOUS", "DELETE", "UPDATE", "SET",
    }
)

#: Time-unit keywords (upper-case) accepted after a number.
TIME_UNIT_KEYWORDS = frozenset(
    {
        "MILLISECONDS", "SECONDS", "MINUTES", "HOURS", "DAYS",
        "MILLISECOND", "SECOND", "MINUTE", "HOUR", "DAY",
    }
)


class Token:
    """One lexical token with its source position."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type: TokenType, value: Any, line: int, column: int) -> None:
        self.type = type
        self.value = value
        self.line = line
        self.column = column

    def is_keyword(self, *words: str) -> bool:
        """True when this token is an identifier matching one of *words*
        case-insensitively."""
        if self.type is not TokenType.IDENT:
            return False
        upper = str(self.value).upper()
        return any(upper == word.upper() for word in words)

    @property
    def upper(self) -> str:
        return str(self.value).upper()

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}, {self.line}:{self.column})"
