"""The ESL-EV lexer.

Turns query text into a flat list of :class:`Token` objects.  Notable
conventions:

* ``--`` starts a line comment; ``/* ... */`` is a block comment.
* ``*`` is always lexed as :data:`TokenType.STAR`; the parser decides
  between multiplication, ``SELECT *``, and star-sequence ``R1*``.
* Strings use single quotes with ``''`` as the escaped quote, per SQL.
* ``:=`` (UDA assignment), ``<=``, ``>=``, ``<>``, ``!=``, ``||`` are
  multi-character operators.
* Unicode comparison operators ``≤`` and ``≥`` are accepted (the paper's
  typeset queries use them) and normalized to ``<=`` / ``>=``.
"""

from __future__ import annotations

from ...dsms.errors import EslSyntaxError
from .tokens import Token, TokenType

_SIMPLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
}

_TWO_CHAR_OPS = {"<=", ">=", "<>", "!=", "||", ":="}
_ONE_CHAR_OPS = set("=<>+-/%:")

_UNICODE_OPS = {"≤": "<=", "≥": ">="}


def tokenize(text: str) -> list[Token]:
    """Lex *text* into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def column(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]
        # Whitespace / newlines
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        # Comments
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise EslSyntaxError("unterminated block comment", line, column(i))
            for scanned in text[i:end]:
                if scanned == "\n":
                    line += 1
                    line_start = i  # close enough for error positions
            i = end + 2
            continue
        # Strings
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise EslSyntaxError(
                        "unterminated string literal", line, column(start)
                    )
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(
                Token(TokenType.STRING, "".join(parts), line, column(start))
            )
            continue
        # Numbers (integer or decimal; exponent accepted).  A leading dot is
        # NOT a number start — ``r1.5`` must lex as a dotted reference, so
        # write ``0.5`` rather than ``.5``.
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            is_float = False
            if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                is_float = True
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            if i < n and text[i] in "eE":
                peek = i + 1
                if peek < n and text[peek] in "+-":
                    peek += 1
                if peek < n and text[peek].isdigit():
                    is_float = True
                    i = peek
                    while i < n and text[i].isdigit():
                        i += 1
            raw = text[start:i]
            value: int | float = float(raw) if is_float else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, line, column(start)))
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(
                Token(TokenType.IDENT, text[start:i], line, column(start))
            )
            continue
        # Star (disambiguated by the parser)
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", line, column(i)))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", line, column(i)))
            i += 1
            continue
        if ch in _SIMPLE:
            tokens.append(Token(_SIMPLE[ch], ch, line, column(i)))
            i += 1
            continue
        if ch in _UNICODE_OPS:
            tokens.append(
                Token(TokenType.OPERATOR, _UNICODE_OPS[ch], line, column(i))
            )
            i += 1
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, two, line, column(i)))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, ch, line, column(i)))
            i += 1
            continue
        raise EslSyntaxError(f"unexpected character {ch!r}", line, column(i))

    tokens.append(Token(TokenType.EOF, None, line, column(i)))
    return tokens
