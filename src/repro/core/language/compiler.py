"""Compiler: lowers ESL-EV statements onto the DSMS and operator runtimes.

:func:`compile_program` is the entry point used by
:meth:`repro.dsms.engine.Engine.query`.  It parses the text, executes DDL
immediately, and wires each SELECT into a live pipeline:

* **temporal** queries (SEQ / EXCEPTION_SEQ / CLEVEL_SEQ in WHERE) become
  operator instances from :mod:`repro.core.operators`, with WHERE residuals
  compiled into operator guards, ``previous`` constraints hoisted into star
  gap checks, and all-alias equality chains hoisted into state partitioning;
* **filter** queries over a stream (plus optional tables) become per-tuple
  evaluation pipelines, with EXISTS sub-queries compiled to window/table
  probes — or, for symmetric PRECEDING-AND-FOLLOWING windows, to a
  :class:`~repro.core.operators.subquery.SymmetricExistsOperator`;
* **aggregate** queries become running (or windowed, or grouped) aggregation
  states emitting updated rows per arrival;
* **table queries** execute once and leave their rows on the handle.

Every query in the paper compiles through this module verbatim.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ...dsms.checkpoint import WindowBufferState
from ...dsms.engine import Collector, Engine, QueryHandle
from ...dsms.errors import (
    EslRuntimeError,
    EslSemanticError,
    SchemaError,
)
from ...dsms.expressions import (
    Column,
    CompileContext,
    Env,
    EvalFn,
    Expression,
    Literal,
    compile_vector,
    truthy,
)
from ...dsms.schema import Schema, TYPE_NAMES, FieldType
from ...dsms.streams import Stream
from ...dsms.table import Table
from ...dsms.tuples import Tuple
from ...dsms.uda import SqlUda
from ...dsms.windows import RangeWindowBuffer, RowsWindowBuffer
from ..operators import (
    ExceptionSeqOperator,
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqMatch,
    SymmetricExistsOperator,
    make_sequence_operator,
)
from ..operators.exception_seq import SequenceOutcome
from ..operators.guards import build_compiled_guard
from .analyzer import (
    Analysis,
    ClevelThreshold,
    analyze,
    collect_aggregate_calls,
)
from .ast_nodes import (
    CreateAggregate,
    CreateStream,
    CreateTable,
    DeleteStatement,
    ExistsPredicate,
    FromItem,
    InsertValues,
    PreviousRef,
    SelectItem,
    SelectStatement,
    SeqPredicate,
    StarAggregate,
    Statement,
    UpdateStatement,
    iter_and_terms,
)
from .parser import AggregateCall, parse_program


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def compile_program(engine: Engine, text: str, label: str) -> QueryHandle:
    """Compile every statement in *text*; return the last statement's handle."""
    statements = parse_program(text)
    handle: QueryHandle | None = None
    for index, statement in enumerate(statements):
        suffix = f"{label}[{index}]" if len(statements) > 1 else label
        handle = compile_statement(engine, statement, suffix)
    assert handle is not None  # parse_program rejects empty programs
    return handle


def compile_statement(engine: Engine, statement: Statement, label: str) -> QueryHandle:
    if isinstance(statement, CreateStream):
        engine.create_stream(statement.name, _columns_to_schema(statement.columns))
        return _ddl_handle(engine, label)
    if isinstance(statement, CreateTable):
        engine.create_table(statement.name, _columns_to_schema(statement.columns))
        return _ddl_handle(engine, label)
    if isinstance(statement, CreateAggregate):
        uda = SqlUda(
            statement.name,
            statement.init_block,
            statement.iterate_block,
            statement.terminate_expr,
            functions=engine.functions.as_mapping(),
            param=statement.param,
        )
        engine.register_uda(statement.name, uda.factory())
        return _ddl_handle(engine, label)
    if isinstance(statement, InsertValues):
        return _compile_insert_values(engine, statement, label)
    if isinstance(statement, DeleteStatement):
        return _execute_delete(engine, statement, label)
    if isinstance(statement, UpdateStatement):
        return _execute_update(engine, statement, label)
    if isinstance(statement, SelectStatement):
        return _compile_select(engine, statement, label)
    raise EslSemanticError(f"unsupported statement type {type(statement).__name__}")


def _ddl_handle(engine: Engine, label: str) -> QueryHandle:
    handle = QueryHandle(engine, label, None, Collector(label))
    return engine.register_query(handle)


def _columns_to_schema(columns: Sequence[tuple[str, str | None]]) -> Schema:
    fields = []
    for name, type_name in columns:
        if type_name is None:
            fields.append((name, FieldType.ANY))
        else:
            key = type_name.lower()
            if key not in TYPE_NAMES:
                raise EslSemanticError(f"unknown column type {type_name!r}")
            fields.append((name, TYPE_NAMES[key]))
    return Schema(fields)


def _compile_insert_values(
    engine: Engine, statement: InsertValues, label: str
) -> QueryHandle:
    if statement.target not in engine.tables:
        raise EslSemanticError(
            f"INSERT ... VALUES targets a table; {statement.target!r} is not one"
        )
    table = engine.tables.get(statement.target)
    env = Env(functions=engine.functions.as_mapping())
    for row in statement.rows:
        table.insert([expr.eval(env) for expr in row])
    return _ddl_handle(engine, label)


def _row_predicate(engine: Engine, table: Table, where):
    """Build a row-level predicate for DELETE/UPDATE (the table's columns
    are in scope unqualified or under the table name)."""
    if where is None:
        return lambda row: True

    def predicate(row) -> bool:
        tup = Tuple(table.schema, row, 0.0, table.name)
        env = Env(
            {table.name.lower(): tup}, engine.functions.as_mapping()
        )
        return truthy(where.eval(env))

    return predicate


def _execute_delete(engine: Engine, statement: DeleteStatement, label: str) -> QueryHandle:
    table = engine.tables.get(statement.target)
    removed = table.delete_where(_row_predicate(engine, table, statement.where))
    handle = _ddl_handle(engine, label)
    handle.affected_rows = removed  # type: ignore[attr-defined]
    return handle


def _execute_update(engine: Engine, statement: UpdateStatement, label: str) -> QueryHandle:
    table = engine.tables.get(statement.target)
    predicate = _row_predicate(engine, table, statement.where)
    changed = 0
    for row in list(table.rows()):
        if not predicate(row):
            continue
        tup = Tuple(table.schema, row, 0.0, table.name)
        env = Env({table.name.lower(): tup}, engine.functions.as_mapping())
        updates = {
            column: expr.eval(env) for column, expr in statement.assignments
        }
        table.update_where(lambda r, target=row: r is target or r == target, updates)
        changed += 1
    handle = _ddl_handle(engine, label)
    handle.affected_rows = changed  # type: ignore[attr-defined]
    return handle


# ---------------------------------------------------------------------------
# SELECT compilation
# ---------------------------------------------------------------------------


def _compile_select(
    engine: Engine, statement: SelectStatement, label: str
) -> QueryHandle:
    analysis = analyze(statement, engine)
    if analysis.kind == "temporal":
        handle = _compile_temporal(engine, analysis, label)
    elif analysis.kind == "table_query":
        handle = _compile_table_query(engine, analysis, label)
    else:
        symmetric = _find_symmetric_exists(analysis)
        if symmetric is not None:
            handle = _compile_symmetric(engine, analysis, symmetric, label)
        elif analysis.kind == "aggregate":
            handle = _compile_aggregate(engine, analysis, label)
        else:
            handle = _compile_filter(engine, analysis, label)
    # Routing metadata for sharded execution (ShardedEngine): which streams
    # feed this query, and the hoisted all-alias equality key, if any.
    handle.partition_field = analysis.partition_field
    handle.source_streams = tuple(
        source.name for source in analysis.sources if source.is_stream
    )
    return handle


# -- output plumbing ----------------------------------------------------------


class _Sink:
    """Where result rows go: a derived stream, a table, or a collector."""

    def __init__(
        self,
        engine: Engine,
        target: str | None,
        schema: Schema,
        label: str,
    ) -> None:
        self.engine = engine
        self.schema = schema
        self.stream: Stream | None = None
        self.table: Table | None = None
        self.collector: Collector | None = None
        if target is None:
            # Through the engine seam so the multi-query registry can
            # substitute a fan-out collector for registered queries.
            self.collector = engine.make_collector(label)
            # Result-row schema, for consumers that rebuild Tuples from
            # raw collected values (the sharded merge does).
            self.collector.schema = schema
        elif target in engine.tables:
            self.table = engine.tables.get(target)
            self._check_arity(len(self.table.schema))
        elif target in engine.streams:
            self.stream = engine.streams.get(target)
            self._check_arity(len(self.stream.schema))
        else:
            # Auto-create the derived stream with the projected schema —
            # convenient for pipelines whose DDL omits intermediates.
            self.stream = engine.create_stream(target, schema)

    def _check_arity(self, expected: int) -> None:
        if len(self.schema) != expected:
            raise EslSemanticError(
                f"SELECT produces {len(self.schema)} columns but the INSERT "
                f"target expects {expected}"
            )

    def emit(self, values: Sequence[Any], ts: float) -> None:
        if self.table is not None:
            self.table.insert(list(values))
        elif self.stream is not None:
            self.stream.push(Tuple(self.stream.schema, values, ts))
        else:
            assert self.collector is not None
            self.collector(Tuple(self.schema, values, ts))

    def bound_emit(self) -> Callable[[Sequence[Any], float], None]:
        """The emit path with the target decision made once, at wiring time."""
        if self.table is not None or self.stream is not None:
            return self.emit
        schema = self.schema
        collector = self.collector
        assert collector is not None
        trusted = Tuple.trusted

        def emit(values: Sequence[Any], ts: float) -> None:
            # Select-item evaluation yields exactly one value per schema
            # column and a float match timestamp, so the checked
            # constructor's re-validation is dead weight on this hot path.
            collector(trusted(schema, values, ts))

        return emit


def _unique_names(raw: Sequence[str]) -> list[str]:
    seen: dict[str, int] = {}
    out: list[str] = []
    for name in raw:
        base = name or "col"
        if base not in seen:
            seen[base] = 1
            out.append(base)
        else:
            seen[base] += 1
            out.append(f"{base}_{seen[base]}")
    return out


def _item_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, Column):
        return expr.field
    if isinstance(expr, StarAggregate):
        if expr.field:
            return f"{expr.func}_{expr.alias}_{expr.field}"
        return f"{expr.func}_{expr.alias}"
    if isinstance(expr, AggregateCall):
        if expr.arg is None:
            return expr.name.replace("(*)", "_all")
        if isinstance(expr.arg, Column):
            return f"{expr.name}_{expr.arg.field}"
        return expr.name
    return f"col{index + 1}"


def _select_schema(items: Sequence[SelectItem]) -> Schema:
    names = _unique_names([_item_name(item, i) for i, item in enumerate(items)])
    return Schema.of(*names)


def _expand_star_items(
    analysis: Analysis, engine: Engine
) -> list[SelectItem]:
    """Expand ``SELECT *`` into explicit column items."""
    items: list[SelectItem] = []
    for source in analysis.sources:
        schema = (
            engine.streams.get(source.name).schema
            if source.is_stream
            else engine.tables.get(source.name).schema
        )
        many = len(analysis.sources) > 1
        for field in schema.names:
            name = f"{source.alias}_{field}" if many else field
            items.append(SelectItem(Column(field, alias=source.alias), name))
    return items


def _resolved_items(analysis: Analysis, engine: Engine) -> list[SelectItem]:
    if analysis.statement.select_star:
        return _expand_star_items(analysis, engine)
    return list(analysis.statement.select_items)


# -- shared predicate helpers ---------------------------------------------------


def _make_env(engine: Engine, bindings: Mapping[str, Any]) -> Env:
    env = Env(functions=engine.functions.as_mapping())
    for alias, bound in bindings.items():
        env.bindings[alias.lower()] = bound  # may be a Tuple or a star run list
    return env


def _eval_term_lenient(term: Expression, env: Env) -> bool:
    """Evaluate a predicate term; unbound aliases / star runs count as pass.

    This is the guard discipline: a conjunct that cannot be checked yet must
    not reject the candidate (it will be checked when its references bind).
    """
    try:
        return term.eval(env) is not False
    except (EslRuntimeError, TypeError):
        return True


def _source_schema(engine: Engine, source: Any) -> Schema:
    if source.is_stream:
        return engine.streams.get(source.name).schema
    return engine.tables.get(source.name).schema


def _compile_ctx(
    engine: Engine,
    analysis: Analysis | None = None,
    extra: Mapping[str, Schema] | None = None,
) -> CompileContext | None:
    """The query's :class:`CompileContext`, or None when the engine was
    created with ``compile_expressions=False`` (interpreted ablation arm).

    The context carries the engine's live UDF mapping and every FROM alias's
    schema, so column references lower to positional access.
    """
    if not engine.compile_expressions:
        return None
    schemas: dict[str, Schema] = {}
    if analysis is not None:
        for source in analysis.sources:
            schemas[source.alias.lower()] = _source_schema(engine, source)
    if extra:
        for alias, schema in extra.items():
            schemas[alias.lower()] = schema
    return CompileContext(engine.functions.as_mapping(), schemas)


def _term_evaluators(
    terms: Sequence[Expression], ctx: CompileContext | None
) -> list[EvalFn]:
    """Closures for *terms*: compiled under *ctx*, else the eval methods."""
    if ctx is None:
        return [term.eval for term in terms]
    return [term.compile(ctx) for term in terms]


def _compile_where_probe(
    engine: Engine,
    terms: Sequence[Expression],
    exists_probes: Sequence[Callable[[Env], bool]],
    ctx: CompileContext | None = None,
) -> Callable[[Env], bool]:
    """A strict WHERE evaluator over residual terms plus compiled EXISTS."""
    fns = _term_evaluators(terms, ctx)

    def check(env: Env) -> bool:
        for fn in fns:
            if fn(env) is not True:  # strict: NULL counts as false
                return False
        for probe in exists_probes:
            if not probe(env):
                return False
        return True

    return check


def _attach_filter_vector_hook(
    on_tuple: Callable[[Tuple], None],
    guard_terms: Sequence[Expression],
    stream: Stream,
    alias: str,
    native_state: Any = None,
    allow_vector: bool = True,
) -> None:
    """Give a filter subscription a columnar admission mask when possible.

    The mask mirrors the strict WHERE discipline (a term value that is not
    True rejects the row) over the residual guard terms only: any EXISTS
    probes run scalar-side, but a row failing a guard term fails the full
    check regardless, so dropping it early is sound.  Survivors are still
    evaluated by ``on_tuple``; the mask may only skip materializing rows it
    proves rejected.  Any lowering gap or runtime error degrades to None —
    "materialize everything" — which is exactly the scalar path.

    With *native_state* set (the engine's ``native_admission`` tier) the
    terms are additionally lowered to a C kernel, consulted first per
    batch; a batch the kernel cannot handle falls to the vectorized
    closures (when *allow_vector*), then to full materialization — the
    native→vector→closure chain.
    """
    if not guard_terms:
        return
    native_fn = None
    if native_state is not None:
        from ...dsms.native import native_admission_mask

        native_fn = native_admission_mask(
            guard_terms, stream.schema, alias, "strict", native_state
        )
    vector_fns: tuple | None = None
    if allow_vector:
        fns = []
        for term in guard_terms:
            fn = compile_vector(term, stream.schema, alias)
            if fn is None:
                fns = None
                break
            fns.append(fn)
        if fns is not None:
            vector_fns = tuple(fns)
    if native_fn is None and vector_fns is None:
        return

    def vector_admission(cols: Any, tss: Any, n: int) -> Any:
        if native_fn is not None:
            mask = native_fn(cols, tss, n)
            if mask is not None:
                return mask
        if vector_fns is None:
            return None
        try:
            out = [True] * n
            for fn in vector_fns:
                values = fn(cols, tss, n)
                for index in range(n):
                    if values[index] is not True:  # strict: NULL rejects
                        out[index] = False
            return out
        except Exception:  # noqa: BLE001 - any error -> scalar path
            return None

    on_tuple.vector_admission = vector_admission  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# EXISTS sub-queries
# ---------------------------------------------------------------------------


def _find_symmetric_exists(analysis: Analysis) -> ExistsPredicate | None:
    """Detect an Example-8 style symmetric-window EXISTS conjunct."""
    for exists in analysis.exists_terms:
        inner = exists.query
        if len(inner.from_items) != 1:
            continue
        window = inner.from_items[0].window
        if window is not None and window.symmetric:
            return exists
    return None


def _compile_exists_probe(
    engine: Engine,
    exists: ExistsPredicate,
    outer_alias: str | None,
    teardowns: list[Callable[[], None]],
    ctx: CompileContext | None = None,
) -> Callable[[Env], bool]:
    """Compile EXISTS/NOT EXISTS into a synchronous probe.

    Supports: table sub-queries (correlated, Example 2), and windowed stream
    sub-queries anchored at the current outer tuple (Example 1).  Symmetric
    windows never reach here (handled by :func:`_compile_symmetric`).

    The probe loops candidates against one reused child Env (sub-query
    evaluation is synchronous, so rebinding is safe), with the inner WHERE
    terms compiled under *ctx* extended by the sub-query alias's schema.
    """
    inner = exists.query
    if len(inner.from_items) != 1:
        raise EslSemanticError("EXISTS sub-queries must have a single FROM item")
    item = inner.from_items[0]
    inner_key = item.alias.lower()
    is_table = item.name in engine.tables
    if not is_table and item.name not in engine.streams:
        raise EslSemanticError(f"unknown stream or table {item.name!r} in EXISTS")
    inner_schema = (
        engine.tables.get(item.name).schema
        if is_table
        else engine.streams.get(item.name).schema
    )
    inner_ctx = (
        None
        if ctx is None
        else CompileContext(ctx.functions, {**ctx.schemas, inner_key: inner_schema})
    )
    inner_terms = list(iter_and_terms(inner.where))
    nested = [t for t in inner_terms if isinstance(t, ExistsPredicate)]
    plain = [t for t in inner_terms if not isinstance(t, ExistsPredicate)]
    nested_probes = [
        _compile_exists_probe(engine, sub, outer_alias, teardowns, inner_ctx)
        for sub in nested
    ]
    if any(isinstance(t, SeqPredicate) for t in plain):
        raise EslSemanticError("temporal operators are not allowed in EXISTS")
    plain_fns = _term_evaluators(plain, inner_ctx)
    negate = exists.negate

    def scan(env: Env, candidates: Any) -> bool:
        child = env.child({})
        bindings = child.bindings
        for candidate in candidates:
            bindings[inner_key] = candidate
            qualified = True
            for fn in plain_fns:
                if fn(child) is not True:
                    qualified = False
                    break
            if qualified:
                for probe in nested_probes:
                    if not probe(child):
                        qualified = False
                        break
            if qualified:
                return not negate
        return negate

    if is_table:
        table = engine.tables.get(item.name)

        def table_probe(env: Env) -> bool:
            return scan(env, table.as_tuples())

        return table_probe

    # Stream sub-query: needs a window (unbounded stream scans are rejected).
    window = item.window
    if window is None:
        raise EslSemanticError(
            "EXISTS over a stream requires a window "
            "(e.g. TABLE(s OVER (RANGE 1 SECONDS PRECEDING CURRENT)))"
        )
    if window.symmetric:
        raise EslSemanticError(
            "symmetric EXISTS windows compile to a dedicated operator; "
            "they cannot be combined with other query shapes"
        )
    stream = engine.streams.get(item.name)
    buffer: RangeWindowBuffer | RowsWindowBuffer
    row_limit: int | None = None
    if window.kind == "rows":
        row_limit = int(window.preceding or 0)
        # When the sub-query reads the same stream as the outer query, the
        # probing tuple itself sits in the buffer (it is excluded from the
        # probe by identity) — hold one extra row so N true predecessors
        # remain visible; the probe re-applies the N limit below.
        buffer = RowsWindowBuffer(row_limit + 1)
    else:
        buffer = RangeWindowBuffer(window.preceding)
    teardowns.append(stream.subscribe(buffer.append))
    engine.register_checkpointable(WindowBufferState(engine, buffer))
    duration = window.preceding if window.preceding is not None else float("inf")
    anchor_name = window.anchor if window.anchor != "CURRENT" else outer_alias
    is_range = isinstance(buffer, RangeWindowBuffer)

    def stream_probe(env: Env) -> bool:
        if anchor_name is None:
            raise EslRuntimeError(
                "windowed EXISTS needs an outer stream tuple to anchor on"
            )
        anchor = env.lookup_alias(anchor_name)
        if is_range:
            candidates: Any = buffer.tuples_preceding(
                anchor, duration, include_anchor=False
            )
        else:
            held = list(buffer.tuples_preceding(anchor, include_anchor=False))
            candidates = held[-row_limit:] if row_limit else []
        return scan(env, candidates)

    return stream_probe


# ---------------------------------------------------------------------------
# Filter queries (single stream + optional tables)
# ---------------------------------------------------------------------------


def _stream_source(analysis: Analysis) -> Any:
    streams = [s for s in analysis.sources if s.is_stream]
    if len(streams) != 1:
        raise EslSemanticError("expected exactly one stream source")
    return streams[0]


def _compile_filter(engine: Engine, analysis: Analysis, label: str) -> QueryHandle:
    statement = analysis.statement
    source = _stream_source(analysis)
    if source.item.window is not None:
        raise EslSemanticError(
            "a window on the main FROM stream is only meaningful for "
            "aggregates; use SnapshotView for ad-hoc windowed scans"
        )
    table_sources = [s for s in analysis.sources if s.is_table]
    items = _resolved_items(analysis, engine)
    schema = _select_schema(items)
    sink = _Sink(engine, statement.insert_into, schema, label)
    teardowns: list[Callable[[], None]] = []
    ctx = _compile_ctx(engine, analysis)
    exists_probes = [
        _compile_exists_probe(engine, ex, source.alias, teardowns, ctx)
        for ex in analysis.exists_terms
    ]
    check = _compile_where_probe(engine, analysis.guard_terms, exists_probes, ctx)
    item_fns = _term_evaluators([item.expr for item in items], ctx)
    stream = engine.streams.get(source.name)
    functions = engine.functions.as_mapping()
    source_key = source.alias.lower()
    emit = sink.emit

    def bind_tables(env: Env, depth: int) -> Any:
        """Nested-loop the table sources; yields fully-bound envs."""
        if depth == len(table_sources):
            yield env
            return
        table_source = table_sources[depth]
        table = engine.tables.get(table_source.name)
        for row_tuple in table.as_tuples():
            env.bindings[table_source.alias.lower()] = row_tuple
            yield from bind_tables(env, depth + 1)
        env.bindings.pop(table_source.alias.lower(), None)

    if table_sources:

        def on_tuple(tup: Tuple) -> None:
            base = Env({source_key: tup}, functions)
            for env in bind_tables(base, 0):
                if not check(env):
                    continue
                emit([fn(env) for fn in item_fns], tup.ts)

    else:
        # Single-stream hot path: one fresh Env per tuple (an Env must not
        # outlive the tuple it binds — sinks may re-enter this pipeline),
        # no generator frame.
        def on_tuple(tup: Tuple) -> None:
            env = Env({source_key: tup}, functions)
            if check(env):
                emit([fn(env) for fn in item_fns], tup.ts)

        allow_vector = bool(getattr(engine, "vectorized_admission", False))
        native_state = getattr(engine, "native_state", None)
        if allow_vector or native_state is not None:
            _attach_filter_vector_hook(
                on_tuple,
                analysis.guard_terms,
                stream,
                source.alias,
                native_state=native_state,
                allow_vector=allow_vector,
            )

    teardowns.append(stream.subscribe(on_tuple))
    handle = QueryHandle(engine, label, sink.stream, sink.collector, teardowns)
    handle.sink_table = sink.table  # type: ignore[attr-defined]
    return engine.register_query(handle)


# ---------------------------------------------------------------------------
# Aggregate queries
# ---------------------------------------------------------------------------


class _AggSlot(Expression):
    """Placeholder for an aggregate's current value inside a select item."""

    __slots__ = ("cell",)

    def __init__(self) -> None:
        self.cell: list[Any] = [None]

    def eval(self, env: Env) -> Any:
        return self.cell[0]

    def __repr__(self) -> str:
        return f"_AggSlot({self.cell[0]!r})"


def _rewrite_with_slots(
    expr: Expression, slots: dict[int, tuple[AggregateCall, _AggSlot]]
) -> Expression:
    """Replace AggregateCall nodes with slots, registering them by identity."""
    if isinstance(expr, AggregateCall):
        slot = _AggSlot()
        slots[id(expr)] = (expr, slot)
        return slot
    # Reuse the promote machinery's shape: rebuild known node types.
    from ...dsms.expressions import (
        And, Between, BinaryOp, Case, InList, IsNull, Like, Negate, Not, Or,
        FunctionCall,
    )

    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _rewrite_with_slots(expr.left, slots),
            _rewrite_with_slots(expr.right, slots),
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name, [_rewrite_with_slots(a, slots) for a in expr.args]
        )
    if isinstance(expr, And):
        return And(*(_rewrite_with_slots(o, slots) for o in expr.operands))
    if isinstance(expr, Or):
        return Or(*(_rewrite_with_slots(o, slots) for o in expr.operands))
    if isinstance(expr, Not):
        return Not(_rewrite_with_slots(expr.operand, slots))
    if isinstance(expr, Negate):
        return Negate(_rewrite_with_slots(expr.operand, slots))
    if isinstance(expr, IsNull):
        return IsNull(_rewrite_with_slots(expr.operand, slots), expr.negate)
    if isinstance(expr, Between):
        return Between(
            _rewrite_with_slots(expr.operand, slots),
            _rewrite_with_slots(expr.low, slots),
            _rewrite_with_slots(expr.high, slots),
            expr.negate,
        )
    if isinstance(expr, InList):
        return InList(
            _rewrite_with_slots(expr.operand, slots),
            [_rewrite_with_slots(o, slots) for o in expr.options],
            expr.negate,
        )
    if isinstance(expr, Like):
        return Like(
            _rewrite_with_slots(expr.operand, slots),
            _rewrite_with_slots(expr.pattern, slots),
            expr.negate,
        )
    if isinstance(expr, Case):
        return Case(
            [
                (_rewrite_with_slots(c, slots), _rewrite_with_slots(v, slots))
                for c, v in expr.branches
            ],
            _rewrite_with_slots(expr.default, slots)
            if expr.default is not None
            else None,
        )
    return expr


class _AggState:
    """Aggregate states for one group key."""

    __slots__ = ("entries", "states")

    def __init__(self, engine: Engine, calls: Sequence[AggregateCall]) -> None:
        self.entries = [
            (call, engine.aggregates.create(call.name)) for call in calls
        ]
        self.states = [agg.initialize() for _call, agg in self.entries]

    def update(self, env: Env) -> None:
        for index, (call, agg) in enumerate(self.entries):
            value = call.arg.eval(env) if call.arg is not None else 1
            self.states[index] = agg.iterate(self.states[index], value)

    def values(self) -> list[Any]:
        return [
            agg.terminate(state)
            for (_call, agg), state in zip(self.entries, self.states)
        ]


class _AggQueryState:
    """Checkpoint adapter for one aggregate query's mutable state.

    The running group states and the optional window buffer live in
    closure scope; this adapter holds references to both so the engine's
    checkpoint machinery can capture them.  Aggregate states are already
    plain data (numbers, tuples, SQL-UDA table rows), so they cross the
    checkpoint as-is; :class:`_AggState` wrappers are rebuilt at restore.
    """

    def __init__(
        self,
        engine: Engine,
        calls: Sequence[AggregateCall],
        groups: dict[Any, _AggState],
        window_buffer: Any,
    ) -> None:
        self.engine = engine
        self.calls = calls
        self.groups = groups
        self.buffer = (
            WindowBufferState(engine, window_buffer)
            if window_buffer is not None
            else None
        )

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "groups": [
                (key, list(state.states)) for key, state in self.groups.items()
            ],
            "buffer": (
                self.buffer.snapshot_state() if self.buffer is not None else None
            ),
        }

    def restore_state(self, blob: Mapping[str, Any]) -> None:
        self.groups.clear()
        for key, states in blob["groups"]:
            state = _AggState(self.engine, self.calls)
            state.states = list(states)
            self.groups[key] = state
        if self.buffer is not None:
            self.buffer.restore_state(blob["buffer"])


def _compile_aggregate(engine: Engine, analysis: Analysis, label: str) -> QueryHandle:
    statement = analysis.statement
    source = _stream_source(analysis)
    if [s for s in analysis.sources if s.is_table]:
        raise EslSemanticError(
            "aggregate queries over stream-table joins are not supported; "
            "stage the join through a derived stream first"
        )
    items = _resolved_items(analysis, engine)
    # Replace aggregate calls with slots.
    slots: dict[int, tuple[AggregateCall, _AggSlot]] = {}
    rewritten: list[SelectItem] = []
    for item in items:
        rewritten.append(
            SelectItem(_rewrite_with_slots(item.expr, slots), item.alias)
        )
    having = (
        _rewrite_with_slots(statement.having, slots)
        if statement.having is not None
        else None
    )
    calls = [call for call, _slot in slots.values()]
    slot_list = [slot for _call, slot in slots.values()]
    schema = _select_schema(items)
    sink = _Sink(engine, statement.insert_into, schema, label)
    teardowns: list[Callable[[], None]] = []
    ctx = _compile_ctx(engine, analysis)
    exists_probes = [
        _compile_exists_probe(engine, ex, source.alias, teardowns, ctx)
        for ex in analysis.exists_terms
    ]
    check = _compile_where_probe(engine, analysis.guard_terms, exists_probes, ctx)
    stream = engine.streams.get(source.name)
    group_exprs = list(statement.group_by)
    group_fns = _term_evaluators(group_exprs, ctx)

    window = source.item.window
    window_buffer: RangeWindowBuffer | RowsWindowBuffer | None = None
    if window is not None:
        if window.symmetric or window.anchor != "CURRENT":
            raise EslSemanticError(
                "aggregate windows must be RANGE/ROWS ... PRECEDING CURRENT"
            )
        if window.kind == "rows":
            window_buffer = RowsWindowBuffer(int(window.preceding or 0))
        else:
            window_buffer = RangeWindowBuffer(window.preceding)

    # Running (cumulative) state per group key.
    groups: dict[Any, _AggState] = {}
    engine.register_checkpointable(
        _AggQueryState(engine, calls, groups, window_buffer)
    )

    def group_key(env: Env) -> Any:
        if not group_fns:
            return None
        return tuple(fn(env) for fn in group_fns)

    def emit_row(env: Env, agg_values: Sequence[Any], ts: float) -> None:
        for slot, value in zip(slot_list, agg_values):
            slot.cell[0] = value
        if having is not None and not truthy(having.eval(env)):
            return
        sink.emit([item.expr.eval(env) for item in rewritten], ts)

    def on_tuple(tup: Tuple) -> None:
        env = _make_env(engine, {source.alias: tup})
        if not check(env):
            return
        if window_buffer is not None:
            window_buffer.append(tup)
            key = group_key(env)
            # Recompute over the (possibly grouped) window contents.
            fresh = _AggState(engine, calls)
            values_per_call: list[Any] = []
            for call, agg in fresh.entries:
                state = agg.initialize()
                for held in window_buffer:
                    held_env = _make_env(engine, {source.alias: held})
                    if not check(held_env):
                        continue
                    if group_key(held_env) != key:
                        continue
                    value = call.arg.eval(held_env) if call.arg is not None else 1
                    state = agg.iterate(state, value)
                values_per_call.append(agg.terminate(state))
            emit_row(env, values_per_call, tup.ts)
            return
        key = group_key(env)
        state = groups.get(key)
        if state is None:
            state = _AggState(engine, calls)
            groups[key] = state
        state.update(env)
        emit_row(env, state.values(), tup.ts)

    teardowns.append(stream.subscribe(on_tuple))
    handle = QueryHandle(engine, label, sink.stream, sink.collector, teardowns)
    handle.sink_table = sink.table  # type: ignore[attr-defined]
    return engine.register_query(handle)


# ---------------------------------------------------------------------------
# One-shot table queries
# ---------------------------------------------------------------------------


def _compile_table_query(
    engine: Engine, analysis: Analysis, label: str
) -> QueryHandle:
    statement = analysis.statement
    items = _resolved_items(analysis, engine)
    schema = _select_schema(items)
    sink = _Sink(engine, statement.insert_into, schema, label)
    teardowns: list[Callable[[], None]] = []
    ctx = _compile_ctx(engine, analysis)
    exists_probes = [
        _compile_exists_probe(engine, ex, None, teardowns, ctx)
        for ex in analysis.exists_terms
    ]
    check = _compile_where_probe(engine, analysis.guard_terms, exists_probes, ctx)

    def bind(depth: int, env: Env) -> Any:
        if depth == len(analysis.sources):
            yield env
            return
        source = analysis.sources[depth]
        table = engine.tables.get(source.name)
        for row_tuple in table.as_tuples():
            env.bindings[source.alias.lower()] = row_tuple
            yield from bind(depth + 1, env)
        env.bindings.pop(source.alias.lower(), None)

    base = _make_env(engine, {})
    if analysis.has_aggregates:
        slots: dict[int, tuple[AggregateCall, _AggSlot]] = {}
        rewritten = [
            SelectItem(_rewrite_with_slots(item.expr, slots), item.alias)
            for item in items
        ]
        calls = [call for call, _slot in slots.values()]
        slot_list = [slot for _call, slot in slots.values()]
        fresh = _AggState(engine, calls)
        states = [(call, agg, agg.initialize()) for call, agg in fresh.entries]
        updated = []
        for call, agg, state in states:
            for env in bind(0, base):
                if not check(env):
                    continue
                value = call.arg.eval(env) if call.arg is not None else 1
                state = agg.iterate(state, value)
            updated.append(agg.terminate(state))
        for slot, value in zip(slot_list, updated):
            slot.cell[0] = value
        sink.emit([item.expr.eval(base) for item in rewritten], engine.now)
    else:
        for env in bind(0, base):
            if not check(env):
                continue
            sink.emit([item.expr.eval(env) for item in items], engine.now)
    handle = QueryHandle(engine, label, sink.stream, sink.collector, teardowns)
    handle.sink_table = sink.table  # type: ignore[attr-defined]
    return engine.register_query(handle)


# ---------------------------------------------------------------------------
# Symmetric-window EXISTS (Example 8)
# ---------------------------------------------------------------------------


def _compile_symmetric(
    engine: Engine,
    analysis: Analysis,
    exists: ExistsPredicate,
    label: str,
) -> QueryHandle:
    statement = analysis.statement
    source = _stream_source(analysis)
    if len(analysis.exists_terms) != 1 or analysis.has_aggregates:
        raise EslSemanticError(
            "a symmetric-window EXISTS must be the only sub-query of a "
            "plain filter query"
        )
    inner = exists.query
    item = inner.from_items[0]
    window = item.window
    assert window is not None
    if window.anchor.lower() != source.alias.lower():
        raise EslSemanticError(
            f"symmetric window anchor {window.anchor!r} must be the outer "
            f"FROM alias {source.alias!r}"
        )
    if item.name not in engine.streams:
        raise EslSemanticError("symmetric EXISTS requires a stream sub-query")
    inner_terms = list(iter_and_terms(inner.where))
    if any(isinstance(t, (ExistsPredicate, SeqPredicate)) for t in inner_terms):
        raise EslSemanticError("nested predicates are not allowed here")

    items = _resolved_items(analysis, engine)
    schema = _select_schema(items)
    sink = _Sink(engine, statement.insert_into, schema, label)
    inner_stream_schema = engine.streams.get(item.name).schema
    ctx = _compile_ctx(engine, analysis, {item.alias: inner_stream_schema})
    outer_fns = _term_evaluators(analysis.guard_terms, ctx)
    inner_fns = _term_evaluators(inner_terms, ctx)
    item_fns = _term_evaluators([sel.expr for sel in items], ctx)
    functions = engine.functions.as_mapping()
    outer_key = source.alias.lower()
    inner_key = item.alias.lower()

    def outer_where(tup: Tuple) -> bool:
        env = Env({outer_key: tup}, functions)
        return all(fn(env) is True for fn in outer_fns)

    def inner_where(candidate: Tuple, outer: Tuple) -> bool:
        env = Env({outer_key: outer, inner_key: candidate}, functions)
        return all(fn(env) is True for fn in inner_fns)

    def on_result(outer: Tuple, decided_at: float) -> None:
        env = Env({outer_key: outer}, functions)
        sink.emit([fn(env) for fn in item_fns], decided_at)

    operator = SymmetricExistsOperator(
        engine,
        outer_stream=source.name,
        inner_stream=item.name,
        preceding=window.preceding or 0.0,
        following=window.following,
        outer_where=outer_where,
        inner_where=inner_where,
        negate=exists.negate,
        on_result=on_result,
    )
    handle = QueryHandle(
        engine, label, sink.stream, sink.collector, [operator.stop]
    )
    handle.operator = operator  # type: ignore[attr-defined]
    handle.sink_table = sink.table  # type: ignore[attr-defined]
    return engine.register_query(handle)


# ---------------------------------------------------------------------------
# Temporal queries
# ---------------------------------------------------------------------------


def _build_seq_args(
    engine: Engine,
    analysis: Analysis,
    predicate: SeqPredicate,
    ctx: CompileContext | None = None,
) -> list[SeqArg]:
    args: list[SeqArg] = []
    gap_terms_by_alias: dict[str, list[Expression]] = {}
    for term in analysis.gap_terms:
        aliases = {
            node.alias.lower()
            for node in term.walk()
            if isinstance(node, PreviousRef)
        }
        if len(aliases) != 1:
            raise EslSemanticError(
                "a 'previous' constraint must reference exactly one argument"
            )
        gap_terms_by_alias.setdefault(next(iter(aliases)), []).append(term)

    starred_aliases = {a.name.lower() for a in predicate.args if a.starred}
    for alias, terms in gap_terms_by_alias.items():
        if alias not in starred_aliases:
            raise EslSemanticError(
                f"'previous' constraint on {alias!r}, which is not a starred "
                "argument of the temporal operator"
            )

    for arg_syntax in predicate.args:
        source = analysis.source_for(arg_syntax.name)
        if not source.is_stream:
            raise EslSemanticError(
                f"temporal operator argument {arg_syntax.name!r} must be a "
                "stream"
            )
        gap_check = None
        alias_key = arg_syntax.name.lower()
        if alias_key in gap_terms_by_alias:
            terms = gap_terms_by_alias[alias_key]
            functions = engine.functions.as_mapping()

            def make_check(
                terms: Sequence[Expression], alias: str
            ) -> Callable[[Tuple, Tuple], bool]:
                fns = _term_evaluators(terms, ctx)
                prev_key = f"{alias}.previous"
                # One scratch Env, rebound per call: gap checks never nest.
                env = Env(functions=functions)

                def gap_check(prev: Tuple, cur: Tuple) -> bool:
                    env.bindings = {alias: cur, prev_key: prev}
                    return all(fn(env) is True for fn in fns)

                return gap_check

            gap_check = make_check(terms, alias_key)
        args.append(
            SeqArg(
                source.name,
                alias=arg_syntax.name,
                starred=arg_syntax.starred,
                gap_check=gap_check,
            )
        )
    return args


def _build_window(
    predicate: SeqPredicate, args: Sequence[SeqArg]
) -> OperatorWindow | None:
    if predicate.window is None:
        return None
    anchor_name = predicate.window.anchor.lower()
    for index, arg in enumerate(args):
        if arg.alias.lower() == anchor_name:
            return OperatorWindow(
                predicate.window.seconds, index, predicate.window.direction
            )
    raise EslSemanticError(
        f"window anchor {predicate.window.anchor!r} is not an operator argument"
    )


def _make_guard(
    engine: Engine,
    guard_terms: Sequence[Expression],
    ctx: CompileContext | None = None,
    arg_aliases: Sequence[str] = (),
) -> Callable[[Mapping[str, Any]], bool] | None:
    """The operator guard for the residual WHERE conjuncts.

    Compiled engines get a :class:`~repro.core.operators.guards.CompiledGuard`
    (single-alias conjuncts decided at admission time, cross-alias ones at
    pairing time); interpreted engines get the lenient closure over eval().
    """
    if not guard_terms:
        return None
    if ctx is not None:
        return build_compiled_guard(guard_terms, ctx, arg_aliases)
    functions = engine.functions.as_mapping()

    def guard(bindings: Mapping[str, Any]) -> bool:
        env = Env(functions=functions)
        for alias, bound in bindings.items():
            env.bindings[alias.lower()] = bound
        return all(_eval_term_lenient(term, env) for term in guard_terms)

    return guard


def _compile_temporal(engine: Engine, analysis: Analysis, label: str) -> QueryHandle:
    statement = analysis.statement
    if statement.group_by or statement.having is not None:
        raise EslSemanticError(
            "GROUP BY / HAVING cannot be combined with temporal operators"
        )
    predicate = analysis.temporal or analysis.clevel.predicate  # type: ignore[union-attr]
    if analysis.exists_terms:
        raise EslSemanticError(
            "EXISTS sub-queries cannot be combined with temporal operators"
        )
    ctx = _compile_ctx(engine, analysis)
    args = _build_seq_args(engine, analysis, predicate, ctx)
    window = _build_window(predicate, args)
    guard = _make_guard(
        engine, analysis.guard_terms, ctx, [arg.alias for arg in args]
    )
    partition_by = None
    if analysis.partition_field is not None:
        field = analysis.partition_field
        schemas = [engine.streams.get(arg.stream).schema for arg in args]
        unique = []
        for s in schemas:
            if not any(s is seen for seen in unique):
                unique.append(s)
        if ctx is not None and all(field in s for s in unique):
            # Every argument stream's schema carries the partition field:
            # route on a positional read keyed by schema identity (id() of
            # objects the streams keep alive), falling back to name lookup
            # for pass-through tuples from elsewhere.
            position_of = {id(s): s.position(field) for s in unique}.get

            def partition_by(tup: Tuple) -> Any:
                position = position_of(id(tup.schema))
                if position is not None:
                    return tup.values[position]
                return tup.get(field)

        else:

            def partition_by(tup: Tuple) -> Any:  # noqa: F811
                return tup.get(field)

    items = _resolved_items_temporal(analysis, engine, args)
    schema = _select_schema(items)
    sink = _Sink(engine, statement.insert_into, schema, label)

    if predicate.op_name == "SEQ":
        return _wire_seq(
            engine, analysis, predicate, args, window, guard, partition_by,
            items, sink, label, ctx,
        )
    return _wire_exception_seq(
        engine, analysis, predicate, args, window, guard, partition_by,
        items, sink, label, ctx,
    )


def _resolved_items_temporal(
    analysis: Analysis, engine: Engine, args: Sequence[SeqArg]
) -> list[SelectItem]:
    if not analysis.statement.select_star:
        return list(analysis.statement.select_items)
    # SELECT * over a temporal match: flatten plain aliases; starred aliases
    # contribute their run count (per-tuple expansion must be explicit).
    items: list[SelectItem] = []
    for arg in args:
        schema = engine.streams.get(arg.stream).schema
        if arg.starred:
            items.append(
                SelectItem(StarAggregate("COUNT", arg.alias), f"{arg.alias}_count")
            )
            continue
        for field in schema.names:
            items.append(
                SelectItem(Column(field, alias=arg.alias), f"{arg.alias}_{field}")
            )
    return items


def _eval_item(item: SelectItem, env: Env) -> Any:
    """Evaluate a select item, yielding NULL for unbound references
    (EXCEPTION_SEQ partial sequences leave later stages unbound)."""
    try:
        return item.expr.eval(env)
    except EslRuntimeError:
        return None


def _eval_items(fns: Sequence[EvalFn], env: Env) -> list[Any]:
    """Evaluate compiled select items with the same NULL-for-unbound rule."""
    values: list[Any] = []
    for fn in fns:
        try:
            values.append(fn(env))
        except EslRuntimeError:
            values.append(None)
    return values


def _column_extraction_plan(
    engine: Engine,
    args: Sequence[SeqArg],
    items: Sequence[SelectItem],
    ctx: CompileContext | None,
    multi_alias: str | None,
) -> list[tuple[str, int]] | None:
    """A direct positional plan for an all-Column SEQ select list, or None.

    Returns ``[(binding_key, position), ...]`` — one entry per item — when
    compiled execution is on, no item needs a star run, and every item is
    an ``alias.field`` read on a star-free operator argument whose stream
    schema carries the field.  Anything else (expressions, bare columns,
    star aliases) falls back to the general Env-based evaluation.
    """
    if ctx is None or multi_alias is not None:
        return None
    by_alias: dict[str, tuple[str, Any]] = {}
    for arg in args:
        if not arg.starred:
            schema = engine.streams.get(arg.stream).schema
            by_alias[arg.alias.lower()] = (arg.alias, schema)
    plan: list[tuple[str, int]] = []
    for item in items:
        expr = item.expr
        if type(expr) is not Column or expr.alias is None:
            return None
        entry = by_alias.get(expr.alias.lower())
        if entry is None or expr.field not in entry[1]:
            return None
        plan.append((entry[0], entry[1].position(expr.field)))
    return plan


def _wire_seq(
    engine: Engine,
    analysis: Analysis,
    predicate: SeqPredicate,
    args: list[SeqArg],
    window: OperatorWindow | None,
    guard: Callable[[Mapping[str, Any]], bool] | None,
    partition_by: Callable[[Tuple], Any] | None,
    items: list[SelectItem],
    sink: _Sink,
    label: str,
    ctx: CompileContext | None = None,
) -> QueryHandle:
    mode = (
        PairingMode.parse(predicate.mode)
        if predicate.mode is not None
        else PairingMode.UNRESTRICTED
    )
    multi_alias = analysis.multi_return_alias
    item_fns = _term_evaluators([item.expr for item in items], ctx)
    functions = engine.functions.as_mapping()
    emit = sink.bound_emit()

    plan = _column_extraction_plan(engine, args, items, ctx, multi_alias)
    if plan is not None:
        # Every select item is a plain alias.field read on a star-free
        # argument: extract positionally from the match bindings.  A
        # star-free SEQ match always binds every alias, and any tuple bound
        # for an alias was delivered on that alias's stream, whose push
        # contract guarantees an equal schema — hence an identical field
        # layout — so the positional read needs no per-match checks.

        def on_match(match: SeqMatch) -> None:
            bound = match.bindings
            emit([bound[key].values[pos] for key, pos in plan], match.ts)

    else:

        def on_match(match: SeqMatch) -> None:  # noqa: F811
            env = Env(functions=functions)
            bindings = env.bindings
            for alias, bound in match.bindings.items():
                bindings[alias.lower()] = bound
            if multi_alias is not None:
                run = match.run_for(multi_alias)
                for tup in run:
                    child = env.child({multi_alias: tup})
                    emit(_eval_items(item_fns, child), match.ts)
                return
            emit(_eval_items(item_fns, env), match.ts)

    operator = make_sequence_operator(
        engine,
        args,
        mode=mode,
        window=window,
        guard=guard,
        partition_by=partition_by,
        on_match=on_match,
        # The query consumes matches through on_match/sink; retaining every
        # SeqMatch on the operator would grow without bound on a
        # continuous query.
        store_matches=False,
    )
    handle = QueryHandle(
        engine, label, sink.stream, sink.collector, [operator.stop]
    )
    handle.operator = operator  # type: ignore[attr-defined]
    handle.sink_table = sink.table
    return engine.register_query(handle)


def _wire_exception_seq(
    engine: Engine,
    analysis: Analysis,
    predicate: SeqPredicate,
    args: list[SeqArg],
    window: OperatorWindow | None,
    guard: Callable[[Mapping[str, Any]], bool] | None,
    partition_by: Callable[[Tuple], Any] | None,
    items: list[SelectItem],
    sink: _Sink,
    label: str,
    ctx: CompileContext | None = None,
) -> QueryHandle:
    clevel: ClevelThreshold | None = analysis.clevel
    n = len(args)
    mode = (
        PairingMode.parse(predicate.mode)
        if predicate.mode is not None
        else PairingMode.CONSECUTIVE
    )
    item_fns = _term_evaluators([item.expr for item in items], ctx)
    functions = engine.functions.as_mapping()
    alias_keys = [arg.alias.lower() for arg in args]
    starred = [arg.starred for arg in args]

    def accepts(level: int) -> bool:
        if clevel is not None:
            return clevel.accepts(level)
        return level < n  # EXCEPTION_SEQ: any incomplete sequence

    def on_outcome(outcome: SequenceOutcome) -> None:
        if not accepts(outcome.level):
            return
        env = Env(functions=functions)
        bindings = env.bindings
        for key, is_star, run in zip(alias_keys, starred, outcome.runs):
            bindings[key] = list(run) if is_star else run[-1]
        sink.emit(_eval_items(item_fns, env), outcome.ts)

    operator = ExceptionSeqOperator(
        engine,
        args,
        window=window,
        mode=mode,
        guard=guard,
        partition_by=partition_by,
        on_outcome=on_outcome,
    )
    handle = QueryHandle(
        engine, label, sink.stream, sink.collector, [operator.stop]
    )
    handle.operator = operator  # type: ignore[attr-defined]
    handle.sink_table = sink.table
    return engine.register_query(handle)


# ---------------------------------------------------------------------------
# Ad-hoc snapshot queries (Engine.snapshot)
# ---------------------------------------------------------------------------


def execute_snapshot(engine: Engine, text: str) -> list[dict[str, Any]]:
    """One-shot SELECT over current state (paper section 2.1, ad-hoc
    queries).

    Streams in FROM read from their enabled histories
    (:meth:`Engine.enable_history`); tables read their current rows.
    Supports WHERE, projection, aggregates, GROUP BY/HAVING, and EXISTS
    over tables.  Temporal operators and stream EXISTS sub-queries are for
    continuous queries, not snapshots.
    """
    statements = parse_program(text)
    if len(statements) != 1 or not isinstance(statements[0], SelectStatement):
        raise EslSemanticError("snapshot() takes exactly one SELECT statement")
    statement = statements[0]
    if statement.insert_into is not None:
        raise EslSemanticError("snapshot queries cannot INSERT")

    # Resolve sources to (alias, materialized tuples, declared schema).
    sources: list[tuple[str, list[Tuple], Schema]] = []
    for item in statement.from_items:
        if item.window is not None:
            raise EslSemanticError(
                "snapshot FROM items take no window; the retention was set "
                "by enable_history()"
            )
        if item.name in engine.streams:
            view = engine.history(item.name)
            schema = engine.streams.get(item.name).schema
            sources.append((item.alias, view.current(), schema))
        elif item.name in engine.tables:
            table = engine.tables.get(item.name)
            sources.append(
                (item.alias, list(table.as_tuples(ts=engine.now)), table.schema)
            )
        else:
            raise EslSemanticError(
                f"unknown stream or table {item.name!r} in snapshot FROM"
            )
    alias_seen: set[str] = set()
    for alias, __, __schema in sources:
        if alias.lower() in alias_seen:
            raise EslSemanticError(f"duplicate FROM alias {alias!r}")
        alias_seen.add(alias.lower())
    ctx = (
        CompileContext(
            engine.functions.as_mapping(),
            {alias: schema for alias, __, schema in sources},
        )
        if engine.compile_expressions
        else None
    )

    # Classify WHERE.
    plain_terms: list[Expression] = []
    exists_probes: list[Callable[[Env], bool]] = []
    throwaway: list[Callable[[], None]] = []
    for term in iter_and_terms(statement.where):
        if isinstance(term, SeqPredicate) or any(
            isinstance(node, SeqPredicate) for node in term.walk()
        ):
            raise EslSemanticError(
                "temporal operators need a continuous query, not a snapshot"
            )
        if isinstance(term, ExistsPredicate):
            if term.query.from_items[0].name not in engine.tables:
                raise EslSemanticError(
                    "snapshot EXISTS sub-queries must read tables"
                )
            exists_probes.append(
                _compile_exists_probe(engine, term, None, throwaway, ctx)
            )
            continue
        plain_terms.append(term)
    for undo in throwaway:
        undo()  # table probes never subscribe, but be safe
    check = _compile_where_probe(engine, plain_terms, exists_probes, ctx)

    # Select items (promote aggregates against the engine registries).
    from .analyzer import promote_aggregates

    if statement.select_star:
        items = []
        many = len(sources) > 1
        # Expand from the declared schema of each FROM item — resolved by
        # FROM *name* at source-binding time, never by alias (an alias that
        # happens to collide with another stream's name must not change the
        # expansion).
        for alias, __tuples, schema in sources:
            for field in schema.names:
                name = f"{alias}_{field}" if many else field
                items.append(SelectItem(Column(field, alias=alias), name))
    else:
        items = [
            SelectItem(promote_aggregates(item.expr, engine), item.alias)
            for item in statement.select_items
        ]
    having = (
        promote_aggregates(statement.having, engine)
        if statement.having is not None
        else None
    )
    has_aggregates = any(
        any(True for __ in collect_aggregate_calls(item.expr)) for item in items
    ) or (having is not None and any(
        True for __ in collect_aggregate_calls(having)
    ))

    names = _unique_names([_item_name(item, i) for i, item in enumerate(items)])

    def bindings() -> Any:
        def descend(depth: int, env: Env) -> Any:
            if depth == len(sources):
                if check(env):
                    yield env
                return
            alias, tuples, __schema = sources[depth]
            for tup in tuples:
                env.bindings[alias.lower()] = tup
                yield from descend(depth + 1, env)
            env.bindings.pop(alias.lower(), None)

        yield from descend(0, _make_env(engine, {}))

    rows: list[dict[str, Any]] = []
    if has_aggregates or statement.group_by:
        slots: dict[int, tuple[AggregateCall, _AggSlot]] = {}
        rewritten = [
            SelectItem(_rewrite_with_slots(item.expr, slots), item.alias)
            for item in items
        ]
        having_rewritten = (
            _rewrite_with_slots(having, slots) if having is not None else None
        )
        calls = [call for call, __ in slots.values()]
        slot_list = [slot for __, slot in slots.values()]
        group_exprs = list(statement.group_by)
        groups: dict[Any, _AggState] = {}
        group_envs: dict[Any, Env] = {}
        for env in bindings():
            key = (
                tuple(expr.eval(env) for expr in group_exprs)
                if group_exprs else None
            )
            state = groups.get(key)
            if state is None:
                state = _AggState(engine, calls)
                groups[key] = state
                # Freeze a representative binding for non-aggregate items.
                group_envs[key] = _make_env(engine, dict(env.bindings))
            state.update(env)
        for key, state in groups.items():
            env = group_envs[key]
            for slot, value in zip(slot_list, state.values()):
                slot.cell[0] = value
            if having_rewritten is not None and not truthy(
                having_rewritten.eval(env)
            ):
                continue
            rows.append(
                dict(zip(names, (item.expr.eval(env) for item in rewritten)))
            )
        if not groups and not group_exprs:
            # Aggregates over an empty input still yield one row of
            # identities/NULLs, per SQL.
            state = _AggState(engine, calls)
            env = _make_env(engine, {})
            for slot, value in zip(slot_list, state.values()):
                slot.cell[0] = value
            try:
                rows.append(
                    dict(zip(names, (item.expr.eval(env) for item in rewritten)))
                )
            except EslRuntimeError:
                pass  # non-aggregate items unbound on empty input: no row
    else:
        for env in bindings():
            rows.append(
                dict(zip(names, (item.expr.eval(env) for item in items)))
            )
    return rows
