"""Recursive-descent parser for ESL-EV.

The grammar covers every query in the paper verbatim (Examples 1-8 plus the
section 3 fragments) and the DDL around them:

* ``CREATE STREAM`` / ``CREATE TABLE`` / ``CREATE AGGREGATE``
* ``INSERT INTO <target> SELECT ...`` and ``INSERT INTO <table> VALUES ...``
* ``SELECT ... FROM ... [WHERE ...] [GROUP BY ...] [HAVING ...]`` with:

  - windowed FROM items: ``TABLE(s OVER (RANGE 1 SECONDS PRECEDING
    CURRENT))`` and ``s AS x OVER [1 MINUTES PRECEDING AND FOLLOWING y]``;
  - temporal predicates ``SEQ(...) OVER [...] MODE ...``,
    ``EXCEPTION_SEQ(...)``, ``CLEVEL_SEQ(...)``;
  - star-sequence arguments (``R1*``) and star aggregates
    (``FIRST(R1*).f``, ``LAST(R1*).f``, ``COUNT(R1*)``);
  - ``previous`` references (``R1.previous.tagtime``);
  - duration literals (``5 SECONDS``);
  - ``EXISTS`` / ``NOT EXISTS`` sub-queries.

Scalar expressions are emitted directly as runtime nodes from
:mod:`repro.dsms.expressions`.
"""

from __future__ import annotations

from typing import Sequence

from ...dsms.errors import EslSyntaxError
from ...dsms.expressions import (
    And,
    Between,
    BinaryOp,
    Case,
    Column,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from ...dsms.windows import duration_seconds
from .ast_nodes import (
    CreateAggregate,
    CreateStream,
    CreateTable,
    DeleteStatement,
    DurationLiteral,
    ExistsPredicate,
    FromItem,
    FromWindowSyntax,
    InsertValues,
    OpWindowSyntax,
    PreviousRef,
    SelectItem,
    SelectStatement,
    SeqArgSyntax,
    SeqPredicate,
    StarAggregate,
    Statement,
    UpdateStatement,
)
from .lexer import tokenize
from .tokens import TIME_UNIT_KEYWORDS, Token, TokenType

#: Names parsed as temporal operators when they appear as WHERE predicates.
TEMPORAL_OPS = ("SEQ", "EXCEPTION_SEQ", "CLEVEL_SEQ")

#: Names parsed as star-aggregate heads when called on a starred alias.
STAR_AGG_NAMES = ("FIRST", "LAST", "COUNT")


class AggregateCall(Expression):
    """A call that the analyzer may resolve to a (user-defined) aggregate.

    ``COUNT(*)`` parses directly to ``AggregateCall('count(*)', None)``.
    Ordinary calls parse as :class:`FunctionCall` and are promoted by the
    analyzer when the name is a registered aggregate.
    """

    __slots__ = ("name", "arg")

    def __init__(self, name: str, arg: Expression | None) -> None:
        self.name = name
        self.arg = arg

    def eval(self, env):  # pragma: no cover - replaced during compilation
        from ...dsms.errors import EslRuntimeError

        raise EslRuntimeError(
            f"aggregate {self.name!r} must be evaluated by the aggregation "
            "pipeline, not as a scalar"
        )

    def references(self):
        if self.arg is not None:
            yield from self.arg.references()

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def __repr__(self) -> str:
        return f"AggregateCall({self.name}, {self.arg!r})"


class Parser:
    """Token-stream parser; one instance per program text."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> EslSyntaxError:
        token = self.current
        found = token.value if token.type is not TokenType.EOF else "<end>"
        return EslSyntaxError(f"{message}, found {found!r}", token.line, token.column)

    def expect(self, type: TokenType, what: str = "") -> Token:
        if self.current.type is not type:
            raise self.error(f"expected {what or type.value}")
        return self.advance()

    def expect_keyword(self, *words: str) -> Token:
        if not self.current.is_keyword(*words):
            raise self.error(f"expected {' or '.join(words)}")
        return self.advance()

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.expect(TokenType.IDENT, what)
        return str(token.value)

    # -- entry point ----------------------------------------------------------

    def parse_program(self) -> list[Statement]:
        """Parse ``;``-separated statements until EOF."""
        statements: list[Statement] = []
        while self.current.type is not TokenType.EOF:
            if self.current.type is TokenType.SEMICOLON:
                self.advance()
                continue
            statements.append(self.parse_statement())
        if not statements:
            raise EslSyntaxError("empty program")
        return statements

    def parse_statement(self) -> Statement:
        if self.current.is_keyword("CREATE"):
            return self._parse_create()
        if self.current.is_keyword("INSERT"):
            return self._parse_insert()
        if self.current.is_keyword("SELECT"):
            return self._parse_select()
        if self.current.is_keyword("DELETE"):
            return self._parse_delete()
        if self.current.is_keyword("UPDATE"):
            return self._parse_update()
        raise self.error(
            "expected CREATE, INSERT, SELECT, DELETE, or UPDATE"
        )

    def _parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        target = self.expect_ident("table name")
        where: Expression | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return DeleteStatement(target, where)

    def _parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        target = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self.expect_ident("column name")
            token = self.current
            if not (token.type is TokenType.OPERATOR and token.value in ("=", ":=")):
                raise self.error("expected '=' in UPDATE assignment")
            self.advance()
            assignments.append((column, self.parse_expression()))
            if self.current.type is TokenType.COMMA:
                self.advance()
                continue
            break
        where: Expression | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return UpdateStatement(target, assignments, where)

    # -- DDL ---------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("STREAM"):
            name = self.expect_ident("stream name")
            return CreateStream(name, self._parse_column_defs())
        if self.accept_keyword("TABLE"):
            name = self.expect_ident("table name")
            return CreateTable(name, self._parse_column_defs())
        if self.accept_keyword("AGGREGATE"):
            return self._parse_create_aggregate()
        raise self.error("expected STREAM, TABLE, or AGGREGATE after CREATE")

    def _parse_column_defs(self) -> list[tuple[str, str | None]]:
        self.expect(TokenType.LPAREN, "'('")
        columns: list[tuple[str, str | None]] = []
        while True:
            name = self.expect_ident("column name")
            type_name: str | None = None
            if self.current.type is TokenType.IDENT:
                type_name = str(self.advance().value)
            columns.append((name, type_name))
            if self.current.type is TokenType.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenType.RPAREN, "')'")
        return columns

    def _parse_create_aggregate(self) -> CreateAggregate:
        name = self.expect_ident("aggregate name")
        self.expect(TokenType.LPAREN, "'('")
        param = self.expect_ident("parameter name")
        self.expect(TokenType.RPAREN, "')'")
        self.expect(TokenType.LPAREN, "'(' starting the aggregate body")
        self.expect_keyword("INITIALIZE")
        self._expect_colon()
        init_block = self._parse_assignments()
        self.expect_keyword("ITERATE")
        self._expect_colon()
        iterate_block = self._parse_assignments()
        self.expect_keyword("TERMINATE")
        self._expect_colon()
        self.accept_keyword("RETURN")
        terminate = self.parse_expression()
        if self.current.type is TokenType.SEMICOLON:
            self.advance()
        self.expect(TokenType.RPAREN, "')' closing the aggregate body")
        return CreateAggregate(name, param, init_block, iterate_block, terminate)

    def _expect_colon(self) -> None:
        # ':' is not a standalone token; the lexer only produces ':=' — so
        # aggregate blocks use the keyword followed by ':'-less assignments
        # when written as `INITIALIZE : x := 1`.  Accept an optional ':'-like
        # operator for forgiving input.
        token = self.current
        if token.type is TokenType.OPERATOR and token.value == ":":
            self.advance()

    def _parse_assignments(self) -> list[tuple[str, Expression]]:
        assignments: list[tuple[str, Expression]] = []
        while True:
            target = self.expect_ident("state variable")
            token = self.current
            if not (token.type is TokenType.OPERATOR and token.value == ":="):
                raise self.error("expected ':=' in aggregate assignment")
            self.advance()
            assignments.append((target, self.parse_expression()))
            if self.current.type is TokenType.COMMA:
                self.advance()
                continue
            if self.current.type is TokenType.SEMICOLON:
                self.advance()
            break
        return assignments

    # -- INSERT -----------------------------------------------------------

    def _parse_insert(self) -> Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        target = self.expect_ident("insert target")
        if self.current.is_keyword("VALUES"):
            self.advance()
            rows: list[Sequence[Expression]] = []
            while True:
                self.expect(TokenType.LPAREN, "'('")
                row: list[Expression] = []
                while True:
                    row.append(self.parse_expression())
                    if self.current.type is TokenType.COMMA:
                        self.advance()
                        continue
                    break
                self.expect(TokenType.RPAREN, "')'")
                rows.append(row)
                if self.current.type is TokenType.COMMA:
                    self.advance()
                    continue
                break
            return InsertValues(target, rows)
        select = self._parse_select()
        select.insert_into = target
        return select

    # -- SELECT ------------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        select_star = False
        items: list[SelectItem] = []
        if self.current.type is TokenType.STAR:
            self.advance()
            select_star = True
        else:
            while True:
                expr = self.parse_expression()
                alias: str | None = None
                if self.accept_keyword("AS"):
                    alias = self.expect_ident("select-item alias")
                elif (
                    self.current.type is TokenType.IDENT
                    and not self.current.is_keyword(
                        "FROM", "WHERE", "GROUP", "HAVING", "MODE", "OVER"
                    )
                ):
                    alias = str(self.advance().value)
                items.append(SelectItem(expr, alias))
                if self.current.type is TokenType.COMMA:
                    self.advance()
                    continue
                break
        self.expect_keyword("FROM")
        from_items = [self._parse_from_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            from_items.append(self._parse_from_item())
        where: Expression | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by: list[Expression] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            while True:
                group_by.append(self.parse_expression())
                if self.current.type is TokenType.COMMA:
                    self.advance()
                    continue
                break
        having: Expression | None = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expression()
        return SelectStatement(
            items,
            from_items,
            where=where,
            group_by=group_by,
            having=having,
            select_star=select_star,
        )

    def _parse_from_item(self) -> FromItem:
        if self.current.is_keyword("TABLE") and self.peek().type is TokenType.LPAREN:
            # Example 1 form: TABLE( stream OVER (RANGE 1 SECONDS PRECEDING CURRENT) )
            self.advance()
            self.expect(TokenType.LPAREN, "'('")
            name = self.expect_ident("stream name")
            window: FromWindowSyntax | None = None
            if self.accept_keyword("OVER"):
                self.expect(TokenType.LPAREN, "'(' opening the window")
                window = self._parse_paren_window()
                self.expect(TokenType.RPAREN, "')' closing the window")
            self.expect(TokenType.RPAREN, "')' closing TABLE(...)")
            alias = self._parse_alias()
            return FromItem(name, alias, window)
        name = self.expect_ident("stream or table name")
        alias = self._parse_alias()
        window = None
        if self.current.is_keyword("OVER"):
            self.advance()
            if self.current.type is TokenType.LBRACKET:
                self.advance()
                window = self._parse_bracket_window()
                self.expect(TokenType.RBRACKET, "']' closing the window")
            else:
                self.expect(TokenType.LPAREN, "'[' or '(' opening the window")
                window = self._parse_paren_window()
                self.expect(TokenType.RPAREN, "')' closing the window")
        return FromItem(name, alias, window)

    def _parse_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_ident("alias")
        if self.current.type is TokenType.IDENT and not self.current.is_keyword(
            "OVER", "WHERE", "GROUP", "HAVING", "MODE",
        ):
            # Bare alias (SQL allows omitting AS), but never swallow clause
            # keywords or the FROM-list comma.
            return str(self.advance().value)
        return None

    def _parse_paren_window(self) -> FromWindowSyntax:
        """``RANGE 1 SECONDS PRECEDING CURRENT`` / ``ROWS 10 PRECEDING``."""
        if self.accept_keyword("RANGE"):
            if self.accept_keyword("UNBOUNDED"):
                self.expect_keyword("PRECEDING")
                self.accept_keyword("CURRENT")
                return FromWindowSyntax("range", None, 0.0, "CURRENT")
            amount = self._parse_number("window size")
            unit = self.expect(TokenType.IDENT, "time unit")
            if unit.upper not in TIME_UNIT_KEYWORDS:
                raise self.error(f"unknown time unit {unit.value!r}")
            seconds = duration_seconds(amount, str(unit.value))
            self.expect_keyword("PRECEDING")
            self.accept_keyword("CURRENT")
            return FromWindowSyntax("range", seconds, 0.0, "CURRENT", str(unit.value))
        if self.accept_keyword("ROWS"):
            if self.accept_keyword("UNBOUNDED"):
                self.expect_keyword("PRECEDING")
                return FromWindowSyntax("rows", None, 0.0, "CURRENT")
            amount = self._parse_number("row count")
            self.expect_keyword("PRECEDING")
            self.accept_keyword("CURRENT")
            return FromWindowSyntax("rows", amount, 0.0, "CURRENT")
        raise self.error("expected RANGE or ROWS in window")

    def _parse_bracket_window(self) -> FromWindowSyntax:
        """``1 MINUTES PRECEDING AND FOLLOWING person`` (Example 8) and the
        simpler ``d PRECEDING x`` / ``d FOLLOWING x`` forms."""
        amount = self._parse_number("window size")
        unit = self.expect(TokenType.IDENT, "time unit")
        if unit.upper not in TIME_UNIT_KEYWORDS:
            raise self.error(f"unknown time unit {unit.value!r}")
        seconds = duration_seconds(amount, str(unit.value))
        if self.accept_keyword("PRECEDING"):
            if self.accept_keyword("AND"):
                self.expect_keyword("FOLLOWING")
                anchor = self.expect_ident("window anchor")
                return FromWindowSyntax("range", seconds, seconds, anchor,
                                        str(unit.value))
            anchor = self.expect_ident("window anchor")
            return FromWindowSyntax("range", seconds, 0.0, anchor, str(unit.value))
        if self.accept_keyword("FOLLOWING"):
            anchor = self.expect_ident("window anchor")
            return FromWindowSyntax("range", 0.0, seconds, anchor, str(unit.value))
        raise self.error("expected PRECEDING or FOLLOWING in window")

    def _parse_number(self, what: str) -> float:
        token = self.expect(TokenType.NUMBER, what)
        return float(token.value)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        terms = [left]
        while self.current.is_keyword("OR"):
            self.advance()
            terms.append(self._parse_and())
        if len(terms) == 1:
            return left
        return Or(*terms)

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        terms = [left]
        while self.current.is_keyword("AND"):
            self.advance()
            terms.append(self._parse_not())
        if len(terms) == 1:
            return left
        return And(*terms)

    def _parse_not(self) -> Expression:
        if self.current.is_keyword("NOT"):
            # NOT EXISTS is handled in _parse_predicate via lookahead so the
            # negation lands on the ExistsPredicate node itself.
            if self.peek().is_keyword("EXISTS"):
                self.advance()
                self.advance()
                return self._parse_exists(negate=True)
            self.advance()
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        if self.current.is_keyword("EXISTS"):
            self.advance()
            return self._parse_exists(negate=False)
        if self.current.is_keyword(*TEMPORAL_OPS) and (
            self.peek().type is TokenType.LPAREN
        ):
            return self._parse_temporal_operator()
        left = self._parse_additive()
        # IS [NOT] NULL
        if self.current.is_keyword("IS"):
            self.advance()
            negate = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return IsNull(left, negate)
        # [NOT] BETWEEN / IN / LIKE
        negate = False
        if self.current.is_keyword("NOT") and self.peek().is_keyword(
            "BETWEEN", "IN", "LIKE"
        ):
            negate = True
            self.advance()
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negate)
        if self.accept_keyword("IN"):
            self.expect(TokenType.LPAREN, "'('")
            options: list[Expression] = []
            while True:
                options.append(self.parse_expression())
                if self.current.type is TokenType.COMMA:
                    self.advance()
                    continue
                break
            self.expect(TokenType.RPAREN, "')'")
            return InList(left, options, negate)
        if self.accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return Like(left, pattern, negate)
        # comparison
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = str(self.advance().value)
            right = self._parse_additive()
            return BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                op = str(self.advance().value)
                right = self._parse_multiplicative()
                left = BinaryOp(op, left, right)
                continue
            return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self.current
            if token.type is TokenType.STAR:
                self.advance()
                right = self._parse_unary()
                left = BinaryOp("*", left, right)
                continue
            if token.type is TokenType.OPERATOR and token.value in ("/", "%"):
                op = str(self.advance().value)
                right = self._parse_unary()
                left = BinaryOp(op, left, right)
                continue
            return left

    def _parse_unary(self) -> Expression:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value == "-":
            self.advance()
            return Negate(self._parse_unary())
        if token.type is TokenType.OPERATOR and token.value == "+":
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            # Duration literal: NUMBER followed by a time unit keyword.
            unit = self.current
            if unit.type is TokenType.IDENT and unit.upper in TIME_UNIT_KEYWORDS:
                self.advance()
                seconds = duration_seconds(float(token.value), str(unit.value))
                return DurationLiteral(seconds, f"{token.value} {unit.value}")
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.LPAREN:
            self.advance()
            inner = self.parse_expression()
            self.expect(TokenType.RPAREN, "')'")
            return inner
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword(*TEMPORAL_OPS) and self.peek().type is TokenType.LPAREN:
            return self._parse_temporal_operator()
        if token.type is TokenType.IDENT:
            return self._parse_name_or_call()
        raise self.error("expected an expression")

    def _parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        branches: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            branches.append((condition, self.parse_expression()))
        default: Expression | None = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        return Case(branches, default)

    def _parse_exists(self, negate: bool) -> ExistsPredicate:
        self.expect(TokenType.LPAREN, "'(' opening the subquery")
        query = self._parse_select()
        self.expect(TokenType.RPAREN, "')' closing the subquery")
        return ExistsPredicate(query, negate)

    # -- temporal operators ----------------------------------------------------

    def _parse_temporal_operator(self) -> SeqPredicate:
        op_token = self.advance()
        op_name = op_token.upper
        self.expect(TokenType.LPAREN, "'('")
        args: list[SeqArgSyntax] = []
        while True:
            name = self.expect_ident("stream name")
            starred = False
            if self.current.type is TokenType.STAR:
                self.advance()
                starred = True
            args.append(SeqArgSyntax(name, starred))
            if self.current.type is TokenType.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenType.RPAREN, "')'")
        window: OpWindowSyntax | None = None
        if self.current.is_keyword("OVER"):
            self.advance()
            self.expect(TokenType.LBRACKET, "'[' opening the operator window")
            amount = self._parse_number("window size")
            unit = self.expect(TokenType.IDENT, "time unit")
            if unit.upper not in TIME_UNIT_KEYWORDS:
                raise self.error(f"unknown time unit {unit.value!r}")
            seconds = duration_seconds(amount, str(unit.value))
            direction_token = self.current
            if self.accept_keyword("PRECEDING"):
                direction = "preceding"
            elif self.accept_keyword("FOLLOWING"):
                direction = "following"
            else:
                raise self.error("expected PRECEDING or FOLLOWING")
            del direction_token
            anchor = self.expect_ident("window anchor")
            self.expect(TokenType.RBRACKET, "']' closing the operator window")
            window = OpWindowSyntax(seconds, direction, anchor)
        mode: str | None = None
        if self.current.is_keyword("MODE"):
            self.advance()
            mode_token = self.expect(
                TokenType.IDENT, "pairing mode after MODE"
            )
            mode = mode_token.upper
        # OVER may also follow MODE (the paper floats the clauses freely).
        if window is None and self.current.is_keyword("OVER"):
            self.advance()
            self.expect(TokenType.LBRACKET, "'['")
            amount = self._parse_number("window size")
            unit = self.expect(TokenType.IDENT, "time unit")
            seconds = duration_seconds(amount, str(unit.value))
            if self.accept_keyword("PRECEDING"):
                direction = "preceding"
            else:
                self.expect_keyword("FOLLOWING")
                direction = "following"
            anchor = self.expect_ident("window anchor")
            self.expect(TokenType.RBRACKET, "']'")
            window = OpWindowSyntax(seconds, direction, anchor)
        return SeqPredicate(op_name, args, window, mode)

    # -- names, calls, star aggregates -------------------------------------------

    def _parse_name_or_call(self) -> Expression:
        name_token = self.advance()
        name = str(name_token.value)
        # Function / aggregate call
        if self.current.type is TokenType.LPAREN:
            return self._parse_call(name)
        # Dotted reference: alias.field / alias.previous.field
        if self.current.type is TokenType.DOT:
            self.advance()
            second = self.expect_ident("field name")
            if second.lower() == "previous" and self.current.type is TokenType.DOT:
                self.advance()
                field = self.expect_ident("field name after 'previous'")
                return PreviousRef(name, field)
            return Column(second, alias=name)
        return Column(name)

    def _parse_call(self, name: str) -> Expression:
        self.expect(TokenType.LPAREN, "'('")
        upper = name.upper()
        # COUNT(*)
        if (
            upper == "COUNT"
            and self.current.type is TokenType.STAR
            and self.peek().type is TokenType.RPAREN
        ):
            self.advance()
            self.advance()
            return AggregateCall("count(*)", None)
        # Star aggregates: FIRST(R1*), LAST(R1*).field, COUNT(R1*)
        if (
            upper in STAR_AGG_NAMES
            and self.current.type is TokenType.IDENT
            and self.peek().type is TokenType.STAR
            and self.peek(2).type is TokenType.RPAREN
        ):
            alias = self.expect_ident()
            self.advance()  # '*'
            self.expect(TokenType.RPAREN, "')'")
            field: str | None = None
            if self.current.type is TokenType.DOT:
                self.advance()
                field = self.expect_ident("field after star aggregate")
            return StarAggregate(upper, alias, field)
        # Ordinary call (function or aggregate; the analyzer promotes
        # aggregates).
        args: list[Expression] = []
        if self.current.type is not TokenType.RPAREN:
            while True:
                args.append(self.parse_expression())
                if self.current.type is TokenType.COMMA:
                    self.advance()
                    continue
                break
        self.expect(TokenType.RPAREN, "')'")
        return FunctionCall(name, args)


def parse_program(text: str) -> list[Statement]:
    """Parse *text* into a list of statements."""
    return Parser(text).parse_program()


def parse_expression(text: str) -> Expression:
    """Parse a standalone scalar expression (used by tests and tools)."""
    parser = Parser(text)
    expr = parser.parse_expression()
    if parser.current.type is not TokenType.EOF:
        raise parser.error("trailing input after expression")
    return expr
