"""AST node types produced by the ESL-EV parser.

Ordinary scalar expressions reuse the runtime classes from
:mod:`repro.dsms.expressions` directly — the parser emits evaluable nodes.
Constructs that need compilation (temporal operators, star aggregates,
sub-queries, ``previous`` references) get dedicated syntax nodes here; the
analyzer and compiler lower them onto the operator runtimes.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from ...dsms.errors import EslRuntimeError, EslSemanticError
from ...dsms.expressions import Env, Expression
from ...dsms.tuples import Tuple


# ---------------------------------------------------------------------------
# Expression-level syntax nodes
# ---------------------------------------------------------------------------


class StarAggregate(Expression):
    """``FIRST(R1*).tagtime`` / ``LAST(R1*).tagtime`` / ``COUNT(R1*)``.

    Evaluates against an Env where the starred alias is bound to the run
    (a list of tuples) — or to a single tuple, in which case the run is that
    one tuple.
    """

    __slots__ = ("func", "alias", "field")

    def __init__(self, func: str, alias: str, field: str | None = None) -> None:
        func = func.lower()
        if func not in ("first", "last", "count"):
            raise EslSemanticError(f"unknown star aggregate {func!r}")
        if func == "count" and field is not None:
            raise EslSemanticError("COUNT(R*) does not take a field")
        self.func = func
        self.alias = alias
        self.field = field

    def eval(self, env: Env) -> Any:
        bound = env.lookup_alias(self.alias)
        run: list[Tuple] = bound if isinstance(bound, list) else [bound]
        if not run:
            return 0 if self.func == "count" else None
        if self.func == "count":
            return len(run)
        tup = run[0] if self.func == "first" else run[-1]
        if self.field is None:
            return tup
        if self.field == "__ts__":
            return tup.ts
        return tup[self.field]

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield (self.alias, self.field or "*")

    def __repr__(self) -> str:
        suffix = f".{self.field}" if self.field else ""
        return f"StarAggregate({self.func.upper()}({self.alias}*){suffix})"


class PreviousRef(Expression):
    """``R1.previous.tagtime`` — the tuple preceding the current one in a
    star run (paper section 3.1.2, property 2).

    The compiler binds the pseudo-alias ``<alias>.previous`` when it
    evaluates hoisted gap constraints.
    """

    __slots__ = ("alias", "field")

    def __init__(self, alias: str, field: str) -> None:
        self.alias = alias
        self.field = field

    def eval(self, env: Env) -> Any:
        tup = env.lookup_alias(f"{self.alias}.previous")
        if self.field == "__ts__":
            return tup.ts
        return tup[self.field]

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield (f"{self.alias}.previous", self.field)

    def __repr__(self) -> str:
        return f"PreviousRef({self.alias}.previous.{self.field})"


class DurationLiteral(Expression):
    """``5 SECONDS`` inside an expression — evaluates to seconds."""

    __slots__ = ("seconds", "text")

    def __init__(self, seconds: float, text: str) -> None:
        self.seconds = seconds
        self.text = text

    def eval(self, env: Env) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"DurationLiteral({self.text} = {self.seconds:g}s)"


class SeqArgSyntax:
    """One argument of a temporal operator: stream/alias name + star flag."""

    __slots__ = ("name", "starred")

    def __init__(self, name: str, starred: bool) -> None:
        self.name = name
        self.starred = starred

    def __repr__(self) -> str:
        return f"SeqArgSyntax({self.name}{'*' if self.starred else ''})"


class OpWindowSyntax:
    """``OVER [30 MINUTES PRECEDING C4]`` on a temporal operator."""

    __slots__ = ("seconds", "direction", "anchor")

    def __init__(self, seconds: float, direction: str, anchor: str) -> None:
        self.seconds = seconds
        self.direction = direction  # 'preceding' | 'following'
        self.anchor = anchor        # argument alias

    def __repr__(self) -> str:
        return (
            f"OpWindowSyntax({self.seconds:g}s {self.direction.upper()} "
            f"{self.anchor})"
        )


class SeqPredicate(Expression):
    """A temporal operator appearing in a WHERE clause.

    ``op_name`` is SEQ, EXCEPTION_SEQ, or CLEVEL_SEQ.  These nodes are never
    evaluated directly — the compiler extracts them and wires the operator
    runtimes; reaching :meth:`eval` indicates a compiler bug or an
    unsupported position (e.g. inside OR).
    """

    __slots__ = ("op_name", "args", "window", "mode")

    def __init__(
        self,
        op_name: str,
        args: Sequence[SeqArgSyntax],
        window: OpWindowSyntax | None = None,
        mode: str | None = None,
    ) -> None:
        self.op_name = op_name.upper()
        self.args = tuple(args)
        self.window = window
        self.mode = mode

    def eval(self, env: Env) -> Any:
        raise EslRuntimeError(
            f"{self.op_name} must appear as a top-level AND-term of WHERE; "
            "it cannot be evaluated as a scalar expression"
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a.name}{'*' if a.starred else ''}" for a in self.args
        )
        extra = ""
        if self.window:
            extra += f" OVER [{self.window!r}]"
        if self.mode:
            extra += f" MODE {self.mode}"
        return f"SeqPredicate({self.op_name}({inner}){extra})"


class ExistsPredicate(Expression):
    """``EXISTS (subquery)`` / ``NOT EXISTS (subquery)`` syntax node.

    The compiler replaces it with a runtime
    :class:`~repro.dsms.expressions.SubqueryPredicate` or a dedicated
    operator (symmetric windows).
    """

    __slots__ = ("query", "negate")

    def __init__(self, query: "SelectStatement", negate: bool) -> None:
        self.query = query
        self.negate = negate

    def eval(self, env: Env) -> Any:
        raise EslRuntimeError(
            "EXISTS subquery was not compiled; this is a compiler bug"
        )

    def __repr__(self) -> str:
        word = "NOT EXISTS" if self.negate else "EXISTS"
        return f"ExistsPredicate({word} ...)"


# ---------------------------------------------------------------------------
# FROM-clause nodes
# ---------------------------------------------------------------------------


class FromWindowSyntax:
    """A window attached to a FROM item.

    Two surface forms from the paper:

    * ``TABLE(readings OVER (RANGE 1 SECONDS PRECEDING CURRENT))`` —
      Example 1 (``anchor='CURRENT'``, rows or range).
    * ``tag_readings AS item OVER [1 MINUTES PRECEDING AND FOLLOWING
      person]`` — Example 8 (symmetric, anchored on an outer alias).
    """

    __slots__ = ("kind", "preceding", "following", "anchor", "unit_text")

    def __init__(
        self,
        kind: str,
        preceding: float | None,
        following: float,
        anchor: str,
        unit_text: str = "",
    ) -> None:
        self.kind = kind               # 'range' | 'rows'
        self.preceding = preceding     # seconds (range) / rows (rows); None = unbounded
        self.following = following     # seconds (0 unless symmetric)
        self.anchor = anchor           # 'CURRENT' or an alias name
        self.unit_text = unit_text

    @property
    def symmetric(self) -> bool:
        return self.following > 0

    def __repr__(self) -> str:
        parts = [self.kind.upper()]
        if self.preceding is None:
            parts.append("UNBOUNDED")
        else:
            parts.append(f"{self.preceding:g}")
        parts.append("PRECEDING")
        if self.following:
            parts.append(f"AND {self.following:g} FOLLOWING")
        parts.append(self.anchor)
        return f"FromWindowSyntax({' '.join(parts)})"


class FromItem:
    """One entry of a FROM list."""

    __slots__ = ("name", "alias", "window")

    def __init__(
        self,
        name: str,
        alias: str | None = None,
        window: FromWindowSyntax | None = None,
    ) -> None:
        self.name = name
        self.alias = alias or name
        self.window = window

    def __repr__(self) -> str:
        out = self.name
        if self.alias != self.name:
            out += f" AS {self.alias}"
        if self.window:
            out += f" {self.window!r}"
        return f"FromItem({out})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for all statements."""

    __slots__ = ()


class CreateStream(Statement):
    __slots__ = ("name", "columns")

    def __init__(self, name: str, columns: Sequence[tuple[str, str | None]]) -> None:
        self.name = name
        self.columns = tuple(columns)

    def __repr__(self) -> str:
        return f"CreateStream({self.name}, {len(self.columns)} cols)"


class CreateTable(Statement):
    __slots__ = ("name", "columns")

    def __init__(self, name: str, columns: Sequence[tuple[str, str | None]]) -> None:
        self.name = name
        self.columns = tuple(columns)

    def __repr__(self) -> str:
        return f"CreateTable({self.name}, {len(self.columns)} cols)"


class CreateAggregate(Statement):
    """ESL-style textual UDA (section 2.1: "ESL also allows users to express
    UDAs in native SQL")::

        CREATE AGGREGATE vrange(value) (
            INITIALIZE: lo := value, hi := value;
            ITERATE: lo := least(lo, value), hi := greatest(hi, value);
            TERMINATE: RETURN hi - lo;
        )
    """

    __slots__ = ("name", "param", "init_block", "iterate_block", "terminate_expr")

    def __init__(
        self,
        name: str,
        param: str,
        init_block: Sequence[tuple[str, Expression]],
        iterate_block: Sequence[tuple[str, Expression]],
        terminate_expr: Expression,
    ) -> None:
        self.name = name
        self.param = param
        self.init_block = tuple(init_block)
        self.iterate_block = tuple(iterate_block)
        self.terminate_expr = terminate_expr

    def __repr__(self) -> str:
        return f"CreateAggregate({self.name})"


class InsertValues(Statement):
    """``INSERT INTO table VALUES (...), (...)`` — setup convenience."""

    __slots__ = ("target", "rows")

    def __init__(self, target: str, rows: Sequence[Sequence[Expression]]) -> None:
        self.target = target
        self.rows = tuple(tuple(row) for row in rows)

    def __repr__(self) -> str:
        return f"InsertValues({self.target}, {len(self.rows)} rows)"


class DeleteStatement(Statement):
    """``DELETE FROM table [WHERE ...]`` — one-shot table maintenance."""

    __slots__ = ("target", "where")

    def __init__(self, target: str, where: Expression | None) -> None:
        self.target = target
        self.where = where

    def __repr__(self) -> str:
        return f"DeleteStatement({self.target})"


class UpdateStatement(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    __slots__ = ("target", "assignments", "where")

    def __init__(
        self,
        target: str,
        assignments: Sequence[tuple[str, Expression]],
        where: Expression | None,
    ) -> None:
        self.target = target
        self.assignments = tuple(assignments)
        self.where = where

    def __repr__(self) -> str:
        return f"UpdateStatement({self.target}, {len(self.assignments)} cols)"


class SelectItem:
    __slots__ = ("expr", "alias")

    def __init__(self, expr: Expression, alias: str | None = None) -> None:
        self.expr = expr
        self.alias = alias

    def __repr__(self) -> str:
        return f"SelectItem({self.expr!r} AS {self.alias})"


class SelectStatement(Statement):
    """A (possibly INSERT-INTO-prefixed) continuous SELECT query."""

    __slots__ = (
        "select_items",
        "select_star",
        "from_items",
        "where",
        "group_by",
        "having",
        "insert_into",
    )

    def __init__(
        self,
        select_items: Sequence[SelectItem],
        from_items: Sequence[FromItem],
        where: Expression | None = None,
        group_by: Sequence[Expression] = (),
        having: Expression | None = None,
        insert_into: str | None = None,
        select_star: bool = False,
    ) -> None:
        self.select_items = tuple(select_items)
        self.select_star = select_star
        self.from_items = tuple(from_items)
        self.where = where
        self.group_by = tuple(group_by)
        self.having = having
        self.insert_into = insert_into

    def aliases(self) -> list[str]:
        return [item.alias for item in self.from_items]

    def __repr__(self) -> str:
        target = f" INTO {self.insert_into}" if self.insert_into else ""
        return (
            f"SelectStatement({len(self.select_items)} items, "
            f"FROM {', '.join(self.aliases())}{target})"
        )


def iter_and_terms(expr: Expression | None) -> Iterator[Expression]:
    """Flatten a WHERE clause into its top-level AND conjuncts."""
    from ...dsms.expressions import And

    if expr is None:
        return
    if isinstance(expr, And):
        for operand in expr.operands:
            yield from iter_and_terms(operand)
    else:
        yield expr


def walk_expressions(roots: Iterable[Expression]) -> Iterator[Expression]:
    """Walk several expression trees depth-first."""
    for root in roots:
        yield from root.walk()
