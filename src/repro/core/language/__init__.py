"""The ESL-EV language front end: lexer, parser, analyzer, compiler."""

from .analyzer import Analysis, ClevelThreshold, analyze
from .ast_nodes import (
    CreateAggregate,
    CreateStream,
    CreateTable,
    DurationLiteral,
    ExistsPredicate,
    FromItem,
    FromWindowSyntax,
    InsertValues,
    OpWindowSyntax,
    PreviousRef,
    SelectItem,
    SelectStatement,
    SeqArgSyntax,
    SeqPredicate,
    StarAggregate,
    Statement,
)
from .compiler import compile_program, compile_statement
from .lexer import tokenize
from .parser import AggregateCall, Parser, parse_expression, parse_program

__all__ = [
    "AggregateCall",
    "Analysis",
    "ClevelThreshold",
    "CreateAggregate",
    "CreateStream",
    "CreateTable",
    "DurationLiteral",
    "ExistsPredicate",
    "FromItem",
    "FromWindowSyntax",
    "InsertValues",
    "OpWindowSyntax",
    "Parser",
    "PreviousRef",
    "SelectItem",
    "SelectStatement",
    "SeqArgSyntax",
    "SeqPredicate",
    "StarAggregate",
    "Statement",
    "analyze",
    "compile_program",
    "compile_statement",
    "parse_expression",
    "parse_program",
    "tokenize",
]
