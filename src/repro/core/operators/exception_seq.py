"""EXCEPTION_SEQ and CLEVEL_SEQ (paper section 3.1.3).

These operators detect *violations* of a prescribed sequence.  The paper
defines them through **Sequence Completion Levels**: a partial sequence
(E1..Ek) that can no longer extend has completion level k, and an exception
event occurs at level k+1.  Three scenarios end a partial sequence early:

1. **Wrong extension** — an incoming tuple breaks the expected order
   (e.g. (A, B) then another B under RECENT, or any interloper under
   CONSECUTIVE).
2. **Wrong start** — an incoming tuple cannot start a new sequence (level-0
   failure; e.g. after (A, B, C) completes, a lone C arrives).
3. **Window expiration** — a FOLLOWING window anchored at some stage runs
   out before the sequence completes.  This requires *Active Expiration*:
   the violation must fire from a timer, with no new tuple arriving.  The
   operator arms a timer on the engine's virtual clock when the anchor stage
   binds.

:class:`ExceptionSeqOperator` reports every terminated sequence as a
:class:`SequenceOutcome` carrying its completion level; completions have
``level == n``.  ``EXCEPTION_SEQ(...)`` corresponds to outcomes with
``level < n``; ``CLEVEL_SEQ(...) < k`` predicates read the level directly.

**Star stages.**  The paper notes "EXCEPTION_SEQ can also allow repeating
star sequences" but omits the details; this implementation supports
non-trailing starred arguments with the following (documented) semantics:

* a starred stage is *entered* by its first tuple and *extends* while
  tuples of its stream keep arriving within the stage's gap constraint;
* the Sequence Completion Level counts stages with at least one binding —
  exactly the paper's level when every stage is plain;
* a gap-violating repeat of the open star stage is a WRONG_TUPLE exception
  (the prescribed repetition rhythm broke);
* a trailing star is rejected: with no terminator, a "completed" trailing
  run is undecidable, which is why the paper's examples never use one.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterator, Sequence

from ...dsms.clock import Timer
from ...dsms.engine import Engine
from ...dsms.errors import EslSemanticError
from ...dsms.tuples import Tuple
from .base import Guard, OperatorWindow, PairingMode, SeqArg, validate_args


class ExceptionReason(enum.Enum):
    """Why a sequence terminated without completing."""

    WRONG_TUPLE = "wrong_tuple"      # scenario 1: bad extension
    WRONG_START = "wrong_start"      # scenario 2: level-0 failure
    WINDOW_EXPIRED = "window_expired"  # scenario 3: active expiration
    COMPLETED = "completed"          # not an exception: level == n


class SequenceOutcome:
    """One terminated (or completed) sequence instance.

    Attributes:
        level: the Sequence Completion Level reached (n for completions).
        reason: the :class:`ExceptionReason`.
        runs: per-stage bound tuples, one (possibly multi-tuple) run per
            completed stage, in stage order.
        partial: the bound tuples flattened in stage order (for star-free
            patterns this is one tuple per completed stage).
        offending: the tuple that caused a WRONG_TUPLE / WRONG_START
            exception (None for expirations and completions).
        expected: alias of the stage that failed to bind (None on completion).
        ts: virtual time at which the outcome was determined.
    """

    __slots__ = ("args", "level", "reason", "runs", "offending", "expected",
                 "ts")

    def __init__(
        self,
        args: Sequence[SeqArg],
        level: int,
        reason: ExceptionReason,
        runs: Sequence[Sequence[Tuple]],
        offending: Tuple | None,
        ts: float,
    ) -> None:
        self.args = tuple(args)
        self.level = level
        self.reason = reason
        self.runs = tuple(tuple(run) for run in runs)
        self.offending = offending
        self.expected = args[level].alias if level < len(args) else None
        self.ts = ts

    @property
    def partial(self) -> tuple[Tuple, ...]:
        return tuple(tup for run in self.runs for tup in run)

    @property
    def is_exception(self) -> bool:
        return self.level < len(self.args)

    def tuple_for(self, alias: str) -> Tuple | None:
        """The (last) tuple bound to *alias*, or None if the stage never
        bound.

        The paper's ``SELECT A1.tagid, A2.tagid, A3.tagid`` over an
        exception at level 1 yields NULLs for A2/A3 — this is where those
        NULLs come from.
        """
        for arg, run in zip(self.args, self.runs):
            if arg.alias.lower() == alias.lower():
                return run[-1] if run else None
        return None

    def run_for(self, alias: str) -> tuple[Tuple, ...]:
        """All tuples bound to *alias* (empty when the stage never bound)."""
        for arg, run in zip(self.args, self.runs):
            if arg.alias.lower() == alias.lower():
                return run
        return ()

    def __repr__(self) -> str:
        stamp = ", ".join(f"{t.ts:g}" for t in self.partial)
        return (
            f"SequenceOutcome(level={self.level}/{len(self.args)}, "
            f"{self.reason.value}, partial=[{stamp}])"
        )


OutcomeCallback = Callable[[SequenceOutcome], None]


class _SequenceState:
    """Per-partition automaton state: one run list per entered stage."""

    __slots__ = ("key", "runs", "timer", "generation")

    def __init__(self, key: Any = None) -> None:
        self.key = key
        self.runs: list[list[Tuple]] = []
        self.timer: Timer | None = None
        self.generation = 0  # bumps on reset, so stale timers no-op

    @property
    def level(self) -> int:
        return len(self.runs)

    def reset(self) -> None:
        self.runs = []
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        self.generation += 1


class ExceptionSeqOperator:
    """Runtime for EXCEPTION_SEQ / CLEVEL_SEQ.

    Args:
        engine: owning engine (its clock provides Active Expiration).
        args: the argument list; starred arguments are allowed anywhere but
            last (see module docstring).
        window: optional operator window; ``FOLLOWING`` windows arm timers
            at the anchor stage, ``PRECEDING`` windows are checked at
            completion (a completion outside the window counts as an
            expiration exception).
        mode: RECENT or CONSECUTIVE — how a wrong extension is repaired
            (RECENT: a repeat of a bound stage replaces it; CONSECUTIVE:
            full reset).  Both appear in the paper's scenarios.
        guard: qualifying-condition predicate over partial bindings (star
            stages bind as lists).
        partition_by: key function giving each entity (staff member, tag)
            its own automaton.
        on_outcome: callback for every :class:`SequenceOutcome`.
        report_wrong_start: emit level-0 outcomes for tuples that cannot
            start a sequence (paper scenario 2).  Defaults to True.
    """

    def __init__(
        self,
        engine: Engine,
        args: Sequence[SeqArg],
        window: OperatorWindow | None = None,
        mode: PairingMode = PairingMode.CONSECUTIVE,
        guard: Guard | None = None,
        partition_by: Callable[[Tuple], Any] | None = None,
        on_outcome: OutcomeCallback | None = None,
        report_wrong_start: bool = True,
    ) -> None:
        validate_args(args)
        if args[-1].starred:
            raise EslSemanticError(
                "EXCEPTION_SEQ does not support a trailing star: without a "
                "terminator the final run's completion is undecidable"
            )
        if mode not in (PairingMode.RECENT, PairingMode.CONSECUTIVE):
            raise EslSemanticError(
                "EXCEPTION_SEQ supports RECENT or CONSECUTIVE modes"
            )
        self.engine = engine
        self.args = tuple(args)
        self.window = window
        self.mode = mode
        self.guard = guard
        self.partition_by = partition_by
        self.report_wrong_start = report_wrong_start
        self.outcomes: list[SequenceOutcome] = []
        self._on_outcome = on_outcome
        self._states: dict[Any, _SequenceState] = {}
        self._unsubscribes: list[Callable[[], None]] = []
        self.exceptions_emitted = 0
        self.completions_emitted = 0

        self._stage_streams = [arg.stream.lower() for arg in self.args]
        for stream_name in set(self._stage_streams):
            stream = engine.streams.get(stream_name)
            self._unsubscribes.append(stream.subscribe(self._on_tuple))
        register = getattr(engine, "register_checkpointable", None)
        if register is not None:
            from ...dsms.checkpoint import UnsupportedState

            register(UnsupportedState("EXCEPTION_SEQ"))

    # -- public ------------------------------------------------------------

    def stop(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for state in self._states.values():
            if state.timer is not None:
                state.timer.cancel()

    @property
    def state_size(self) -> int:
        return sum(
            sum(len(run) for run in state.runs)
            for state in self._states.values()
        )

    def drain_outcomes(self) -> list[SequenceOutcome]:
        out = self.outcomes
        self.outcomes = []
        return out

    def exceptions(self) -> list[SequenceOutcome]:
        """Accumulated exception outcomes (level < n)."""
        return [outcome for outcome in self.outcomes if outcome.is_exception]

    # -- automaton ------------------------------------------------------------

    def _state_for(self, tup: Tuple) -> _SequenceState:
        key = self.partition_by(tup) if self.partition_by else None
        state = self._states.get(key)
        if state is None:
            state = _SequenceState(key)
            self._states[key] = state
        return state

    def _release_if_idle(self, state: _SequenceState) -> None:
        """Drop an empty automaton from the state table.

        An idle state (no bound runs, no armed timer) is indistinguishable
        from a fresh one, so releasing it changes no outcome — it just keeps
        the table from accumulating one entry per key ever seen (one-shot
        tags would otherwise leak).  The identity check guards against a
        stale timer callback releasing a *successor* state at the same key.
        """
        if (
            not state.runs
            and state.timer is None
            and self._states.get(state.key) is state
        ):
            del self._states[state.key]

    def _bindings_of(
        self, runs: Sequence[Sequence[Tuple]]
    ) -> dict[str, Any]:
        bindings: dict[str, Any] = {}
        for arg, run in zip(self.args, runs):
            bindings[arg.alias] = list(run) if arg.starred else run[-1]
        return bindings

    def _guard_ok(
        self, runs: Sequence[Sequence[Tuple]], tup: Tuple, stage: int
    ) -> bool:
        if self.guard is None:
            return True
        bindings = self._bindings_of(runs[:stage])
        arg = self.args[stage]
        if arg.starred:
            existing = list(runs[stage]) if stage < len(runs) else []
            bindings[arg.alias] = existing + [tup]
        else:
            bindings[arg.alias] = tup
        return bool(self.guard(bindings))

    def _gap_ok(self, state: _SequenceState, tup: Tuple, stage: int) -> bool:
        arg = self.args[stage]
        if not arg.starred:
            return True
        last = state.runs[stage][-1]
        if arg.gap_check is not None:
            return bool(arg.gap_check(last, tup))
        if arg.max_gap is not None:
            return tup.ts - last.ts <= arg.max_gap
        return True

    def _on_tuple(self, tup: Tuple) -> None:
        state = self._state_for(tup)
        self._step(state, tup)
        self._release_if_idle(state)

    def _step(self, state: _SequenceState, tup: Tuple) -> None:
        stream = tup.stream.lower()
        level = state.level
        # 1. Extend an open star stage.
        if (
            level > 0
            and self.args[level - 1].starred
            and stream == self._stage_streams[level - 1]
        ):
            if self._gap_ok(state, tup, level - 1) and self._guard_ok(
                state.runs, tup, level - 1
            ):
                state.runs[level - 1].append(tup)
                return
            # A broken repetition rhythm is a wrong extension.
            self._fail(state, ExceptionReason.WRONG_TUPLE, tup, tup.ts)
            self._recover(state, tup)
            return
        # 2. Enter the next stage.
        if level < len(self.args) and stream == self._stage_streams[level]:
            if self._guard_ok(state.runs, tup, level):
                self._bind(state, tup)
                return
        # 3. The tuple does not fit: classify the failure.
        if state.runs:
            self._fail(state, ExceptionReason.WRONG_TUPLE, tup, tup.ts)
            self._recover(state, tup)
        else:
            self._try_start(state, tup, report=self.report_wrong_start)

    def _bind(self, state: _SequenceState, tup: Tuple) -> None:
        state.runs.append([tup])
        stage = state.level - 1
        if stage == 0 or (
            self.window is not None
            and self.window.direction == "following"
            and self.window.anchor == stage
        ):
            self._arm_timer(state, tup)
        if state.level == len(self.args):
            self._finish(state)

    def _arm_timer(self, state: _SequenceState, anchor: Tuple) -> None:
        if self.window is None or self.window.direction != "following":
            return
        if self.window.anchor != state.level - 1:
            return
        if state.timer is not None:
            state.timer.cancel()
        deadline = anchor.ts + self.window.duration
        generation = state.generation

        def on_expire(fired_at: float) -> None:
            if state.generation != generation or not state.runs:
                return
            if state.level >= len(self.args):
                return
            self._fail(state, ExceptionReason.WINDOW_EXPIRED, None, fired_at)
            state.reset()
            self._release_if_idle(state)

        state.timer = self.engine.clock.schedule(deadline, on_expire)

    def _window_ok(self, runs: Sequence[Sequence[Tuple]]) -> bool:
        if self.window is None:
            return True
        anchor_run = runs[self.window.anchor]
        anchor = (
            anchor_run[-1]
            if self.window.direction == "preceding"
            else anchor_run[0]
        )
        flat = [tup for run in runs for tup in run]
        return self.window.admits(flat, anchor)

    def _finish(self, state: _SequenceState) -> None:
        runs = [list(run) for run in state.runs]
        done_ts = runs[-1][-1].ts
        if self._window_ok(runs):
            outcome = SequenceOutcome(
                self.args, len(self.args), ExceptionReason.COMPLETED, runs,
                None, done_ts,
            )
            self.completions_emitted += 1
            self._record(outcome)
        else:
            # A PRECEDING window violated at completion time: the sequence
            # took too long — same meaning as an expiration.  The level is
            # n-1: the final stage could not legally bind.
            outcome = SequenceOutcome(
                self.args, len(self.args) - 1, ExceptionReason.WINDOW_EXPIRED,
                runs[:-1], None, done_ts,
            )
            self.exceptions_emitted += 1
            self._record(outcome)
        state.reset()

    def _fail(
        self,
        state: _SequenceState,
        reason: ExceptionReason,
        offending: Tuple | None,
        ts: float,
    ) -> None:
        outcome = SequenceOutcome(
            self.args, state.level, reason,
            [list(run) for run in state.runs], offending, ts,
        )
        self.exceptions_emitted += 1
        self._record(outcome)

    def _record(self, outcome: SequenceOutcome) -> None:
        self.outcomes.append(outcome)
        if self._on_outcome is not None:
            self._on_outcome(outcome)

    def _recover(self, state: _SequenceState, tup: Tuple) -> None:
        """Post-exception repair, mode-specific."""
        stream = tup.stream.lower()
        if self.mode is PairingMode.RECENT:
            # A repeat of an already-bound stage replaces that stage's run
            # and truncates the partial there (paper: "the second B will
            # replace the first one to match with future C tuples").
            for stage in range(state.level):
                if self._stage_streams[stage] == stream:
                    if self._guard_ok(state.runs[:stage], tup, stage):
                        state.runs = state.runs[:stage] + [[tup]]
                        if stage == 0:
                            state.generation += 1
                            if state.timer is not None:
                                state.timer.cancel()
                                state.timer = None
                            self._arm_timer(state, tup)
                        return
            # Not a repeat: the offending tuple is dropped, the partial
            # survives (RECENT keeps waiting for the true next stage).
            return
        # CONSECUTIVE: the partial is dead; the interloper may start anew.
        state.reset()
        self._try_start(state, tup, report=False)

    def _try_start(self, state: _SequenceState, tup: Tuple, report: bool) -> None:
        if (
            tup.stream.lower() == self._stage_streams[0]
            and self._guard_ok([], tup, 0)
        ):
            self._bind(state, tup)
            return
        if report:
            outcome = SequenceOutcome(
                self.args, 0, ExceptionReason.WRONG_START, [], tup, tup.ts
            )
            self.exceptions_emitted += 1
            self._record(outcome)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{arg.alias}{'*' if arg.starred else ''}" for arg in self.args
        )
        return (
            f"ExceptionSeqOperator(EXCEPTION_SEQ({inner}), "
            f"{self.exceptions_emitted} exceptions, "
            f"{self.completions_emitted} completions)"
        )
