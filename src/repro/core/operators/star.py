"""Star sequences: SEQ with repeating arguments (paper section 3.1.2).

``SEQ(R1*, R2)`` matches one-or-more R1 tuples followed by an R2 tuple
(the paper's ``a+ b`` regular expression from Example 4).  Star runs follow
the paper's semantics:

* **Longest match** — an event is generated only for the longest possible
  run, never for its sub-runs.
* **Online trailing star** — when the *last* argument is starred, an event
  is emitted for each arriving tuple that extends the trailing run (there is
  no terminator to wait for).
* **Run segmentation by inter-arrival gap** — the paper's
  ``R1.tagtime - R1.previous.tagtime <= 1 SECONDS`` constraint is the
  :attr:`SeqArg.max_gap`; a tuple arriving after a longer gap closes the
  current run and starts the next one (Figure 1(b): the next case's products
  start before the previous case is detected).

The runtime maintains *partials* — in-progress matches.  Pairing modes map
onto partial policies:

* CHRONICLE — an arriving next-stage tuple advances the **earliest**
  qualifying partial; completed partials are consumed (tuples participate
  once).  This is the mode the paper recommends for containment.
* RECENT — advances the **latest** qualifying partial; on emission older
  partials are discarded.
* UNRESTRICTED — advances **every** qualifying partial, cloning so that each
  later tuple can still combine with the original (all combinations, with
  star runs fixed to the longest form).
* CONSECUTIVE — a single partial over the joint tuple history; any
  participating tuple that does not fit the pattern resets it.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ...dsms.engine import Engine
from ...dsms.errors import EslSemanticError
from ...dsms.tuples import Tuple
from .base import (
    Guard,
    MatchCallback,
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqMatch,
    validate_args,
)


class _Partial:
    """One in-progress star-sequence match.

    ``bound[j]`` is the list of tuples bound to stage j (length 1 for plain
    stages).  ``open_star`` is True while the newest stage is a starred stage
    still accepting extensions.
    """

    __slots__ = ("bound", "open_star", "born")

    def __init__(self, born: float) -> None:
        self.bound: list[list[Tuple]] = []
        self.open_star = False
        self.born = born

    @property
    def next_stage(self) -> int:
        """Index of the next stage expecting a *new* binding."""
        return len(self.bound)

    @property
    def current_stage(self) -> int:
        """Index of the newest stage with at least one binding (-1 if none)."""
        return len(self.bound) - 1

    def first_tuple(self) -> Tuple | None:
        return self.bound[0][0] if self.bound else None

    def last_tuple(self) -> Tuple | None:
        return self.bound[-1][-1] if self.bound else None

    def size(self) -> int:
        return sum(len(run) for run in self.bound)

    def clone(self) -> "_Partial":
        twin = _Partial(self.born)
        twin.bound = [list(run) for run in self.bound]
        twin.open_star = self.open_star
        return twin

    def __repr__(self) -> str:
        shape = "/".join(str(len(run)) for run in self.bound)
        star = "+" if self.open_star else ""
        return f"_Partial({shape}{star})"


class StarSeqOperator:
    """Runtime for SEQ patterns containing at least one starred argument."""

    def __init__(
        self,
        engine: Engine,
        args: Sequence[SeqArg],
        mode: PairingMode = PairingMode.CHRONICLE,
        window: OperatorWindow | None = None,
        guard: Guard | None = None,
        partition_by: Callable[[Tuple], Any] | None = None,
        on_match: MatchCallback | None = None,
        ttl: float | None = None,
        store_matches: bool = True,
    ) -> None:
        """Args mirror :class:`~repro.core.operators.seq.SeqOperator`, plus:

        ttl: seconds after which a partial that has not advanced is dropped
            (defaults to the window duration when a window is given).  Keeps
            state bounded when guards — not windows — encode the timing.
        """
        validate_args(args)
        if not any(arg.starred for arg in args):
            raise EslSemanticError(
                "StarSeqOperator needs at least one starred argument; "
                "use SeqOperator for star-free patterns"
            )
        self.engine = engine
        self.args = tuple(args)
        self.mode = mode
        self.window = window
        self.guard = guard
        self.partition_by = partition_by
        self.ttl = ttl if ttl is not None else (window.duration if window else None)
        self.matches: list[SeqMatch] = []
        self.store_matches = store_matches
        self._on_match = on_match
        self._partials: dict[Any, list[_Partial]] = {}
        self._unsubscribes: list[Callable[[], None]] = []
        self.tuples_seen = 0
        self.matches_emitted = 0

        self._stage_streams = [arg.stream.lower() for arg in self.args]
        self._participating = set(self._stage_streams)
        for stream_name in self._participating:
            stream = engine.streams.get(stream_name)
            self._unsubscribes.append(stream.subscribe(self._on_tuple))
        register = getattr(engine, "register_checkpointable", None)
        if register is not None:
            from ...dsms.checkpoint import UnsupportedState

            register(UnsupportedState("SEQ with starred arguments"))

    # -- public -----------------------------------------------------------

    def stop(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    @property
    def state_size(self) -> int:
        return sum(
            partial.size()
            for partials in self._partials.values()
            for partial in partials
        )

    def drain_matches(self) -> list[SeqMatch]:
        out = self.matches
        self.matches = []
        return out

    # -- ingestion ----------------------------------------------------------

    def _partials_for(self, tup: Tuple) -> list[_Partial]:
        key = self.partition_by(tup) if self.partition_by else None
        partials = self._partials.get(key)
        if partials is None:
            partials = []
            self._partials[key] = partials
        return partials

    def _on_tuple(self, tup: Tuple) -> None:
        self.tuples_seen += 1
        if tup.stream.lower() not in self._participating:
            return
        partials = self._partials_for(tup)
        self._prune(partials, tup.ts)
        if self.mode is PairingMode.CONSECUTIVE:
            self._consecutive_step(partials, tup)
        elif self.mode is PairingMode.UNRESTRICTED:
            self._unrestricted_step(partials, tup)
        else:
            self._greedy_step(partials, tup)

    # -- shared helpers -------------------------------------------------------

    def _guard_ok(self, partial: _Partial, extra: Tuple, stage: int) -> bool:
        if self.guard is None:
            return True
        bindings: dict[str, Any] = {}
        for index, run in enumerate(partial.bound):
            arg = self.args[index]
            bindings[arg.alias] = list(run) if arg.starred else run[0]
        arg = self.args[stage]
        if arg.starred:
            existing = bindings.get(arg.alias)
            run = list(existing) if isinstance(existing, list) else []
            run.append(extra)
            bindings[arg.alias] = run
        else:
            bindings[arg.alias] = extra
        return bool(self.guard(bindings))

    def _gap_ok(self, partial: _Partial, tup: Tuple, stage: int) -> bool:
        arg = self.args[stage]
        if arg.gap_check is None and arg.max_gap is None:
            return True
        last = partial.bound[stage][-1]
        if arg.gap_check is not None:
            return bool(arg.gap_check(last, tup))
        return tup.ts - last.ts <= arg.max_gap

    def _can_extend_open(self, partial: _Partial, tup: Tuple) -> bool:
        """Can *tup* extend the partial's open star run?"""
        stage = partial.current_stage
        return (
            partial.open_star
            and self._stage_streams[stage] == tup.stream.lower()
            and self._gap_ok(partial, tup, stage)
            and self._guard_ok(partial, tup, stage)
        )

    def _can_start_stage(self, partial: _Partial, tup: Tuple) -> bool:
        """Can *tup* become the first binding of the partial's next stage?"""
        stage = partial.next_stage
        if stage >= len(self.args):
            return False
        return (
            self._stage_streams[stage] == tup.stream.lower()
            and self._guard_ok(partial, tup, stage)
        )

    def _bind_next(self, partials: list[_Partial], partial: _Partial, tup: Tuple) -> None:
        """Bind *tup* as the first tuple of the next stage and emit if done."""
        stage = partial.next_stage
        partial.bound.append([tup])
        arg = self.args[stage]
        if arg.starred:
            partial.open_star = True
            if stage == len(self.args) - 1:
                self._emit(partial)  # online trailing star
        else:
            partial.open_star = False
            if stage == len(self.args) - 1:
                self._complete(partials, partial)

    def _extend_open(self, partials: list[_Partial], partial: _Partial, tup: Tuple) -> None:
        stage = partial.current_stage
        partial.bound[stage].append(tup)
        if stage == len(self.args) - 1:
            self._emit(partial)  # online trailing star

    def _complete(self, partials: list[_Partial], partial: _Partial) -> None:
        self._emit(partial)
        if self.mode is PairingMode.CHRONICLE:
            self._remove(partials, partial)
        elif self.mode is PairingMode.RECENT:
            # Drop everything older than the match (aggressive purge); the
            # matched partial itself is also retired — its last stage is
            # bound and cannot rebind.
            survivors = [p for p in partials if p.born > partial.born]
            partials[:] = survivors
        elif self.mode is PairingMode.CONSECUTIVE:
            partials.clear()
        # UNRESTRICTED keeps everything: later anchors may combine again
        # (the completed clone is retired; the un-advanced original remains).
        elif self.mode is PairingMode.UNRESTRICTED:
            self._remove(partials, partial)

    @staticmethod
    def _remove(partials: list[_Partial], partial: _Partial) -> None:
        try:
            partials.remove(partial)
        except ValueError:
            pass

    def _emit(self, partial: _Partial) -> None:
        bindings: dict[str, Tuple | list[Tuple]] = {}
        anchor_tuple: Tuple | None = None
        all_tuples: list[Tuple] = []
        for index, run in enumerate(partial.bound):
            arg = self.args[index]
            bindings[arg.alias] = list(run) if arg.starred else run[0]
            all_tuples.extend(run)
        if self.window is not None:
            anchor_run = partial.bound[self.window.anchor]
            anchor_tuple = (
                anchor_run[-1]
                if self.window.direction == "preceding"
                else anchor_run[0]
            )
            if not self.window.admits(all_tuples, anchor_tuple):
                return
        match = SeqMatch(self.args, bindings, all_tuples[-1].ts)
        self.matches_emitted += 1
        if self.store_matches:
            self.matches.append(match)
        if self._on_match is not None:
            self._on_match(match)

    def _prune(self, partials: list[_Partial], now: float) -> None:
        """Drop partials that can no longer complete.

        Two criteria: the TTL (no advancement for *ttl* seconds), and — when
        a window bounds stage 0 — a first tuple that already fell out of any
        future window.
        """
        if not partials:
            return
        keep: list[_Partial] = []
        window_covers_start = self.window is not None and (
            (self.window.direction == "preceding"
             and self.window.anchor == len(self.args) - 1)
            or (self.window.direction == "following" and self.window.anchor == 0)
        )
        for partial in partials:
            last = partial.last_tuple()
            if self.ttl is not None and last is not None:
                if now - last.ts > self.ttl:
                    continue
            if window_covers_start and self.window is not None:
                first = partial.first_tuple()
                if first is not None and first.ts < now - self.window.duration:
                    continue
            keep.append(partial)
        if len(keep) != len(partials):
            partials[:] = keep

    # -- greedy modes (CHRONICLE earliest, RECENT latest) ----------------------

    def _greedy_step(self, partials: list[_Partial], tup: Tuple) -> None:
        ordered = partials if self.mode is PairingMode.CHRONICLE else list(
            reversed(partials)
        )
        # 1. Try to extend an open star run (the newest open one: runs are
        #    disjoint segmentations of the stream).
        for partial in reversed(partials):
            if self._can_extend_open(partial, tup):
                self._extend_open(partials, partial, tup)
                return
        # 2. Try to advance a partial to its next stage (earliest-first for
        #    CHRONICLE, latest-first for RECENT).  A gap-violating or
        #    guard-failing star extension falls through to here, closing the
        #    run implicitly (open_star stays set but the run simply stops
        #    growing; binding the next stage clears it).
        for partial in ordered:
            if self._can_start_stage(partial, tup):
                partial.open_star = False
                self._bind_next(partials, partial, tup)
                return
        # 3. Neither extended nor advanced: can it begin a fresh partial?
        fresh = _Partial(born=tup.ts)
        if self._can_start_stage(fresh, tup):
            if self.mode is PairingMode.RECENT:
                # Most-recent semantics: a new run replaces stalled partials
                # that are still sitting at stage 0.
                partials[:] = [p for p in partials if p.next_stage > 0 or p.open_star]
            self._bind_next(partials, fresh, tup)
            if fresh.bound:
                partials.append(fresh)

    # -- UNRESTRICTED ----------------------------------------------------------

    def _unrestricted_step(self, partials: list[_Partial], tup: Tuple) -> None:
        # Extend open star runs in place (longest-match keeps runs unique)...
        extended = False
        for partial in partials:
            if self._can_extend_open(partial, tup):
                self._extend_open(partials, partial, tup)
                extended = True
        # ...and advance every qualifying partial via a clone, so the
        # original can still pair with later tuples of this stage.
        clones: list[_Partial] = []
        for partial in partials:
            if self._can_start_stage(partial, tup) and not partial.open_star:
                clone = partial.clone()
                self._bind_next(partials, clone, tup)
                if clone.next_stage <= len(self.args) - 1 or clone.open_star:
                    clones.append(clone)
            elif partial.open_star and self._can_start_stage(partial, tup):
                # The next stage begins; the open run closes in the clone.
                clone = partial.clone()
                clone.open_star = False
                self._bind_next(partials, clone, tup)
                clones.append(clone)
        live_clones = [c for c in clones if c.next_stage < len(self.args) or c.open_star]
        partials.extend(live_clones)
        # Finally, the tuple may start a brand-new partial at stage 0.
        if not extended:
            fresh = _Partial(born=tup.ts)
            if self._can_start_stage(fresh, tup):
                self._bind_next(partials, fresh, tup)
                if fresh.next_stage < len(self.args) or fresh.open_star:
                    partials.append(fresh)

    # -- CONSECUTIVE -------------------------------------------------------------

    def _consecutive_step(self, partials: list[_Partial], tup: Tuple) -> None:
        if not partials:
            partials.append(_Partial(born=tup.ts))
        partial = partials[0]
        if self._can_extend_open(partial, tup):
            self._extend_open(partials, partial, tup)
            return
        if self._can_start_stage(partial, tup):
            partial.open_star = False
            self._bind_next(partials, partial, tup)
            return
        # Interloper on the joint history: reset, then see if it restarts.
        partials.clear()
        fresh = _Partial(born=tup.ts)
        if self._can_start_stage(fresh, tup):
            self._bind_next(partials, fresh, tup)
            if fresh.bound:
                partials.append(fresh)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{arg.alias}{'*' if arg.starred else ''}" for arg in self.args
        )
        return (
            f"StarSeqOperator(SEQ({inner}) MODE {self.mode.value.upper()}, "
            f"{self.matches_emitted} matches, state={self.state_size})"
        )
