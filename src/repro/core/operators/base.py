"""Shared types for the ESL-EV temporal event operators.

A temporal operator (paper section 3.1) maps a timestamp-ordered sequence of
tuples to boolean events.  In this runtime an operator instance:

* subscribes to its argument streams,
* maintains tuple history according to its :class:`PairingMode`,
* and emits :class:`SeqMatch` objects (the variable bindings that made the
  operator true) to a callback.

The compiled ESL-EV query layers SELECT/WHERE evaluation on top of these
matches; the operators themselves are usable directly from Python, which is
how the benchmarks drive them.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterator, Mapping, Sequence

from ...dsms.errors import EslSemanticError, WindowError
from ...dsms.tuples import Tuple


class PairingMode(enum.Enum):
    """The paper's four Tuple Pairing Modes (section 3.1.1).

    * UNRESTRICTED — every time-ordered combination forms an event.
    * RECENT — an incoming tuple matches the most recent qualifying tuple on
      each other stream; history is aggressively purged.
    * CHRONICLE — earliest qualifying tuples; each tuple participates in at
      most one event and is consumed on match.
    * CONSECUTIVE — tuples must be adjacent on the joint tuple history of all
      participating streams; history resets when a sequence completes or is
      interrupted.
    """

    UNRESTRICTED = "unrestricted"
    RECENT = "recent"
    CHRONICLE = "chronicle"
    CONSECUTIVE = "consecutive"

    @classmethod
    def parse(cls, text: str) -> "PairingMode":
        try:
            return cls(text.strip().lower())
        except ValueError:
            options = ", ".join(mode.value.upper() for mode in cls)
            raise EslSemanticError(
                f"unknown pairing mode {text!r}; expected one of {options}"
            ) from None


class SeqArg:
    """One argument of SEQ / EXCEPTION_SEQ.

    Attributes:
        stream: source stream name.
        alias: the name bindings are exposed under (defaults to the stream
            name; SQL aliases let the same stream appear at several
            positions).
        starred: True for ``E*`` star-sequence arguments.
        max_gap: maximum seconds between consecutive tuples of a star run —
            the paper's ``R1.tagtime - R1.previous.tagtime <= 1 SECONDS``
            constraint, hoisted into the operator so runs segment correctly.
            None means any gap extends the run.
        gap_check: general form of the same constraint — a predicate
            ``(previous_tuple, new_tuple) -> bool`` consulted instead of
            max_gap when present (the compiler builds these from arbitrary
            ``previous`` expressions).
    """

    __slots__ = ("stream", "alias", "starred", "max_gap", "gap_check")

    def __init__(
        self,
        stream: str,
        alias: str | None = None,
        starred: bool = False,
        max_gap: float | None = None,
        gap_check: Callable[["Tuple", "Tuple"], bool] | None = None,
    ) -> None:
        self.stream = stream
        self.alias = alias or stream
        self.starred = starred
        if max_gap is not None and max_gap < 0:
            raise EslSemanticError(f"negative star gap: {max_gap}")
        self.max_gap = max_gap
        self.gap_check = gap_check
        if (max_gap is not None or gap_check is not None) and not starred:
            raise EslSemanticError(
                f"argument {self.alias!r}: gap constraints only apply to "
                "starred args"
            )

    def __repr__(self) -> str:
        star = "*" if self.starred else ""
        gap = f", gap<={self.max_gap:g}s" if self.max_gap is not None else ""
        return f"SeqArg({self.stream}{star} AS {self.alias}{gap})"


class OperatorWindow:
    """A sliding window attached to a temporal operator.

    ``OVER [30 MINUTES PRECEDING C4]`` — *anchor* is the argument index of
    C4, *direction* is ``"preceding"``: every tuple in the match must have
    ``anchor.ts - duration <= ts <= anchor.ts``.

    ``OVER [1 HOURS FOLLOWING A1]`` — direction ``"following"``: every tuple
    must satisfy ``anchor.ts <= ts <= anchor.ts + duration``.  FOLLOWING
    windows on EXCEPTION_SEQ additionally arm expiration timers (Active
    Expiration).
    """

    __slots__ = ("duration", "anchor", "direction")

    def __init__(self, duration: float, anchor: int, direction: str) -> None:
        if duration < 0:
            raise WindowError(f"negative operator window: {duration}")
        if direction not in ("preceding", "following"):
            raise WindowError(f"window direction must be preceding/following")
        self.duration = float(duration)
        self.anchor = anchor
        self.direction = direction

    def admits(self, tuples: Sequence[Tuple], anchor_tuple: Tuple) -> bool:
        """True when every tuple lies inside the window around the anchor."""
        if self.direction == "preceding":
            lo = anchor_tuple.ts - self.duration
            hi = anchor_tuple.ts
        else:
            lo = anchor_tuple.ts
            hi = anchor_tuple.ts + self.duration
        return all(lo <= tup.ts <= hi for tup in tuples)

    def horizon(self, now: float) -> float:
        """Oldest timestamp that could still join a future match at *now*.

        Used to prune tuple history: anything older can never satisfy the
        window again.
        """
        return now - self.duration

    def __repr__(self) -> str:
        return (
            f"OperatorWindow({self.duration:g}s {self.direction.upper()} "
            f"arg#{self.anchor})"
        )


class SeqMatch:
    """The variable bindings of one positive operator evaluation.

    ``bindings[alias]`` is a single :class:`Tuple` for plain arguments and a
    list of tuples (the star run, oldest first) for starred arguments.
    """

    __slots__ = ("args", "bindings", "ts")

    def __init__(
        self,
        args: Sequence[SeqArg],
        bindings: Mapping[str, Tuple | list[Tuple]],
        ts: float,
    ) -> None:
        self.args = tuple(args)
        self.bindings = dict(bindings)
        self.ts = ts

    @classmethod
    def owned(
        cls,
        args: tuple["SeqArg", ...],
        bindings: dict[str, Tuple | list[Tuple]],
        ts: float,
    ) -> "SeqMatch":
        """Construct from an args tuple and bindings dict the caller hands
        over (no defensive copies) — the operator emission hot path."""
        match = cls.__new__(cls)
        match.args = args
        match.bindings = bindings
        match.ts = ts
        return match

    def _lookup(self, alias: str) -> Tuple | list[Tuple]:
        if alias in self.bindings:
            return self.bindings[alias]
        lowered = alias.lower()
        for key, bound in self.bindings.items():
            if key.lower() == lowered:
                return bound
        raise KeyError(alias)

    def tuple_for(self, alias: str) -> Tuple:
        """The single tuple bound to *alias* (last of a star run)."""
        bound = self._lookup(alias)
        if isinstance(bound, list):
            return bound[-1]
        return bound

    def run_for(self, alias: str) -> list[Tuple]:
        """The star run bound to *alias* (a 1-list for plain args)."""
        bound = self._lookup(alias)
        if isinstance(bound, list):
            return bound
        return [bound]

    def first(self, alias: str) -> Tuple:
        """Paper's FIRST(R1*): first tuple of the run."""
        return self.run_for(alias)[0]

    def last(self, alias: str) -> Tuple:
        """Paper's LAST(R1*): last tuple of the run."""
        return self.run_for(alias)[-1]

    def count(self, alias: str) -> int:
        """Paper's COUNT(R1*): number of tuples in the run."""
        return len(self.run_for(alias))

    def all_tuples(self) -> Iterator[Tuple]:
        """Every bound tuple in argument order (star runs expanded)."""
        for arg in self.args:
            yield from self.run_for(arg.alias)

    def key(self) -> tuple:
        """A hashable identity for deduplication in tests."""
        parts = []
        for arg in self.args:
            run = self.run_for(arg.alias)
            parts.append(tuple((tup.ts, tup.seq) for tup in run))
        return tuple(parts)

    def __repr__(self) -> str:
        inner = []
        for arg in self.args:
            run = self.run_for(arg.alias)
            if arg.starred:
                inner.append(f"{arg.alias}*={[f'{t.ts:g}' for t in run]}")
            else:
                inner.append(f"{arg.alias}@{run[0].ts:g}")
        return f"SeqMatch({', '.join(inner)})"


#: Signature of operator output callbacks.
MatchCallback = Callable[[SeqMatch], None]

#: Optional predicate evaluated while *building* candidate bindings.  It
#: receives the partial bindings accumulated so far (alias -> tuple/run) and
#: returns False to reject the extension — this is how "qualifying
#: conditions on attributes" (paper 3.1.1) steer RECENT/CHRONICLE selection.
Guard = Callable[[Mapping[str, Any]], bool]


def validate_args(args: Sequence[SeqArg]) -> None:
    """Shared argument validation for operator constructors."""
    if len(args) < 2:
        raise EslSemanticError("temporal operators need at least two arguments")
    seen: set[str] = set()
    for arg in args:
        key = arg.alias.lower()
        if key in seen:
            raise EslSemanticError(f"duplicate operator alias {arg.alias!r}")
        seen.add(key)
    for left, right in zip(args, args[1:]):
        if left.starred and left.stream.lower() == right.stream.lower():
            # SEQ(A*, A) is inherently ambiguous: under longest-match the
            # second A can never be reached.  Reject early with a clear
            # message instead of silently never matching.
            raise EslSemanticError(
                f"star argument {left.alias!r} is followed by the same stream "
                f"{right.stream!r}; longest-match would consume every tuple"
            )
