"""ESL-EV temporal event operators: SEQ, star sequences, EXCEPTION_SEQ,
CLEVEL_SEQ, and the cross-sub-query symmetric window.

:func:`make_sequence_operator` dispatches between the star-free
:class:`SeqOperator` and the star-capable :class:`StarSeqOperator`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ...dsms.engine import Engine
from ...dsms.tuples import Tuple
from .base import (
    Guard,
    MatchCallback,
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqMatch,
    validate_args,
)
from .exception_seq import (
    ExceptionReason,
    ExceptionSeqOperator,
    SequenceOutcome,
)
from .seq import SeqOperator
from .star import StarSeqOperator
from .subquery import SymmetricExistsOperator


def make_sequence_operator(
    engine: Engine,
    args: Sequence[SeqArg],
    mode: PairingMode = PairingMode.UNRESTRICTED,
    window: OperatorWindow | None = None,
    guard: Guard | None = None,
    partition_by: Callable[[Tuple], Any] | None = None,
    on_match: MatchCallback | None = None,
    ttl: float | None = None,
    store_matches: bool = True,
) -> SeqOperator | StarSeqOperator:
    """Build the right SEQ runtime for *args* (star-free vs. starred).

    ``store_matches=False`` keeps the operator from accumulating
    :class:`SeqMatch` objects — long-running deployments that consume
    events solely through ``on_match`` should disable storage.
    """
    if any(arg.starred for arg in args):
        return StarSeqOperator(
            engine, args, mode=mode, window=window, guard=guard,
            partition_by=partition_by, on_match=on_match, ttl=ttl,
            store_matches=store_matches,
        )
    return SeqOperator(
        engine, args, mode=mode, window=window, guard=guard,
        partition_by=partition_by, on_match=on_match,
        store_matches=store_matches,
    )


__all__ = [
    "ExceptionReason",
    "ExceptionSeqOperator",
    "Guard",
    "MatchCallback",
    "OperatorWindow",
    "PairingMode",
    "SeqArg",
    "SeqMatch",
    "SeqOperator",
    "SequenceOutcome",
    "StarSeqOperator",
    "SymmetricExistsOperator",
    "make_sequence_operator",
    "validate_args",
]
