"""Compiled operator guards: per-argument admission plus cross-alias pairing.

A temporal operator's residual WHERE conjuncts (the "qualifying
conditions") are evaluated *leniently*: a conjunct whose references are not
all bound yet must pass, because it will be re-checked once they bind.  The
interpreted engine realizes this by re-running every conjunct against every
partial binding — O(terms) work per extension attempt.

:class:`CompiledGuard` lowers each conjunct to a closure once (via
:meth:`~repro.dsms.expressions.Expression.compile`) and splits the
conjunction by the aliases each term references:

* **admission terms** reference exactly one operator alias.  They can be
  decided the moment a tuple arrives for that argument — a tuple failing
  its single-alias conjunct can never appear in any successful binding, so
  operators may drop it before it ever enters history.
* **cross terms** reference two or more aliases (or none statically) and
  must stay in the pairing-time check.

When every conjunct is an admission term, ``cross_free`` is True and the
pairing check degenerates to a constant — which re-enables RECENT-mode
dominated-tuple purging, normally unsound under a guard.

The guard remains a plain ``Callable[[Mapping[str, Any]], bool]`` (the
:data:`~repro.core.operators.base.Guard` contract): calling it runs the
full lenient conjunction, so operators that do not know about the split
(star / EXCEPTION_SEQ) still get compiled-closure speed.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from ...dsms.errors import EslRuntimeError
from ...dsms.expressions import (
    CompileContext,
    Env,
    EvalFn,
    Expression,
    compile_pairing_vector,
    compile_vector,
)
from ...dsms.schema import Schema

__all__ = ["CompiledGuard", "build_compiled_guard"]


def _lenient(fn: EvalFn) -> Callable[[Env], bool]:
    """Wrap a compiled term with the lenient-pass discipline.

    Mirrors ``_eval_term_lenient``: unbound aliases raise EslRuntimeError and
    star-run list bindings raise TypeError; both count as "cannot be checked
    yet" and pass.
    """

    def check(env: Env) -> bool:
        try:
            return fn(env) is not False
        except (EslRuntimeError, TypeError):
            return True

    return check


def _term_aliases(term: Expression, known: Mapping[str, Any]) -> set[str] | None:
    """The operator aliases *term* references, or None when indeterminate.

    A bare (unqualified) column reference resolves dynamically against
    whatever is bound, so such a term cannot be split — treat it as a cross
    term.
    """
    aliases: set[str] = set()
    for alias, _field in term.references():
        if alias is None:
            return None
        key = alias.lower()
        if key not in known:
            return None  # references something outside the operator args
        aliases.add(key)
    return aliases


class CompiledGuard:
    """A guard lowered to closures and split by referenced aliases.

    Callable with the full (or partial) alias->binding mapping, like any
    :data:`Guard`.  Operators aware of the split use :meth:`admit` at
    arrival time and :meth:`pairing` while pairing candidates whose
    members all passed admission.
    """

    __slots__ = (
        "_admission", "_cross", "_env", "_admission_terms",
        "_cross_terms", "_ctx", "aliases",
    )

    def __init__(
        self,
        admission: Mapping[str, Sequence[Callable[[Env], bool]]],
        cross: Sequence[Callable[[Env], bool]],
        env: Env,
        admission_terms: Mapping[str, Sequence[Expression]] | None = None,
        cross_terms: Sequence[tuple[Expression, frozenset | None]] | None = None,
        ctx: CompileContext | None = None,
    ) -> None:
        self._admission = {alias.lower(): tuple(fns) for alias, fns in admission.items()}
        self._cross = tuple(cross)
        # One scratch Env reused across calls: guard evaluation is
        # synchronous and operator-local, so rebinding per call is safe and
        # avoids an allocation per check.
        self._env = env
        # Raw expression IR of the admission terms, kept so the vectorized
        # admission tier can re-lower them against a concrete stream schema
        # (compile() bakes in Env access; compile_vector() needs columns).
        self._admission_terms = {
            alias.lower(): tuple(terms)
            for alias, terms in (admission_terms or {}).items()
        }
        # Cross-term IR with the (lower-cased) alias sets each references,
        # kept for the pairing mask tiers (None = indeterminate — bare
        # references — never maskable).
        self._cross_terms = tuple(cross_terms or ())
        self._ctx = ctx
        self.aliases = frozenset(self._admission)

    @property
    def cross_free(self) -> bool:
        """True when no conjunct spans multiple aliases."""
        return not self._cross

    def admit(self, alias: str, bound: Any) -> bool:
        """Decide *alias*'s single-alias conjuncts for one candidate binding."""
        fns = self._admission.get(alias.lower())
        if not fns:
            return True
        env = self._env
        env.bindings = {alias.lower(): bound}
        for fn in fns:
            if not fn(env):
                return False
        return True

    def vector_admission(
        self,
        alias: str,
        schema: Schema,
        native_state: Any = None,
        allow_vector: bool = True,
    ) -> Callable[[Any, Any, int], Any] | None:
        """A whole-batch admission mask for *alias*, or None if unavailable.

        Lowers every one of *alias*'s admission terms with
        :func:`~repro.dsms.expressions.compile_vector` against *schema*
        (the stream delivering that argument).  The returned closure maps
        a batch's ``(columns, timestamps, n)`` to a per-row boolean list:
        True rows may be admitted by :meth:`admit`, False rows are
        guaranteed to fail it.  Matching the lenient discipline, a term
        value that is not False (True or NULL) passes; if evaluation
        raises, the closure returns None — "mask unavailable, materialize
        everything" — and the scalar re-check preserves exact semantics.

        With *native_state* set (the engine's ``native_admission`` tier)
        the same terms are first lowered to a C kernel in lenient mode
        and the kernel is consulted per batch before the vectorized
        closures — the native→vector→closure fallback chain, decided
        independently per predicate and per batch.
        """
        terms = self._admission_terms.get(alias.lower())
        if not terms:
            return None
        native_fn = None
        if native_state is not None:
            from ...dsms.native import native_admission_mask

            native_fn = native_admission_mask(
                terms, schema, alias, "lenient", native_state
            )
        fns: list | None = None
        if allow_vector:
            fns = []
            for term in terms:
                fn = compile_vector(term, schema, alias)
                if fn is None:
                    fns = None
                    break
                fns.append(fn)
        if fns is None:
            if native_fn is None:
                return None

            def native_only(cols: Any, tss: Any, n: int) -> Any:
                return native_fn(cols, tss, n)

            return native_only
        if native_fn is not None:
            vector_fns = tuple(fns)

            def chained(cols: Any, tss: Any, n: int) -> Any:
                mask = native_fn(cols, tss, n)
                if mask is not None:
                    return mask
                try:
                    out = [True] * n
                    for fn in vector_fns:
                        values = fn(cols, tss, n)
                        for index in range(n):
                            if values[index] is False:
                                out[index] = False
                    return out
                except Exception:  # noqa: BLE001 - any error -> scalar path
                    return None

            return chained
        if len(fns) == 1:
            sole = fns[0]

            def single_mask(cols: Any, tss: Any, n: int) -> list | None:
                try:
                    return [value is not False for value in sole(cols, tss, n)]
                except Exception:  # noqa: BLE001 - any error -> scalar path
                    return None

            return single_mask

        def mask(cols: Any, tss: Any, n: int) -> list | None:
            try:
                out = [True] * n
                for fn in fns:
                    values = fn(cols, tss, n)
                    for index in range(n):
                        if values[index] is False:
                            out[index] = False
                return out
            except Exception:  # noqa: BLE001 - any error -> scalar path
                return None

        return mask

    def pairing(self, bindings: Mapping[str, Any]) -> bool:
        """Check only the cross-alias conjuncts (members already admitted)."""
        if not self._cross:
            return True
        env = self._env
        env.bindings = {alias.lower(): bound for alias, bound in bindings.items()}
        for fn in self._cross:
            if not fn(env):
                return False
        return True

    def pairing_prebound(self, bindings: Mapping[str, Any]) -> bool:
        """:meth:`pairing` for bindings whose keys are already lower-cased.

        The indexed SEQ enumeration keeps one scratch bindings dict (keyed
        by lower-cased alias) alive across all candidates of a scan, so
        the per-candidate dict rebuild of :meth:`pairing` vanishes from
        the hot loop; the env is simply repointed at the scratch mapping.
        """
        if not self._cross:
            return True
        env = self._env
        env.bindings = bindings  # type: ignore[assignment]
        for fn in self._cross:
            if not fn(env):
                return False
        return True

    def vector_pairing(
        self,
        alias: str,
        schema: Schema,
        bound_aliases: Iterable[str],
        native_state: Any = None,
        allow_vector: bool = True,
    ) -> "tuple[Callable[[Any, Any, int], Any], tuple] | None":
        """A candidate-slice pairing mask for one chain stage, or None.

        *alias* is the stage whose history is scanned, *bound_aliases*
        the stages already bound whenever that scan runs (for SEQ's
        right-to-left enumeration: every later argument).  A cross term
        is stage-decidable when it references *alias* and only otherwise
        bound aliases; the decidable terms lower to the native tier (a
        two-operand C kernel over the mirror's packed buffers) and/or the
        vectorized tier (:func:`compile_pairing_vector` closures over the
        mirror's object columns) — each tier independently keeping the
        subset of terms it can express, since every mask survivor is
        re-checked by the scalar :meth:`pairing` anyway.

        Returns ``(mask_fn, packed_slots)`` where ``mask_fn(bindings,
        store, n)`` maps the live (lower-cased) bindings and a
        :class:`~repro.dsms.columns.ColumnStore` prefix to a 0/1-ish mask
        (False/0 rows are guaranteed scalar-rejected) or None for "no
        mask this call"; ``packed_slots`` are the column buffers the
        native kernel needs the stage's mirrors to maintain (empty when
        native is off).  Returns None when no term is maskable at all.
        """
        if self._ctx is None or not self._cross_terms:
            return None
        cand = alias.lower()
        bound = {name.lower() for name in bound_aliases}
        known = bound | {cand}
        decidable = [
            term
            for term, refs in self._cross_terms
            if refs is not None and cand in refs and refs <= known
        ]
        if not decidable:
            return None
        native_fn = None
        packed_slots: tuple = ()
        if native_state is not None:
            from ...dsms.native import native_pairing_mask

            outer_schemas = {
                name: self._ctx.schemas[name]
                for name in bound
                if name in self._ctx.schemas
            }
            lowered = native_pairing_mask(
                decidable, schema, alias, outer_schemas, native_state
            )
            if lowered is not None:
                native_fn, spec = lowered
                packed_slots = spec.slots
        vector_fns: tuple | None = None
        if allow_vector:
            fns = [
                fn
                for fn in (
                    compile_pairing_vector(term, schema, alias, self._ctx, bound)
                    for term in decidable
                )
                if fn is not None
            ]
            vector_fns = tuple(fns) if fns else None
        if native_fn is None and vector_fns is None:
            return None
        env = self._env

        def stage_mask(bindings: Any, store: Any, n: int) -> Any:
            if native_fn is not None:
                mask = native_fn(bindings, store, n)
                if mask is not None:
                    return mask
            if vector_fns is None:
                return None
            try:
                env.bindings = bindings
                out = [True] * n
                cols = store.columns
                tss = store.timestamps
                for fn in vector_fns:
                    values = fn(env, cols, tss, n)
                    for index in range(n):
                        if values[index] is False:
                            out[index] = False
                return out
            except Exception:  # noqa: BLE001 - any error -> scalar path
                return None

        return stage_mask, packed_slots

    def __call__(self, bindings: Mapping[str, Any]) -> bool:
        """Full lenient conjunction — the plain :data:`Guard` contract."""
        env = self._env
        env.bindings = {alias.lower(): bound for alias, bound in bindings.items()}
        admission = self._admission
        for key in env.bindings:
            for fn in admission.get(key, ()):
                if not fn(env):
                    return False
        for fn in self._cross:
            if not fn(env):
                return False
        return True


def build_compiled_guard(
    terms: Iterable[Expression],
    ctx: CompileContext,
    arg_aliases: Iterable[str],
) -> CompiledGuard:
    """Compile guard *terms*, splitting them over *arg_aliases*."""
    known = {alias.lower(): None for alias in arg_aliases}
    admission: dict[str, list[Callable[[Env], bool]]] = {}
    admission_terms: dict[str, list[Expression]] = {}
    cross: list[Callable[[Env], bool]] = []
    cross_terms: list[tuple[Expression, frozenset | None]] = []
    for term in terms:
        fn = _lenient(term.compile(ctx))
        aliases = _term_aliases(term, known)
        if aliases is not None and len(aliases) == 1:
            alias = next(iter(aliases))
            admission.setdefault(alias, []).append(fn)
            admission_terms.setdefault(alias, []).append(term)
        else:
            cross.append(fn)
            cross_terms.append(
                (term, frozenset(aliases) if aliases is not None else None)
            )
    return CompiledGuard(
        admission, cross, Env(functions=ctx.functions), admission_terms,
        cross_terms, ctx,
    )
