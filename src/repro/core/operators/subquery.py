"""Windows synchronized across a sub-query boundary (paper section 3.2).

Example 8's theft detector needs ``NOT EXISTS`` over a window defined both
*before and after* an outer tuple::

    SELECT person.tagid
    FROM tag_readings AS person
    WHERE person.tagtype = 'person' AND NOT EXISTS
      (SELECT * FROM tag_readings AS item
       OVER [1 MINUTES PRECEDING AND FOLLOWING person]
       WHERE item.tagtype = 'item')

The FOLLOWING half means the predicate cannot be decided when the outer
tuple arrives: the decision point is ``outer.ts + following``.
:class:`SymmetricExistsOperator` implements this with pending outer tuples
resolved either by a witness (an inner tuple satisfying the correlated
predicate) or by a timer at the decision point — another use of the
engine's Active Expiration machinery.

Semantics summary (``negate=True`` = NOT EXISTS):

* outer tuple t arrives, passes ``outer_where``;
* witnesses are inner tuples w with ``t.ts - preceding <= w.ts <= t.ts +
  following`` and ``inner_where(w, t)`` true, excluding t itself when inner
  and outer are the same stream;
* NOT EXISTS: t is emitted at ``t.ts + following`` iff no witness appeared;
* EXISTS: t is emitted as soon as the first witness is known (possibly
  immediately, from history).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ...dsms.checkpoint import pack_tuple, tuple_unpacker
from ...dsms.clock import Timer
from ...dsms.engine import Engine
from ...dsms.errors import WindowError
from ...dsms.tuples import Tuple
from ...dsms.windows import RangeWindowBuffer

OuterPredicate = Callable[[Tuple], bool]
InnerPredicate = Callable[[Tuple, Tuple], bool]
ResultCallback = Callable[[Tuple, float], None]


class _Pending:
    """An outer tuple awaiting its decision point."""

    __slots__ = ("outer", "deadline", "timer", "resolved")

    def __init__(self, outer: Tuple, deadline: float) -> None:
        self.outer = outer
        self.deadline = deadline
        self.timer: Timer | None = None
        self.resolved = False


class SymmetricExistsOperator:
    """EXISTS / NOT EXISTS with a PRECEDING-AND-FOLLOWING correlated window."""

    def __init__(
        self,
        engine: Engine,
        outer_stream: str,
        inner_stream: str,
        preceding: float,
        following: float,
        outer_where: OuterPredicate | None = None,
        inner_where: InnerPredicate | None = None,
        negate: bool = True,
        on_result: ResultCallback | None = None,
    ) -> None:
        """Args:
            preceding/following: window half-widths in seconds (either may
                be 0, but not both negative).
            negate: True for NOT EXISTS (the theft alert), False for EXISTS.
            on_result: called with ``(outer_tuple, decided_at)`` for every
                emission; results also accumulate in :attr:`results`.
        """
        if preceding < 0 or following < 0:
            raise WindowError("window half-widths must be non-negative")
        self.engine = engine
        self.outer = engine.streams.get(outer_stream)
        self.inner = engine.streams.get(inner_stream)
        self.preceding = float(preceding)
        self.following = float(following)
        self.outer_where = outer_where
        self.inner_where = inner_where
        self.negate = negate
        self.results: list[tuple[Tuple, float]] = []
        self._on_result = on_result
        self._pending: list[_Pending] = []
        # Inner history must cover [t - preceding, t + following] for outer
        # tuples resolved up to `following` seconds after the newest arrival.
        self._history = RangeWindowBuffer(self.preceding + self.following)
        self._unsubscribes = [self.inner.subscribe(self._on_inner)]
        if self.outer is self.inner:
            # Same physical stream (Example 8): one subscription, tuples are
            # routed to both roles.
            self._same_stream = True
        else:
            self._same_stream = False
            self._unsubscribes.append(self.outer.subscribe(self._on_outer))
        self.emitted = 0
        self.suppressed = 0
        register = getattr(engine, "register_checkpointable", None)
        if register is not None:
            register(self)

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """All mutable state as plain data: pending decisions (timers are
        re-armed at restore), the inner-history window, and counters."""
        return {
            "pending": [
                (pack_tuple(p.outer), p.deadline, p.resolved)
                for p in self._pending
            ],
            "history": [pack_tuple(t) for t in self._history],
            "latest": self._history.latest_ts,
            "results": [
                (pack_tuple(t), decided) for t, decided in self.results
            ],
            "emitted": self.emitted,
            "suppressed": self.suppressed,
        }

    def restore_state(self, blob: Mapping[str, Any]) -> None:
        unpack = tuple_unpacker(self.engine)
        for pending in self._pending:
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending = []
        for packed, deadline, resolved in blob["pending"]:
            pending = _Pending(unpack(packed), deadline)
            pending.resolved = resolved
            self._pending.append(pending)
            if not resolved:
                self._arm(pending)
        history = self._history
        history.clear()
        for packed in blob["history"]:
            history._tuples.append(unpack(packed))
        history._latest = blob["latest"]
        self.results = [
            (unpack(p), decided) for p, decided in blob["results"]
        ]
        self.emitted = blob["emitted"]
        self.suppressed = blob["suppressed"]

    # -- public --------------------------------------------------------------

    def stop(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        for pending in self._pending:
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # -- ingestion --------------------------------------------------------------

    def _is_witness(self, candidate: Tuple, outer: Tuple) -> bool:
        if candidate is outer:
            return False  # a tuple never witnesses for itself
        if not (
            outer.ts - self.preceding <= candidate.ts <= outer.ts + self.following
        ):
            return False
        if self.inner_where is not None and not self.inner_where(candidate, outer):
            return False
        return True

    def _on_inner(self, tup: Tuple) -> None:
        self._history.append(tup)
        # New inner tuples may resolve pending outer tuples.
        still_pending: list[_Pending] = []
        for pending in self._pending:
            if not pending.resolved and self._is_witness(tup, pending.outer):
                pending.resolved = True
                if pending.timer is not None:
                    pending.timer.cancel()
                if self.negate:
                    self.suppressed += 1
                else:
                    self._emit(pending.outer, tup.ts)
            else:
                still_pending.append(pending)
        self._pending = still_pending
        if self._same_stream:
            self._on_outer(tup)

    def _on_outer(self, tup: Tuple) -> None:
        if self.outer_where is not None and not self.outer_where(tup):
            return
        witness = next(
            (
                candidate
                for candidate in self._history.tuples_between(
                    tup.ts - self.preceding, tup.ts
                )
                if self._is_witness(candidate, tup)
            ),
            None,
        )
        if witness is not None:
            if self.negate:
                self.suppressed += 1
            else:
                self._emit(tup, tup.ts)
            return
        if self.following == 0:
            # Decision point is now.
            if self.negate:
                self._emit(tup, tup.ts)
            else:
                self.suppressed += 1
            return
        pending = _Pending(tup, tup.ts + self.following)
        self._pending.append(pending)
        self._arm(pending)

    def _arm(self, pending: _Pending) -> None:
        """Schedule the decision-point timer for *pending*.

        A method (not an inline closure) so a checkpoint restore can
        re-arm restored pending entries through the same path.
        """
        pending.timer = self.engine.clock.schedule(
            pending.deadline,
            lambda fired_at, pending=pending: self._resolve_deadline(
                pending, fired_at
            ),
        )

    def _resolve_deadline(self, pending: _Pending, fired_at: float) -> None:
        if pending.resolved:
            return
        pending.resolved = True
        try:
            self._pending.remove(pending)
        except ValueError:
            pass
        if self.negate:
            self._emit(pending.outer, fired_at)
        else:
            self.suppressed += 1

    def _emit(self, outer: Tuple, decided_at: float) -> None:
        self.emitted += 1
        self.results.append((outer, decided_at))
        if self._on_result is not None:
            self._on_result(outer, decided_at)

    def __repr__(self) -> str:
        kind = "NOT EXISTS" if self.negate else "EXISTS"
        return (
            f"SymmetricExistsOperator({kind}, "
            f"[{self.preceding:g}s PRECEDING AND {self.following:g}s FOLLOWING], "
            f"emitted={self.emitted}, suppressed={self.suppressed}, "
            f"pending={self.pending_count})"
        )
