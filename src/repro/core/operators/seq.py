"""The SEQ operator (paper section 3.1.1) for star-free argument lists.

``SEQ(E1, ..., En)`` is true on tuples t1 < t2 < ... < tn drawn from the
argument streams (ordering on (timestamp, arrival) — "the tuple from E2 has
a timestamp after the tuple from E1").  Which of the time-ordered
combinations actually become events is governed by the Tuple Pairing Mode:

* UNRESTRICTED — all combinations (the default; equivalent to the n-way
  join of the paper's footnote 3).
* RECENT — backward-greedy: the arriving last-stream tuple matches the most
  recent qualifying tuple on stream n-1, that one the most recent qualifying
  tuple on stream n-2, and so on.  At most one event per arrival.
* CHRONICLE — forward-greedy from the earliest qualifying tuples; matched
  tuples are consumed and never reused.
* CONSECUTIVE — the match must be adjacent on the joint tuple history of the
  participating streams; any interloper resets the automaton.

History retention is mode-specific (the paper's optimization argument):
RECENT purges dominated tuples, CHRONICLE consumes on match, CONSECUTIVE
holds at most n-1 tuples, UNRESTRICTED retains everything the window admits.
The ``state_size`` property exposes held-tuple counts for the state-size
ablation benchmark.

Star-sequence patterns are handled by
:class:`repro.core.operators.star.StarSeqOperator`; use
:func:`repro.core.operators.make_sequence_operator` to pick automatically.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator, Mapping, Sequence

from ...dsms.engine import Engine
from ...dsms.errors import EslSemanticError
from ...dsms.tuples import Tuple
from .base import (
    Guard,
    MatchCallback,
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqMatch,
    validate_args,
)
from .guards import CompiledGuard


class _Partition:
    """Per-partition-key operator state."""

    __slots__ = ("histories", "run")

    def __init__(self, n: int) -> None:
        # Positions 0..n-2 keep history; the last position's tuples are only
        # ever anchors and are matched immediately on arrival.
        self.histories: list[list[Tuple]] = [[] for _ in range(n - 1)]
        # CONSECUTIVE-mode current run on the joint history.
        self.run: list[Tuple] = []

    def state_size(self) -> int:
        return sum(len(history) for history in self.histories) + len(self.run)


class SeqOperator:
    """Runtime instance of a star-free SEQ operator.

    Args:
        engine: the owning :class:`~repro.dsms.engine.Engine`.
        args: the argument list (no starred entries).
        mode: tuple pairing mode.
        window: optional :class:`OperatorWindow`.
        guard: optional predicate consulted while extending candidate
            bindings (the "qualifying conditions"); receives the partial
            alias->tuple mapping and must be monotone (False never becomes
            True by binding more aliases).
        partition_by: optional key function applied to every tuple; state is
            kept per key.  The standard RFID idiom is partitioning by tag id,
            which turns the WHERE equality conditions of paper Example 6
            into hash routing.
        on_match: callback receiving each :class:`SeqMatch`.
    """

    def __init__(
        self,
        engine: Engine,
        args: Sequence[SeqArg],
        mode: PairingMode = PairingMode.UNRESTRICTED,
        window: OperatorWindow | None = None,
        guard: Guard | None = None,
        partition_by: Callable[[Tuple], Any] | None = None,
        on_match: MatchCallback | None = None,
        store_matches: bool = True,
    ) -> None:
        validate_args(args)
        if any(arg.starred for arg in args):
            raise EslSemanticError(
                "SeqOperator handles star-free patterns; use StarSeqOperator"
            )
        self.engine = engine
        self.args = tuple(args)
        self.mode = mode
        self.window = window
        self.guard = guard
        self.partition_by = partition_by
        # A CompiledGuard splits into per-argument admission checks (run once
        # at arrival, before a tuple enters history) and cross-alias pairing
        # terms (run while pairing).  A plain callable guard runs whole at
        # pairing time, as before.
        if isinstance(guard, CompiledGuard):
            self._admission = guard.admit
            self._pairing: Guard | None = (
                None if guard.cross_free else guard.pairing
            )
        else:
            self._admission = None
            self._pairing = guard
        # Purging is sound when nothing can disqualify a tuple at pairing
        # time: no guard at all, or a compiled guard whose conjuncts were all
        # decided at admission (cross_free).
        self._purge_on_admit = (
            mode is PairingMode.RECENT and self._pairing is None
        )
        self.matches: list[SeqMatch] = []
        self.store_matches = store_matches
        self._on_match = on_match
        self._partitions: dict[Any, _Partition] = {}
        # Next virtual time at which the cross-partition eviction sweep
        # runs (see _sweep); -inf so the first windowed arrival sweeps.
        self._sweep_due = float("-inf")
        self._unsubscribes: list[Callable[[], None]] = []
        self.tuples_seen = 0
        self.matches_emitted = 0

        # positions per stream: stream name -> [arg indexes].  Keyed both by
        # the lowercased name and by the stream's registered casing, so the
        # per-tuple dispatch in _on_tuple can look up tup.stream directly
        # without a .lower() call.
        self._positions: dict[str, list[int]] = {}
        for index, arg in enumerate(self.args):
            self._positions.setdefault(arg.stream.lower(), []).append(index)
        compiled_exec = bool(getattr(engine, "compile_expressions", False))
        for stream_name in list(self._positions):
            stream = engine.streams.get(stream_name)
            positions = self._positions[stream_name]
            self._positions.setdefault(stream.name, positions)
            callback: Callable[[Tuple], None] = self._on_tuple
            if (
                compiled_exec
                and mode is not PairingMode.CONSECUTIVE
                and len(positions) == 1
            ):
                callback = self._dispatch_for(stream.name, positions[0])
            self._unsubscribes.append(stream.subscribe(callback))

    # -- public ----------------------------------------------------------

    def stop(self) -> None:
        """Detach from all source streams."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    @property
    def state_size(self) -> int:
        """Total tuples currently held across all partitions."""
        return sum(p.state_size() for p in self._partitions.values())

    def drain_matches(self) -> list[SeqMatch]:
        """Return and clear accumulated matches (pull-style consumption)."""
        out = self.matches
        self.matches = []
        return out

    # -- ingestion --------------------------------------------------------

    def _dispatch_for(self, name: str, index: int) -> Callable[[Tuple], None]:
        """Specialize the per-tuple dispatch for a single-position stream.

        Part of compiled execution: when one stream feeds exactly one
        argument position (the common case — Example 6 wires four streams
        to four positions), every decision the generic :meth:`_on_tuple`
        makes per tuple (position lookup, admission presence, last-position
        test, eviction probe) is made once here, at wiring time, leaving a
        straight-line closure on the hot path.  Pass-through tuples carrying
        another stream's name fall back to the generic routing.
        """
        generic = self._on_tuple
        admission = self._admission
        alias = self.args[index].alias
        is_last = index == len(self.args) - 1
        partition_by = self.partition_by
        partitions = self._partitions
        n_args = len(self.args)
        window = self.window
        attempt = self._attempt_matches
        admit = self._admit
        evict = self._evict

        if admission is None:

            def on_tuple(tup: Tuple) -> None:
                if tup.stream is not name:
                    generic(tup)
                    return
                self.tuples_seen += 1
                key = partition_by(tup) if partition_by is not None else None
                partition = partitions.get(key)
                if partition is None:
                    partition = partitions[key] = _Partition(n_args)
                if is_last:
                    attempt(partition, tup)
                else:
                    admit(partition, tup, index)
                if window is not None:
                    evict(partition, tup.ts)

        else:

            def on_tuple(tup: Tuple) -> None:  # noqa: F811
                if tup.stream is not name:
                    generic(tup)
                    return
                self.tuples_seen += 1
                if not admission(alias, tup):
                    return  # fails its own single-alias conjuncts: never matches
                key = partition_by(tup) if partition_by is not None else None
                partition = partitions.get(key)
                if partition is None:
                    partition = partitions[key] = _Partition(n_args)
                if is_last:
                    attempt(partition, tup)
                else:
                    admit(partition, tup, index)
                if window is not None:
                    evict(partition, tup.ts)

        return on_tuple

    def _partition_for(self, tup: Tuple) -> _Partition:
        key = self.partition_by(tup) if self.partition_by else None
        partition = self._partitions.get(key)
        if partition is None:
            partition = _Partition(len(self.args))
            self._partitions[key] = partition
        return partition

    def _on_tuple(self, tup: Tuple) -> None:
        self.tuples_seen += 1
        positions = self._positions.get(tup.stream) or self._positions.get(
            tup.stream.lower()
        )
        if not positions:
            return
        partition = self._partition_for(tup)
        if self.mode is PairingMode.CONSECUTIVE:
            self._consecutive_step(partition, tup, positions)
            return
        last = len(self.args) - 1
        admit = self._admission
        for index in positions:
            if admit is not None and not admit(self.args[index].alias, tup):
                continue  # fails its own single-alias conjuncts: never matches
            if index == last:
                self._attempt_matches(partition, tup)
            else:
                self._admit(partition, tup, index)
        self._evict(partition, tup.ts)

    def _admit(self, partition: _Partition, tup: Tuple, index: int) -> None:
        partition.histories[index].append(tup)
        if self._purge_on_admit:
            self._purge_dominated(partition, index)

    # -- history management ----------------------------------------------

    def _evict(self, partition: _Partition, now: float) -> None:
        """Window-based eviction of history that can never match again.

        Only positions actually bounded by the window are evicted: a
        PRECEDING window anchored at argument k bounds positions 0..k; a
        FOLLOWING window anchored at k bounds positions k..n-1.
        """
        if self.window is None:
            return
        self._evict_windowed(partition, self.window.horizon(now))
        if now >= self._sweep_due:
            self._sweep(now)

    def _evict_windowed(self, partition: _Partition, horizon: float) -> None:
        if self.window.direction == "preceding":
            bounded = range(0, min(self.window.anchor, len(partition.histories)))
        else:
            bounded = range(self.window.anchor, len(partition.histories))
        for index in bounded:
            history = partition.histories[index]
            keep_from = 0
            while keep_from < len(history) and history[keep_from].ts < horizon:
                keep_from += 1
            if keep_from:
                del history[:keep_from]

    def _sweep(self, now: float) -> None:
        """Cross-partition eviction sweep, amortized to once per window width.

        Per-arrival eviction only touches the arriving tuple's partition, so
        in UNRESTRICTED mode a partition that stops receiving tuples (a tag
        that left the facility) would otherwise retain its windowed history
        forever.  Sweeping every ``window.duration`` of virtual time evicts
        expired history in *every* partition and drops partitions that
        become empty, bounding total state by the tuples inside one window
        plus at most one window width of slack — at O(1) amortized cost per
        arrival.
        """
        horizon = self.window.horizon(now)
        dead = []
        for key, partition in self._partitions.items():
            self._evict_windowed(partition, horizon)
            if not partition.run and all(
                not history for history in partition.histories
            ):
                dead.append(key)
        for key in dead:
            del self._partitions[key]
        self._sweep_due = now + self.window.duration

    def _purge_dominated(self, partition: _Partition, index: int) -> None:
        """RECENT-mode aggressive purge (paper: "earlier tuples are
        constantly replaced by later tuples").

        A tuple u at position i is dominated — provably never selected by the
        backward-greedy pass — when a newer tuple u' exists at position i and
        no position-i+1 tuple lies in the half-open interval (u, u'].  Only
        sound without a guard (a guard could disqualify u' where u passes),
        so the caller skips this when a guard is present.
        """
        history = partition.histories[index]
        if len(history) < 2:
            return
        if index + 1 < len(partition.histories):
            anchors = partition.histories[index + 1]
        else:
            anchors = []  # successors are last-position arrivals: always newest
        kept: list[Tuple] = []
        for position, candidate in enumerate(history):
            if position == len(history) - 1:
                kept.append(candidate)  # the newest is always live
                continue
            successor = history[position + 1]
            lo = bisect_right(anchors, candidate)
            needed = lo < len(anchors) and anchors[lo] <= successor
            if needed:
                kept.append(candidate)
        if len(kept) != len(history):
            partition.histories[index][:] = kept

    # -- match generation --------------------------------------------------

    def _guard_ok(self, bindings: Mapping[str, Tuple]) -> bool:
        """Pairing-time check.

        For a compiled guard this is the cross-alias residue only — every
        tuple in *bindings* already passed its admission conjuncts in
        :meth:`_on_tuple`.  For a plain guard it is the whole predicate.
        """
        pairing = self._pairing
        return pairing is None or bool(pairing(bindings))

    def _full_guard_ok(self, bindings: Mapping[str, Tuple]) -> bool:
        """The complete guard, admission conjuncts included.

        CONSECUTIVE runs bypass :meth:`_admit`, so their extension checks
        must not assume admission already happened.
        """
        return self.guard is None or bool(self.guard(bindings))

    def _window_ok(self, chain: Sequence[Tuple]) -> bool:
        if self.window is None:
            return True
        return self.window.admits(chain, chain[self.window.anchor])

    def _attempt_matches(self, partition: _Partition, anchor: Tuple) -> None:
        if self.mode is PairingMode.UNRESTRICTED:
            for chain in self._enumerate_chains(partition, anchor):
                self._emit(chain)
        elif self.mode is PairingMode.RECENT:
            chain = self._recent_chain(partition, anchor)
            if chain is not None:
                self._emit(chain)
        elif self.mode is PairingMode.CHRONICLE:
            chain = self._chronicle_chain(partition, anchor)
            if chain is not None:
                self._consume(partition, chain)
                self._emit(chain)

    def _enumerate_chains(
        self, partition: _Partition, anchor: Tuple
    ) -> Iterator[list[Tuple]]:
        """All time-ordered combinations ending at *anchor* (UNRESTRICTED)."""
        n = len(self.args)
        chain: list[Tuple | None] = [None] * n
        chain[n - 1] = anchor
        bindings: dict[str, Tuple] = {self.args[n - 1].alias: anchor}
        if not self._guard_ok(bindings):
            return

        def extend(index: int, upper: Tuple) -> Iterator[list[Tuple]]:
            history = partition.histories[index]
            cut = bisect_left(history, upper)
            for candidate in history[:cut]:
                bindings[self.args[index].alias] = candidate
                if not self._guard_ok(bindings):
                    del bindings[self.args[index].alias]
                    continue
                chain[index] = candidate
                if index == 0:
                    full = [tup for tup in chain]  # all bound now
                    if self._window_ok(full):  # type: ignore[arg-type]
                        yield list(full)  # type: ignore[arg-type]
                else:
                    yield from extend(index - 1, candidate)
                del bindings[self.args[index].alias]
                chain[index] = None

        yield from extend(n - 2, anchor)

    def _recent_chain(
        self, partition: _Partition, anchor: Tuple
    ) -> list[Tuple] | None:
        """Backward-greedy most-recent-qualifying selection."""
        n = len(self.args)
        if self._pairing is None:
            # No pairing-time predicate: the most recent earlier tuple at
            # each level is qualifying by construction, so the backward
            # pass needs no binding bookkeeping or guard probes at all.
            chain = [anchor]
            upper = anchor
            for index in range(n - 2, -1, -1):
                history = partition.histories[index]
                cut = bisect_left(history, upper)
                if not cut:
                    return None
                upper = history[cut - 1]
                chain.append(upper)
            chain.reverse()
            return chain if self._window_ok(chain) else None
        bindings: dict[str, Tuple] = {self.args[n - 1].alias: anchor}
        if not self._guard_ok(bindings):
            return None
        chain = [anchor]
        upper = anchor
        for index in range(n - 2, -1, -1):
            history = partition.histories[index]
            cut = bisect_left(history, upper)
            chosen: Tuple | None = None
            for candidate in reversed(history[:cut]):
                bindings[self.args[index].alias] = candidate
                if self._guard_ok(bindings):
                    chosen = candidate
                    break
                del bindings[self.args[index].alias]
            if chosen is None:
                return None
            chain.append(chosen)
            upper = chosen
        chain.reverse()
        return chain if self._window_ok(chain) else None

    def _chronicle_chain(
        self, partition: _Partition, anchor: Tuple
    ) -> list[Tuple] | None:
        """Forward-greedy earliest-qualifying selection.

        Choosing the earliest qualifying tuple at each level is complete:
        any feasible assignment can be shifted earlier level by level without
        violating the ordering, so greedy failure means no chain exists.
        """
        n = len(self.args)
        bindings: dict[str, Tuple] = {self.args[n - 1].alias: anchor}
        if not self._guard_ok(bindings):
            return None
        chain: list[Tuple] = []
        lower: Tuple | None = None
        for index in range(n - 1):
            history = partition.histories[index]
            start = 0 if lower is None else bisect_right(history, lower)
            chosen: Tuple | None = None
            for candidate in history[start:]:
                if candidate >= anchor:
                    break
                bindings[self.args[index].alias] = candidate
                if self._guard_ok(bindings):
                    chosen = candidate
                    break
                del bindings[self.args[index].alias]
            if chosen is None:
                return None
            chain.append(chosen)
            lower = chosen
        chain.append(anchor)
        return chain if self._window_ok(chain) else None

    def _consume(self, partition: _Partition, chain: Sequence[Tuple]) -> None:
        """CHRONICLE: matched tuples never participate again."""
        for index, tup in enumerate(chain[:-1]):
            history = partition.histories[index]
            slot = bisect_left(history, tup)
            if slot < len(history) and history[slot] is tup:
                del history[slot]

    # -- CONSECUTIVE automaton ---------------------------------------------

    def _consecutive_step(
        self, partition: _Partition, tup: Tuple, positions: Sequence[int]
    ) -> None:
        run = partition.run
        expected = len(run)
        arg = self.args[expected] if expected < len(self.args) else None
        extends = (
            arg is not None
            and arg.stream.lower() == tup.stream.lower()
            and self._full_guard_ok(
                {self.args[i].alias: t for i, t in enumerate(run)}
                | {arg.alias: tup}
            )
        )
        if extends:
            run.append(tup)
            if len(run) == len(self.args):
                chain = list(run)
                partition.run = []
                if self._window_ok(chain):
                    self._emit(chain)
            return
        # Interruption: purge history (paper: "tuple history can be safely
        # purged each time a sequence is finished or interrupted"), then see
        # whether the interloper can start a fresh run.
        partition.run = []
        first = self.args[0]
        if first.stream.lower() == tup.stream.lower() and self._full_guard_ok(
            {first.alias: tup}
        ):
            partition.run = [tup]

    # -- emission -----------------------------------------------------------

    def _emit(self, chain: Sequence[Tuple]) -> None:
        bindings = {
            arg.alias: tup for arg, tup in zip(self.args, chain)
        }
        match = SeqMatch(self.args, bindings, chain[-1].ts)
        self.matches_emitted += 1
        if self.store_matches:
            self.matches.append(match)
        if self._on_match is not None:
            self._on_match(match)

    def __repr__(self) -> str:
        inner = ", ".join(arg.alias for arg in self.args)
        return (
            f"SeqOperator(SEQ({inner}) MODE {self.mode.value.upper()}, "
            f"{self.matches_emitted} matches, state={self.state_size})"
        )
