"""The SEQ operator (paper section 3.1.1) for star-free argument lists.

``SEQ(E1, ..., En)`` is true on tuples t1 < t2 < ... < tn drawn from the
argument streams (ordering on (timestamp, arrival) — "the tuple from E2 has
a timestamp after the tuple from E1").  Which of the time-ordered
combinations actually become events is governed by the Tuple Pairing Mode:

* UNRESTRICTED — all combinations (the default; equivalent to the n-way
  join of the paper's footnote 3).
* RECENT — backward-greedy: the arriving last-stream tuple matches the most
  recent qualifying tuple on stream n-1, that one the most recent qualifying
  tuple on stream n-2, and so on.  At most one event per arrival.
* CHRONICLE — forward-greedy from the earliest qualifying tuples; matched
  tuples are consumed and never reused.
* CONSECUTIVE — the match must be adjacent on the joint tuple history of the
  participating streams; any interloper resets the automaton.

History retention is mode-specific (the paper's optimization argument):
RECENT purges dominated tuples, CHRONICLE consumes on match, CONSECUTIVE
holds at most n-1 tuples, UNRESTRICTED retains everything the window admits.
The ``state_size`` property exposes held-tuple counts for the state-size
ablation benchmark.

Indexed state (``Engine(indexed_state=True)``, the default) layers three
incremental indexes over the same semantics:

* **Predecessor cuts** (SASE-style Active Instance Stacks): each tuple
  admitted at stage i caches, at admission time, how many stage-(i-1)
  tuples precede it.  Because the clock is monotone and tuples order by
  ``(ts, seq)``, admission order equals tuple order, so the cached count is
  exactly the ``bisect_left`` boundary the enumerator would recompute —
  match enumeration walks stored cuts instead of re-bisecting per
  extension.  Front evictions are absorbed by a per-stage ``removed``
  counter (live cut = stored cut - removed, clamped at 0); the scheme is
  only used by modes whose histories shrink from the front only
  (UNRESTRICTED always, RECENT when a pairing guard disables the
  dominated-tuple purge).
* **Bisected eviction**: histories are timestamp-ordered, so the window
  eviction boundary comes from ``bisect`` instead of a left scan.
* **A lazy expiry heap**: instead of sweeping every partition once per
  window width, a min-heap of ``(next_expiry, partition_key)`` records when
  each partition's oldest bounded tuple leaves the window.  A clock tick
  pops only the partitions that actually have expirable state, so per-tick
  work no longer grows with the number of idle partitions.  A self-re-arming
  clock timer drives the heap even when no tuple arrives.

``indexed_state=False`` keeps the original enumeration/sweep as a reference
path (mirroring ``compile_expressions``); both paths emit identical match
sequences — see ``tests/test_indexed_state.py``.

Star-sequence patterns are handled by
:class:`repro.core.operators.star.StarSeqOperator`; use
:func:`repro.core.operators.make_sequence_operator` to pick automatically.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from math import inf, nextafter
from operator import attrgetter
from typing import Any, Callable, Iterator, Mapping, Sequence

from ...dsms.checkpoint import pack_tuple, tuple_unpacker
from ...dsms.columns import ColumnStore
from ...dsms.engine import Engine
from ...dsms.errors import CheckpointError, EslSemanticError
from ...dsms.tuples import Tuple
from .base import (
    Guard,
    MatchCallback,
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqMatch,
    validate_args,
)
from .guards import CompiledGuard

_TS = attrgetter("ts")

# Candidate slices shorter than this skip the pairing mask: a mask call
# has fixed costs (anchor packing, ctypes marshalling or closure setup)
# that only amortize over enough rows.
_MASK_MIN = 8


class _Partition:
    """Per-partition-key operator state."""

    __slots__ = ("key", "histories", "run", "cuts", "removed", "mirrors")

    def __init__(
        self,
        n: int,
        key: Any = None,
        track_cuts: bool = False,
        mirror_specs: Sequence[Any] | None = None,
    ) -> None:
        self.key = key
        # Positions 0..n-2 keep history; the last position's tuples are only
        # ever anchors and are matched immediately on arrival.
        self.histories: list[list[Tuple]] = [[] for _ in range(n - 1)]
        # CONSECUTIVE-mode current run on the joint history.
        self.run: list[Tuple] = []
        # Predecessor cuts, parallel to histories (cuts[0] stays empty: stage
        # 0 has no predecessor), and per-stage front-eviction totals.
        self.cuts: list[list[int]] | None = (
            [[] for _ in range(n - 1)] if track_cuts else None
        )
        self.removed: list[int] = [0] * (n - 1)
        # Columnar mirrors of the histories, parallel to them, maintained
        # only for stages the operator's pairing-mask plan covers (None
        # entries are plan-less stages).  Derived state: never
        # checkpointed, rebuilt from histories on restore.
        self.mirrors: list[ColumnStore | None] | None = (
            None
            if mirror_specs is None
            else [
                None if spec is None else ColumnStore(spec[0], spec[1])
                for spec in mirror_specs
            ]
        )

    def state_size(self) -> int:
        return sum(len(history) for history in self.histories) + len(self.run)


class SeqOperator:
    """Runtime instance of a star-free SEQ operator.

    Args:
        engine: the owning :class:`~repro.dsms.engine.Engine`.  Its
            ``indexed_state`` flag selects between the incremental-index
            state layer and the reference enumeration (see module docstring).
        args: the argument list (no starred entries).
        mode: tuple pairing mode.
        window: optional :class:`OperatorWindow`.
        guard: optional predicate consulted while extending candidate
            bindings (the "qualifying conditions"); receives the partial
            alias->tuple mapping and must be monotone (False never becomes
            True by binding more aliases).
        partition_by: optional key function applied to every tuple; state is
            kept per key.  The standard RFID idiom is partitioning by tag id,
            which turns the WHERE equality conditions of paper Example 6
            into hash routing.
        on_match: callback receiving each :class:`SeqMatch`.
    """

    def __init__(
        self,
        engine: Engine,
        args: Sequence[SeqArg],
        mode: PairingMode = PairingMode.UNRESTRICTED,
        window: OperatorWindow | None = None,
        guard: Guard | None = None,
        partition_by: Callable[[Tuple], Any] | None = None,
        on_match: MatchCallback | None = None,
        store_matches: bool = True,
    ) -> None:
        validate_args(args)
        if any(arg.starred for arg in args):
            raise EslSemanticError(
                "SeqOperator handles star-free patterns; use StarSeqOperator"
            )
        self.engine = engine
        self.args = tuple(args)
        self.mode = mode
        self.window = window
        self.guard = guard
        self.partition_by = partition_by
        # A CompiledGuard splits into per-argument admission checks (run once
        # at arrival, before a tuple enters history) and cross-alias pairing
        # terms (run while pairing).  A plain callable guard runs whole at
        # pairing time, as before.
        if isinstance(guard, CompiledGuard):
            self._admission = guard.admit
            # pairing_prebound skips the per-call key-lowering dictcomp;
            # in exchange every enumeration path keys its scratch bindings
            # dict by _bind_keys (lower-cased aliases) below.
            self._pairing: Guard | None = (
                None if guard.cross_free else guard.pairing_prebound
            )
            self._bind_keys = tuple(arg.alias.lower() for arg in self.args)
        else:
            self._admission = None
            self._pairing = guard
            self._bind_keys = tuple(arg.alias for arg in self.args)
        # Purging is sound when nothing can disqualify a tuple at pairing
        # time: no guard at all, or a compiled guard whose conjuncts were all
        # decided at admission (cross_free).
        self._purge_on_admit = (
            mode is PairingMode.RECENT and self._pairing is None
        )
        self.indexed_state = bool(getattr(engine, "indexed_state", True))
        # Stored predecessor cuts stay exact only under front-only history
        # shrinkage; CHRONICLE consumes mid-list and the RECENT purge deletes
        # mid-list, so those keep per-enumeration bisect instead.
        self._use_cuts = self.indexed_state and (
            mode is PairingMode.UNRESTRICTED
            or (mode is PairingMode.RECENT and not self._purge_on_admit)
        )
        # With a PRECEDING window anchored at the last argument (the
        # canonical OVER [.. PRECEDING last] shape), per-arrival eviction
        # prunes every history to exactly the window's lower bound before
        # the match attempt, so enumerated chains satisfy the window by
        # construction and the per-chain check can be skipped.
        self._window_exact = (
            window is not None
            and window.direction == "preceding"
            and window.anchor == len(args) - 1
        )
        self.matches: list[SeqMatch] = []
        self.store_matches = store_matches
        self._on_match = on_match
        self._partitions: dict[Any, _Partition] = {}
        # Next virtual time at which the reference path's cross-partition
        # eviction sweep runs (see _sweep); -inf so the first windowed
        # arrival sweeps.  The indexed path replaces the sweep with the
        # expiry heap below.
        self._sweep_due = float("-inf")
        # Lazy expiry heap: (deadline, partition_key), at most one *valid*
        # entry per key, recorded in _heap_deadlines.  Entries whose dict
        # deadline no longer matches are stale and skipped on pop.
        self._expiry_heap: list[tuple[float, Any]] = []
        self._heap_deadlines: dict[Any, float] = {}
        self._expiry_timer = None
        # Incremental held-tuple counter backing state_size, plus its
        # high-water mark for the operator_state benchmark.
        self._held = 0
        self.peak_state_size = 0
        # Partitions examined by expiry work (sweep walks or heap pops):
        # the benchmark's proof that a tick no longer touches idle state.
        # max_tick_touches is the worst single tick — the reference sweep
        # pays O(partitions) on one arrival, the heap spreads pops out.
        self.sweep_touches = 0
        self.max_tick_touches = 0
        self._unsubscribes: list[Callable[[], None]] = []
        self.tuples_seen = 0
        self.matches_emitted = 0

        # positions per stream: stream name -> [arg indexes].  Keyed both by
        # the lowercased name and by the stream's registered casing, so the
        # per-tuple dispatch in _on_tuple can look up tup.stream directly
        # without a .lower() call.
        self._positions: dict[str, list[int]] = {}
        for index, arg in enumerate(self.args):
            self._positions.setdefault(arg.stream.lower(), []).append(index)
        compiled_exec = bool(getattr(engine, "compile_expressions", False))
        native_state = getattr(engine, "native_state", None)
        allow_vector = bool(getattr(engine, "vectorized_admission", False))
        vector_exec = compiled_exec and (
            allow_vector or native_state is not None
        )
        # Pairing-mask plan: one candidate-slice mask per chain stage.
        # Stage *index* scans histories[index] while aliases index+1..n-1
        # are already bound (SEQ enumerates right to left), so each
        # stage's decidable cross conjuncts lower against that bound set
        # — to a two-operand native kernel over the mirror's packed
        # buffers and/or vectorized closures over its object columns.
        # Masks only prune: every survivor is still re-checked by the
        # scalar pairing call, so over-admission is safe and
        # under-admission impossible by construction.  Mirrors are
        # maintained only for stages that actually got a mask, and only
        # under front-only history shrinkage (_use_cuts modes).
        self._pairing_plan: list | None = None
        self._mirror_specs: list | None = None
        if (
            isinstance(guard, CompiledGuard)
            and self._pairing is not None
            and compiled_exec
            and self._use_cuts
            and (allow_vector or native_state is not None)
        ):
            plan: list = []
            specs: list = []
            for index in range(len(self.args) - 1):
                stream = engine.streams.get(self.args[index].stream.lower())
                schema = getattr(stream, "schema", None)
                stage = None
                if schema is not None:
                    stage = guard.vector_pairing(
                        self.args[index].alias,
                        schema,
                        [arg.alias for arg in self.args[index + 1:]],
                        native_state=native_state,
                        allow_vector=allow_vector,
                    )
                if stage is None:
                    plan.append(None)
                    specs.append(None)
                else:
                    mask_fn, packed_slots = stage
                    plan.append(mask_fn)
                    specs.append((schema, packed_slots or None))
            if any(entry is not None for entry in plan):
                self._pairing_plan = plan
                self._mirror_specs = specs
        for stream_name in list(self._positions):
            stream = engine.streams.get(stream_name)
            positions = self._positions[stream_name]
            self._positions.setdefault(stream.name, positions)
            callback: Callable[[Tuple], None] = self._on_tuple
            if (
                compiled_exec
                and mode is not PairingMode.CONSECUTIVE
                and len(positions) == 1
            ):
                callback = self._dispatch_for(stream.name, positions[0])
                if vector_exec and self._admission is not None:
                    # Columnar ingestion hook: the guard's single-alias
                    # conjuncts for this argument, lowered over column
                    # arrays.  Rows the mask rejects are exactly rows
                    # admission would drop, so the stream may skip
                    # materializing them; survivors are re-checked by the
                    # scalar admission call in the dispatch closure.
                    hook = self.guard.vector_admission(
                        self.args[positions[0]].alias,
                        stream.schema,
                        native_state=native_state,
                        allow_vector=allow_vector,
                    )
                    if hook is not None:
                        callback.vector_admission = hook
            self._unsubscribes.append(stream.subscribe(callback))
        register = getattr(engine, "register_checkpointable", None)
        if register is not None:
            register(self)

    # -- checkpointing ----------------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Capture all mutable operator state as plain picklable data.

        Derived configuration (``_use_cuts``, ``_window_exact``, stream
        positions, dispatch closures) is rebuilt identically when the
        operator is re-wired from its query, so only partition contents,
        expiry bookkeeping, and counters cross the checkpoint.
        """
        if self.matches:
            raise CheckpointError(
                "SeqOperator with undrained stored matches cannot be "
                "checkpointed; drain_matches() first or wire on_match"
            )
        partitions = []
        for key, partition in self._partitions.items():
            partitions.append((
                key,
                [
                    [pack_tuple(t) for t in history]
                    for history in partition.histories
                ],
                [pack_tuple(t) for t in partition.run],
                None if partition.cuts is None
                else [list(stage) for stage in partition.cuts],
                list(partition.removed),
            ))
        return {
            "partitions": partitions,
            "sweep_due": self._sweep_due,
            "expiry_heap": list(self._expiry_heap),
            "heap_deadlines": dict(self._heap_deadlines),
            "held": self._held,
            "peak_state_size": self.peak_state_size,
            "sweep_touches": self.sweep_touches,
            "max_tick_touches": self.max_tick_touches,
            "tuples_seen": self.tuples_seen,
            "matches_emitted": self.matches_emitted,
        }

    def restore_state(self, blob: Mapping[str, Any]) -> None:
        """Apply a :meth:`snapshot_state` blob to this (fresh) operator."""
        unpack = tuple_unpacker(self.engine)
        n = len(self.args)
        # Mutate the existing dict: the per-stream dispatch closures built by
        # _dispatch_for captured it by reference, so rebinding the attribute
        # would leave the hot path feeding a stale, empty mapping.
        self._partitions.clear()
        for key, histories, run, cuts, removed in blob["partitions"]:
            partition = _Partition(
                n, key, track_cuts=False, mirror_specs=self._mirror_specs
            )
            partition.histories = [
                [unpack(p) for p in history] for history in histories
            ]
            partition.run = [unpack(p) for p in run]
            partition.cuts = (
                None if cuts is None else [list(stage) for stage in cuts]
            )
            partition.removed = list(removed)
            # Mirrors are derived state: re-mirror the restored histories
            # rather than checkpointing column copies of the same tuples.
            if partition.mirrors is not None:
                for store, history in zip(
                    partition.mirrors, partition.histories
                ):
                    if store is not None:
                        store.rebuild(history)
            self._partitions[key] = partition
        self._sweep_due = blob["sweep_due"]
        self._expiry_heap = [tuple(entry) for entry in blob["expiry_heap"]]
        heapq.heapify(self._expiry_heap)
        self._heap_deadlines = dict(blob["heap_deadlines"])
        self._held = blob["held"]
        self.peak_state_size = blob["peak_state_size"]
        self.sweep_touches = blob["sweep_touches"]
        self.max_tick_touches = blob["max_tick_touches"]
        self.tuples_seen = blob["tuples_seen"]
        self.matches_emitted = blob["matches_emitted"]
        if self._expiry_timer is not None:
            self._expiry_timer.cancel()
            self._expiry_timer = None
        self._ensure_timer()

    # -- public ----------------------------------------------------------

    def stop(self) -> None:
        """Detach from all source streams."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        if self._expiry_timer is not None:
            self._expiry_timer.cancel()
            self._expiry_timer = None

    @property
    def state_size(self) -> int:
        """Total tuples currently held across all partitions (O(1))."""
        return self._held

    def drain_matches(self) -> list[SeqMatch]:
        """Return and clear accumulated matches (pull-style consumption)."""
        out = self.matches
        self.matches = []
        return out

    # -- ingestion --------------------------------------------------------

    def _dispatch_for(self, name: str, index: int) -> Callable[[Tuple], None]:
        """Specialize the per-tuple dispatch for a single-position stream.

        Part of compiled execution: when one stream feeds exactly one
        argument position (the common case — Example 6 wires four streams
        to four positions), every decision the generic :meth:`_on_tuple`
        makes per tuple (position lookup, admission presence, last-position
        test, eviction probe) is made once here, at wiring time, leaving a
        straight-line closure on the hot path.  Pass-through tuples carrying
        another stream's name fall back to the generic routing.
        """
        generic = self._on_tuple
        admission = self._admission
        alias = self.args[index].alias
        is_last = index == len(self.args) - 1
        partition_by = self.partition_by
        partitions = self._partitions
        n_args = len(self.args)
        window = self.window
        attempt = self._attempt_matches
        admit = self._admit
        tick = self._tick
        evict = self._evict_partition
        track_cuts = self._use_cuts
        mirror_specs = self._mirror_specs
        after = (
            self._after_arrival
            if self.indexed_state and window is not None
            else None
        )

        if admission is None:

            def on_tuple(tup: Tuple) -> None:
                if tup.stream is not name:
                    generic(tup)
                    return
                self.tuples_seen += 1
                if window is not None:
                    tick(tup.ts)
                key = partition_by(tup) if partition_by is not None else None
                partition = partitions.get(key)
                if partition is None:
                    partition = partitions[key] = _Partition(
                        n_args, key, track_cuts, mirror_specs
                    )
                if window is not None:
                    evict(partition, tup.ts)
                if is_last:
                    attempt(partition, tup)
                else:
                    admit(partition, tup, index)
                if after is not None:
                    after(partition, tup.ts)

        else:

            def on_tuple(tup: Tuple) -> None:  # noqa: F811
                if tup.stream is not name:
                    generic(tup)
                    return
                self.tuples_seen += 1
                if not admission(alias, tup):
                    return  # fails its own single-alias conjuncts: never matches
                if window is not None:
                    tick(tup.ts)
                key = partition_by(tup) if partition_by is not None else None
                partition = partitions.get(key)
                if partition is None:
                    partition = partitions[key] = _Partition(
                        n_args, key, track_cuts, mirror_specs
                    )
                if window is not None:
                    evict(partition, tup.ts)
                if is_last:
                    attempt(partition, tup)
                else:
                    admit(partition, tup, index)
                if after is not None:
                    after(partition, tup.ts)

        return on_tuple

    def _partition_for(self, tup: Tuple) -> _Partition:
        key = self.partition_by(tup) if self.partition_by else None
        partition = self._partitions.get(key)
        if partition is None:
            partition = _Partition(
                len(self.args), key, self._use_cuts, self._mirror_specs
            )
            self._partitions[key] = partition
        return partition

    def _on_tuple(self, tup: Tuple) -> None:
        self.tuples_seen += 1
        positions = self._positions.get(tup.stream) or self._positions.get(
            tup.stream.lower()
        )
        if not positions:
            return
        if self.mode is PairingMode.CONSECUTIVE:
            partition = self._partition_for(tup)
            self._consecutive_step(partition, tup, positions)
            return
        windowed = self.window is not None
        if windowed:
            # Expire state *before* the attempt: the match enumeration then
            # always sees histories pruned to horizon(now), which makes the
            # cross-partition expiry timing (sweep vs. heap) unobservable.
            self._tick(tup.ts)
        partition = self._partition_for(tup)
        if windowed:
            self._evict_partition(partition, tup.ts)
        last = len(self.args) - 1
        admit = self._admission
        for index in positions:
            if admit is not None and not admit(self.args[index].alias, tup):
                continue  # fails its own single-alias conjuncts: never matches
            if index == last:
                self._attempt_matches(partition, tup)
            else:
                self._admit(partition, tup, index)
        if windowed and self.indexed_state:
            self._after_arrival(partition, tup.ts)

    def _admit(self, partition: _Partition, tup: Tuple, index: int) -> None:
        partition.histories[index].append(tup)
        mirrors = partition.mirrors
        if mirrors is not None:
            store = mirrors[index]
            if store is not None:
                store.append(tup)
        if self._use_cuts and index:
            # Cache the predecessor boundary at admission.  The clock is
            # monotone and tuples order by (ts, seq), so everything already
            # admitted at stage index-1 precedes *tup* — except when the
            # very same tuple was admitted there in this delivery (one
            # stream feeding both positions), which the trailing check
            # excludes.  Stored as an absolute admission count; front
            # evictions are subtracted via partition.removed at read time.
            prev = partition.histories[index - 1]
            cut = len(prev)
            if cut and not (prev[cut - 1] < tup):
                cut -= 1
            partition.cuts[index].append(partition.removed[index - 1] + cut)
        self._held += 1
        if self._held > self.peak_state_size:
            self.peak_state_size = self._held
        if self._purge_on_admit:
            self._purge_dominated(partition, index)

    # -- history management ----------------------------------------------

    def _evict_partition(self, partition: _Partition, now: float) -> None:
        """Window-based eviction of one partition's dead history."""
        horizon = self.window.horizon(now)
        if self.indexed_state:
            self._evict_windowed_indexed(partition, horizon)
        else:
            self._evict_windowed(partition, horizon)

    def _tick(self, now: float) -> None:
        """Cross-partition expiry work due at *now*.

        Reference path: the amortized all-partition sweep.  Indexed path:
        pop due entries off the expiry heap, touching only partitions whose
        oldest bounded tuple actually left the window.
        """
        if not self.indexed_state:
            if now >= self._sweep_due:
                self._sweep(now)
            return
        heap = self._expiry_heap
        if heap and heap[0][0] <= now:
            self._process_expiry(now)

    def _bounded_range(self, partition: _Partition) -> range:
        """History positions the window actually bounds: a PRECEDING window
        anchored at argument k bounds positions 0..k-1; a FOLLOWING window
        anchored at k bounds positions k..n-2."""
        if self.window.direction == "preceding":
            return range(0, min(self.window.anchor, len(partition.histories)))
        return range(self.window.anchor, len(partition.histories))

    def _evict_windowed(self, partition: _Partition, horizon: float) -> None:
        for index in self._bounded_range(partition):
            history = partition.histories[index]
            keep_from = 0
            while keep_from < len(history) and history[keep_from].ts < horizon:
                keep_from += 1
            if keep_from:
                del history[:keep_from]
                self._held -= keep_from

    def _evict_windowed_indexed(
        self, partition: _Partition, horizon: float
    ) -> None:
        """Bisected eviction, keeping the cut/removed bookkeeping in sync."""
        use_cuts = self._use_cuts
        histories = partition.histories
        removed = partition.removed
        mirrors = partition.mirrors
        for index in self._bounded_range(partition):
            history = histories[index]
            if not history or history[0].ts >= horizon:
                continue
            keep = bisect_left(history, horizon, key=_TS)
            del history[:keep]
            self._held -= keep
            if mirrors is not None:
                store = mirrors[index]
                if store is not None:
                    store.evict_front(keep)
            if use_cuts:
                removed[index] += keep
                if index:
                    del partition.cuts[index][:keep]

    def _sweep(self, now: float) -> None:
        """Cross-partition eviction sweep, amortized to once per window width
        (the ``indexed_state=False`` reference path).

        Per-arrival eviction only touches the arriving tuple's partition, so
        in UNRESTRICTED mode a partition that stops receiving tuples (a tag
        that left the facility) would otherwise retain its windowed history
        forever.  Sweeping every ``window.duration`` of virtual time evicts
        expired history in *every* partition and drops partitions that
        become empty, bounding total state by the tuples inside one window
        plus at most one window width of slack — at O(1) amortized cost per
        arrival, but with O(partitions) latency spikes on the arrival that
        pays for the sweep.  The indexed path's expiry heap removes those
        spikes.
        """
        horizon = self.window.horizon(now)
        dead = []
        touched = len(self._partitions)
        self.sweep_touches += touched
        if touched > self.max_tick_touches:
            self.max_tick_touches = touched
        for key, partition in self._partitions.items():
            self._evict_windowed(partition, horizon)
            if not partition.run and all(
                not history for history in partition.histories
            ):
                dead.append(key)
        for key in dead:
            del self._partitions[key]
        self._sweep_due = now + self.window.duration

    # -- expiry heap (indexed path) ---------------------------------------

    def _oldest_bounded(self, partition: _Partition) -> float | None:
        """Timestamp of the oldest tuple the window can still expire."""
        oldest = None
        for index in self._bounded_range(partition):
            history = partition.histories[index]
            if history and (oldest is None or history[0].ts < oldest):
                oldest = history[0].ts
        return oldest

    def _schedule_expiry(
        self, partition: _Partition, key: Any, now: float
    ) -> None:
        """Queue the partition's next expiry, or drop it when fully empty.

        Evictions only raise a partition's oldest bounded timestamp, so an
        already-queued (necessarily earlier) deadline stays conservative —
        the pop re-checks and re-queues.  Hence at most one valid heap entry
        per key, and admissions never need to move a deadline earlier.
        """
        oldest = self._oldest_bounded(partition)
        if oldest is not None:
            deadline = oldest + self.window.duration
            if deadline <= now:
                # The survivor sits exactly on the window edge (eviction is
                # strict): re-queue just past *now* so the pop loop always
                # makes progress.
                deadline = nextafter(now, inf)
            self._heap_deadlines[key] = deadline
            heapq.heappush(self._expiry_heap, (deadline, key))
        elif not partition.run and all(
            not history for history in partition.histories
        ):
            del self._partitions[key]

    def _after_arrival(self, partition: _Partition, now: float) -> None:
        """Post-arrival heap upkeep for the arriving tuple's partition."""
        if partition.key in self._heap_deadlines:
            return
        self._schedule_expiry(partition, partition.key, now)
        self._ensure_timer()

    def _process_expiry(self, now: float) -> None:
        """Pop and expire every partition whose deadline has passed."""
        heap = self._expiry_heap
        deadlines = self._heap_deadlines
        partitions = self._partitions
        horizon = self.window.horizon(now)
        touched = 0
        while heap and heap[0][0] <= now:
            deadline, key = heapq.heappop(heap)
            if deadlines.get(key) != deadline:
                continue  # stale: superseded by a later reschedule
            del deadlines[key]
            partition = partitions.get(key)
            if partition is None:
                continue
            touched += 1
            self._evict_windowed_indexed(partition, horizon)
            self._schedule_expiry(partition, key, now)
        self.sweep_touches += touched
        if touched > self.max_tick_touches:
            self.max_tick_touches = touched
        self._ensure_timer()

    def _ensure_timer(self) -> None:
        """Keep a clock timer armed at the heap minimum, so idle partitions
        expire on heartbeats even when no tuple ever arrives again.  Marked
        periodic: eviction emits nothing, so end-of-stream drains cancel it
        instead of firing it forever."""
        heap = self._expiry_heap
        if not heap:
            return
        head = heap[0][0]
        timer = self._expiry_timer
        if timer is not None and not timer.cancelled and timer.deadline <= head:
            return
        if timer is not None:
            timer.cancel()
        self._expiry_timer = self.engine.clock.schedule(
            head, self._on_expiry_timer, periodic=True
        )

    def _on_expiry_timer(self, fired_at: float) -> None:
        self._expiry_timer = None
        if self._expiry_heap:
            self._process_expiry(self.engine.clock.now)

    def _purge_dominated(self, partition: _Partition, index: int) -> None:
        """RECENT-mode aggressive purge (paper: "earlier tuples are
        constantly replaced by later tuples").

        A tuple u at position i is dominated — provably never selected by the
        backward-greedy pass — when a newer tuple u' exists at position i and
        no position-i+1 tuple lies in the half-open interval (u, u'].  Only
        sound without a guard (a guard could disqualify u' where u passes),
        so the caller skips this when a guard is present.
        """
        history = partition.histories[index]
        if len(history) < 2:
            return
        if index + 1 < len(partition.histories):
            anchors = partition.histories[index + 1]
        else:
            anchors = []  # successors are last-position arrivals: always newest
        kept: list[Tuple] = []
        for position, candidate in enumerate(history):
            if position == len(history) - 1:
                kept.append(candidate)  # the newest is always live
                continue
            successor = history[position + 1]
            lo = bisect_right(anchors, candidate)
            needed = lo < len(anchors) and anchors[lo] <= successor
            if needed:
                kept.append(candidate)
        if len(kept) != len(history):
            self._held -= len(history) - len(kept)
            partition.histories[index][:] = kept

    # -- match generation --------------------------------------------------

    def _guard_ok(self, bindings: Mapping[str, Tuple]) -> bool:
        """Pairing-time check.

        For a compiled guard this is the cross-alias residue only — every
        tuple in *bindings* already passed its admission conjuncts in
        :meth:`_on_tuple`.  For a plain guard it is the whole predicate.
        """
        pairing = self._pairing
        return pairing is None or bool(pairing(bindings))

    def _full_guard_ok(self, bindings: Mapping[str, Tuple]) -> bool:
        """The complete guard, admission conjuncts included.

        CONSECUTIVE runs bypass :meth:`_admit`, so their extension checks
        must not assume admission already happened.
        """
        return self.guard is None or bool(self.guard(bindings))

    def _window_ok(self, chain: Sequence[Tuple]) -> bool:
        if self.window is None:
            return True
        return self.window.admits(chain, chain[self.window.anchor])

    def _attempt_matches(self, partition: _Partition, anchor: Tuple) -> None:
        if self.mode is PairingMode.UNRESTRICTED:
            if self._use_cuts:
                self._attempt_indexed(partition, anchor)
            else:
                for chain in self._enumerate_chains(partition, anchor):
                    self._emit(chain)
        elif self.mode is PairingMode.RECENT:
            if self._use_cuts:
                chain = self._recent_chain_indexed(partition, anchor)
            else:
                chain = self._recent_chain(partition, anchor)
            if chain is not None:
                self._emit(chain)
        elif self.mode is PairingMode.CHRONICLE:
            chain = self._chronicle_chain(partition, anchor)
            if chain is not None:
                self._consume(partition, chain)
                self._emit(chain)

    def _anchor_cut(self, history: list[Tuple], anchor: Tuple) -> int:
        """Live predecessor boundary for the arriving anchor: the whole
        history precedes it, minus the anchor itself when the same tuple was
        admitted to the previous stage in this delivery."""
        cut = len(history)
        if cut and not (history[cut - 1] < anchor):
            cut -= 1
        return cut

    def _attempt_indexed(self, partition: _Partition, anchor: Tuple) -> None:
        """UNRESTRICTED enumeration over stored predecessor cuts.

        Emits the same chains in the same order as
        :meth:`_enumerate_chains`: forward over each stage's viable prefix,
        recursing toward stage 0 — but each stage's prefix bound is a cached
        integer (stored cut minus front evictions) instead of a fresh
        bisect, and the canonical-window check is skipped entirely when
        eviction already guarantees it (``_window_exact``).
        """
        n = len(self.args)
        histories = partition.histories
        top = self._anchor_cut(histories[n - 2], anchor)
        if not top:
            return
        cuts = partition.cuts
        removed = partition.removed
        chain: list[Tuple | None] = [None] * n
        chain[n - 1] = anchor
        pairing = self._pairing
        emit = self._emit
        window_check = None if self._window_exact else self._window_ok

        if pairing is None:

            def extend(index: int, hi: int) -> None:
                history = histories[index]
                if index == 0:
                    if window_check is None:
                        for pos in range(hi):
                            chain[0] = history[pos]
                            emit(chain)
                    else:
                        for pos in range(hi):
                            chain[0] = history[pos]
                            if window_check(chain):
                                emit(chain)
                    return
                stage_cuts = cuts[index]
                gone = removed[index - 1]
                for pos in range(hi):
                    nxt = stage_cuts[pos] - gone
                    if nxt > 0:
                        chain[index] = history[pos]
                        extend(index - 1, nxt)

            extend(n - 2, top)
            return

        bind_keys = self._bind_keys
        bindings: dict[str, Tuple] = {bind_keys[n - 1]: anchor}
        if not pairing(bindings):
            return
        plan = self._pairing_plan
        mirrors = partition.mirrors

        def extend(index: int, hi: int) -> None:  # noqa: F811
            history = histories[index]
            alias = bind_keys[index]
            # Stage mask over the viable prefix [0, hi): the mirror's
            # columns line up with the history positionally, so the mask
            # is evaluated on exactly the rows the loop would visit.
            # Consulted only when the mirror is trusted (schema-clean and
            # length-consistent) and the slice is long enough to amortize
            # the call; False rows are guaranteed scalar-rejected, True
            # rows still take the pairing() re-check below.
            mask = None
            if plan is not None and hi >= _MASK_MIN:
                stage = plan[index]
                if stage is not None:
                    store = mirrors[index] if mirrors is not None else None
                    if (
                        store is not None
                        and store.ok
                        and len(store.timestamps) == len(history)
                    ):
                        mask = stage(bindings, store, hi)
            if index:
                stage_cuts = cuts[index]
                gone = removed[index - 1]
            for pos in range(hi):
                if mask is not None and not mask[pos]:
                    continue
                candidate = history[pos]
                bindings[alias] = candidate
                if not pairing(bindings):
                    del bindings[alias]
                    continue
                chain[index] = candidate
                if index == 0:
                    if window_check is None or window_check(chain):
                        emit(chain)
                else:
                    nxt = stage_cuts[pos] - gone
                    if nxt > 0:
                        extend(index - 1, nxt)
                del bindings[alias]

        extend(n - 2, top)

    def _recent_chain_indexed(
        self, partition: _Partition, anchor: Tuple
    ) -> list[Tuple] | None:
        """Backward-greedy selection over stored predecessor cuts.

        Only reached with a pairing guard (guard-free RECENT purges
        mid-list and keeps the reference bisect path): scan each stage's
        viable prefix newest-first for the first qualifying tuple, then hop
        to that tuple's cached cut.
        """
        n = len(self.args)
        pairing = self._pairing
        bind_keys = self._bind_keys
        bindings: dict[str, Tuple] = {bind_keys[n - 1]: anchor}
        if not pairing(bindings):
            return None
        histories = partition.histories
        cuts = partition.cuts
        removed = partition.removed
        plan = self._pairing_plan
        mirrors = partition.mirrors
        cut = self._anchor_cut(histories[n - 2], anchor)
        chain = [anchor]
        for index in range(n - 2, -1, -1):
            history = histories[index]
            alias = bind_keys[index]
            # Same prefix-mask discipline as _attempt_indexed: the
            # newest-first scan skips rows the mask already rejected and
            # re-checks the rest with the scalar pairing call.
            mask = None
            if plan is not None and cut >= _MASK_MIN:
                stage = plan[index]
                if stage is not None:
                    store = mirrors[index] if mirrors is not None else None
                    if (
                        store is not None
                        and store.ok
                        and len(store.timestamps) == len(history)
                    ):
                        mask = stage(bindings, store, cut)
            chosen_pos = -1
            for pos in range(cut - 1, -1, -1):
                if mask is not None and not mask[pos]:
                    continue
                bindings[alias] = history[pos]
                if pairing(bindings):
                    chosen_pos = pos
                    break
                del bindings[alias]
            if chosen_pos < 0:
                return None
            chain.append(history[chosen_pos])
            if index:
                cut = cuts[index][chosen_pos] - removed[index - 1]
                if cut < 0:
                    cut = 0
        chain.reverse()
        if self._window_exact:
            return chain
        return chain if self._window_ok(chain) else None

    def _enumerate_chains(
        self, partition: _Partition, anchor: Tuple
    ) -> Iterator[list[Tuple]]:
        """All time-ordered combinations ending at *anchor* (UNRESTRICTED)."""
        n = len(self.args)
        bind_keys = self._bind_keys
        chain: list[Tuple | None] = [None] * n
        chain[n - 1] = anchor
        bindings: dict[str, Tuple] = {bind_keys[n - 1]: anchor}
        if not self._guard_ok(bindings):
            return

        def extend(index: int, upper: Tuple) -> Iterator[list[Tuple]]:
            history = partition.histories[index]
            cut = bisect_left(history, upper)
            for candidate in history[:cut]:
                bindings[bind_keys[index]] = candidate
                if not self._guard_ok(bindings):
                    del bindings[bind_keys[index]]
                    continue
                chain[index] = candidate
                if index == 0:
                    full = [tup for tup in chain]  # all bound now
                    if self._window_ok(full):  # type: ignore[arg-type]
                        yield list(full)  # type: ignore[arg-type]
                else:
                    yield from extend(index - 1, candidate)
                del bindings[bind_keys[index]]
                chain[index] = None

        yield from extend(n - 2, anchor)

    def _recent_chain(
        self, partition: _Partition, anchor: Tuple
    ) -> list[Tuple] | None:
        """Backward-greedy most-recent-qualifying selection."""
        n = len(self.args)
        if self._pairing is None:
            # No pairing-time predicate: the most recent earlier tuple at
            # each level is qualifying by construction, so the backward
            # pass needs no binding bookkeeping or guard probes at all.
            chain = [anchor]
            upper = anchor
            for index in range(n - 2, -1, -1):
                history = partition.histories[index]
                cut = bisect_left(history, upper)
                if not cut:
                    return None
                upper = history[cut - 1]
                chain.append(upper)
            chain.reverse()
            return chain if self._window_ok(chain) else None
        bind_keys = self._bind_keys
        bindings: dict[str, Tuple] = {bind_keys[n - 1]: anchor}
        if not self._guard_ok(bindings):
            return None
        chain = [anchor]
        upper = anchor
        for index in range(n - 2, -1, -1):
            history = partition.histories[index]
            cut = bisect_left(history, upper)
            chosen: Tuple | None = None
            for candidate in reversed(history[:cut]):
                bindings[bind_keys[index]] = candidate
                if self._guard_ok(bindings):
                    chosen = candidate
                    break
                del bindings[bind_keys[index]]
            if chosen is None:
                return None
            chain.append(chosen)
            upper = chosen
        chain.reverse()
        return chain if self._window_ok(chain) else None

    def _chronicle_chain(
        self, partition: _Partition, anchor: Tuple
    ) -> list[Tuple] | None:
        """Forward-greedy earliest-qualifying selection.

        Choosing the earliest qualifying tuple at each level is complete:
        any feasible assignment can be shifted earlier level by level without
        violating the ordering, so greedy failure means no chain exists.
        """
        n = len(self.args)
        bind_keys = self._bind_keys
        bindings: dict[str, Tuple] = {bind_keys[n - 1]: anchor}
        if not self._guard_ok(bindings):
            return None
        chain: list[Tuple] = []
        lower: Tuple | None = None
        for index in range(n - 1):
            history = partition.histories[index]
            start = 0 if lower is None else bisect_right(history, lower)
            chosen: Tuple | None = None
            for candidate in history[start:]:
                if candidate >= anchor:
                    break
                bindings[bind_keys[index]] = candidate
                if self._guard_ok(bindings):
                    chosen = candidate
                    break
                del bindings[bind_keys[index]]
            if chosen is None:
                return None
            chain.append(chosen)
            lower = chosen
        chain.append(anchor)
        return chain if self._window_ok(chain) else None

    def _consume(self, partition: _Partition, chain: Sequence[Tuple]) -> None:
        """CHRONICLE: matched tuples never participate again."""
        for index, tup in enumerate(chain[:-1]):
            history = partition.histories[index]
            slot = bisect_left(history, tup)
            if slot < len(history) and history[slot] is tup:
                del history[slot]
                self._held -= 1

    # -- CONSECUTIVE automaton ---------------------------------------------

    def _consecutive_step(
        self, partition: _Partition, tup: Tuple, positions: Sequence[int]
    ) -> None:
        run = partition.run
        expected = len(run)
        arg = self.args[expected] if expected < len(self.args) else None
        extends = (
            arg is not None
            and arg.stream.lower() == tup.stream.lower()
            and self._full_guard_ok(
                {self.args[i].alias: t for i, t in enumerate(run)}
                | {arg.alias: tup}
            )
        )
        if extends:
            run.append(tup)
            self._held += 1
            if self._held > self.peak_state_size:
                self.peak_state_size = self._held
            if len(run) == len(self.args):
                chain = list(run)
                partition.run = []
                self._held -= len(chain)
                if self._window_ok(chain):
                    self._emit(chain)
            return
        # Interruption: purge history (paper: "tuple history can be safely
        # purged each time a sequence is finished or interrupted"), then see
        # whether the interloper can start a fresh run.
        self._held -= len(run)
        partition.run = []
        first = self.args[0]
        if first.stream.lower() == tup.stream.lower() and self._full_guard_ok(
            {first.alias: tup}
        ):
            partition.run = [tup]
            self._held += 1
            if self._held > self.peak_state_size:
                self.peak_state_size = self._held

    # -- emission -----------------------------------------------------------

    def _emit(self, chain: Sequence[Tuple]) -> None:
        bindings = {
            arg.alias: tup for arg, tup in zip(self.args, chain)
        }
        # The dictcomp above is this match's private copy (enumeration may
        # reuse the chain list), so hand it over without another copy.
        match = SeqMatch.owned(self.args, bindings, chain[-1].ts)
        self.matches_emitted += 1
        if self.store_matches:
            self.matches.append(match)
        if self._on_match is not None:
            self._on_match(match)

    def __repr__(self) -> str:
        inner = ", ".join(arg.alias for arg in self.args)
        return (
            f"SeqOperator(SEQ({inner}) MODE {self.mode.value.upper()}, "
            f"{self.matches_emitted} matches, state={self.state_size})"
        )
