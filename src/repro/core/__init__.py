"""The paper's core contribution: ESL-EV temporal operators and language."""

from . import language, operators

__all__ = ["language", "operators"]
