"""Physical plan introspection utilities."""

from .plan import PlanNode, describe_handle, describe_registry
from .optimizer import optimization_report

__all__ = [
    "PlanNode",
    "describe_handle",
    "describe_registry",
    "optimization_report",
]
