"""Physical plan introspection utilities."""

from .plan import PlanNode, describe_handle
from .optimizer import optimization_report

__all__ = ["PlanNode", "describe_handle", "optimization_report"]
