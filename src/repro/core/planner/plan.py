"""EXPLAIN-style physical plan descriptions.

The compiler wires queries directly into operator runtimes; this module
reconstructs a human-readable plan tree from a compiled
:class:`~repro.dsms.engine.QueryHandle` so users can see *how* their query
executes — which temporal operator, which pairing mode, what was hoisted.
"""

from __future__ import annotations

from typing import Any, Iterator

from ...dsms.engine import QueryHandle


class PlanNode:
    """One node of a plan description tree."""

    def __init__(self, kind: str, detail: str = "",
                 children: list["PlanNode"] | None = None) -> None:
        self.kind = kind
        self.detail = detail
        self.children = children or []

    def add(self, child: "PlanNode") -> "PlanNode":
        self.children.append(child)
        return child

    def lines(self, depth: int = 0) -> Iterator[str]:
        prefix = "  " * depth
        label = f"{prefix}{self.kind}"
        if self.detail:
            label += f" [{self.detail}]"
        yield label
        for child in self.children:
            yield from child.lines(depth + 1)

    def render(self) -> str:
        return "\n".join(self.lines())

    def __repr__(self) -> str:
        return f"PlanNode({self.kind}, {len(self.children)} children)"


def describe_handle(handle: QueryHandle) -> PlanNode:
    """Build a plan description for a compiled query handle."""
    target = handle.output.name if handle.output is not None else "<collector>"
    root = PlanNode("ContinuousQuery", f"{handle.name} -> {target}")
    operator: Any = getattr(handle, "operator", None)
    if operator is None:
        root.add(PlanNode("Pipeline", "filter/aggregate/table evaluation"))
        return root
    kind = type(operator).__name__
    details: list[str] = []
    if kind == "SymmetricExistsOperator":
        word = "NOT EXISTS" if operator.negate else "EXISTS"
        details.append(
            f"{word} [{operator.preceding:g}s PRECEDING AND "
            f"{operator.following:g}s FOLLOWING]"
        )
    mode = getattr(operator, "mode", None)
    if mode is not None:
        details.append(f"mode={mode.value}")
    window = getattr(operator, "window", None)
    if window is not None:
        details.append(
            f"window={window.duration:g}s {window.direction} "
            f"anchor#{window.anchor}"
        )
    if getattr(operator, "partition_by", None) is not None:
        details.append("partitioned")
    if getattr(operator, "guard", None) is not None:
        details.append("guarded")
    node = root.add(PlanNode(kind, ", ".join(details)))
    for arg in getattr(operator, "args", ()):
        star = "*" if arg.starred else ""
        gap = ""
        if arg.max_gap is not None:
            gap = f" gap<={arg.max_gap:g}s"
        elif arg.gap_check is not None:
            gap = " gap-checked"
        node.add(PlanNode("StreamArg", f"{arg.stream}{star} AS {arg.alias}{gap}"))
    return root


def describe_registry(registry: Any) -> PlanNode:
    """Build a plan description for shared multi-query execution.

    Accepts a :class:`~repro.dsms.registry.QueryRegistry` or a
    :class:`~repro.dsms.multi_engine.MultiQueryEngine` (shared mode).
    The tree shows the per-stream routers — which fields are
    predicate-indexed, how many plans route residually — and each shared
    plan's operator subtree with its subscriber fan-out count.
    """
    inner = getattr(registry, "registry", registry)
    if inner is None or not hasattr(inner, "routers"):
        return PlanNode("MultiQuery", "naive per-engine execution (unshared)")
    root = PlanNode(
        "MultiQuery",
        f"{inner.subscription_count} subscriptions over "
        f"{inner.plan_count} shared plans",
    )
    for router in inner.routers():
        info = router.describe()
        node = root.add(PlanNode("StreamRouter", f"stream={info['stream']}"))
        for field in info["fields"]:
            node.add(PlanNode(
                "PredicateIndex",
                f"field={field['field']}, eq_keys={field['eq_keys']}, "
                f"ranges={field['range_entries']}",
            ))
        if info["residual"]:
            node.add(PlanNode("ResidualScan", f"{info['residual']} plans"))
    for plan in inner.plans():
        subtree = describe_handle(plan.handle)
        subtree.detail += f", fan-out x{len(plan.sinks)}"
        root.add(subtree)
    return root
