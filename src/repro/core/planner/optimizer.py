"""Query-rewrite reporting.

The compiler applies three rewrites the paper motivates (section 3.1.1's
discussion of avoiding "complex predicate conditions"):

1. **partition hoisting** — an all-alias equality chain on a shared field
   shards operator state by that field's value;
2. **gap hoisting** — ``alias.previous`` constraints become star-run
   segmentation checks inside the operator;
3. **guard pushdown** — remaining WHERE conjuncts are evaluated during
   candidate construction instead of after enumeration.

:func:`optimization_report` runs the analyzer on a query and reports which
rewrites would fire — an EXPLAIN for the optimizer, usable without
executing the query.
"""

from __future__ import annotations

from ...dsms.engine import Engine
from ..language.analyzer import analyze
from ..language.ast_nodes import SelectStatement
from ..language.parser import parse_program


def optimization_report(engine: Engine, sql: str) -> dict[str, object]:
    """Analyze *sql* (a single SELECT) and report the planned rewrites.

    Returns a dict with keys: ``kind``, ``temporal_op``, ``mode``,
    ``partition_field``, ``hoisted_gap_constraints``, ``guard_terms``,
    ``exists_subqueries``, ``multi_return``.
    """
    statements = parse_program(sql)
    selects = [s for s in statements if isinstance(s, SelectStatement)]
    if len(selects) != 1:
        raise ValueError("optimization_report expects exactly one SELECT")
    analysis = analyze(selects[0], engine)
    predicate = analysis.temporal or (
        analysis.clevel.predicate if analysis.clevel else None
    )
    return {
        "kind": analysis.kind,
        "temporal_op": predicate.op_name if predicate else None,
        "mode": predicate.mode if predicate else None,
        "partition_field": analysis.partition_field,
        "hoisted_gap_constraints": len(analysis.gap_terms),
        "guard_terms": len(analysis.guard_terms),
        "exists_subqueries": len(analysis.exists_terms),
        "multi_return": analysis.multi_return_alias,
    }
