"""Deterministic fault injection for the sharded pipe transport.

A :class:`FaultPlan` is attached router-side to a
:class:`~repro.dsms.transport.ShardWorkerClient` (it is never pickled
across the pipe) and consulted from the client's send path:

* :meth:`FaultPlan.before_send` may **corrupt** a frame (flip a payload
  byte so the worker's CRC check fails), **drop** it entirely (the
  in-flight slot is kept, so the router observes a hang), or **delay**
  it (sleep before the write).
* :meth:`FaultPlan.after_send` may **kill** the worker process
  (``SIGTERM``, simulating a crash) or **wedge** it (``SIGSTOP``,
  simulating a livelock) once a shard has been sent a given number of
  data frames.

Faults are one-shot: each scheduled fault fires at most once and is
recorded in :attr:`FaultPlan.events` so tests can assert on exactly what
was injected and when.  All triggers are counted in *data frames sent to
that shard* (the client's ``frames_sent`` counter), which is
deterministic for a fixed workload and batch size.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any

__all__ = ["FaultPlan"]


class _Fault:
    __slots__ = ("kind", "shard", "trigger", "arg", "fired")

    def __init__(self, kind: str, shard: int, trigger: int, arg: Any = None):
        self.kind = kind
        self.shard = shard
        self.trigger = trigger
        self.arg = arg
        self.fired = False


class FaultPlan:
    """A schedule of faults to inject into shard-worker transport links."""

    def __init__(self) -> None:
        self._faults: list[_Fault] = []
        self._data_frames: dict[int, int] = {}
        self.events: list[dict[str, Any]] = []

    # -- schedule -----------------------------------------------------------

    def kill_worker(self, shard: int, after_batches: int) -> "FaultPlan":
        """SIGTERM the worker once *after_batches* data frames were sent."""
        self._faults.append(_Fault("kill", shard, after_batches))
        return self

    def wedge_worker(self, shard: int, after_batches: int) -> "FaultPlan":
        """SIGSTOP the worker (it stays alive but makes no progress)."""
        self._faults.append(_Fault("wedge", shard, after_batches))
        return self

    def drop_frame(self, shard: int, frame_index: int) -> "FaultPlan":
        """Silently swallow the *frame_index*-th frame sent to *shard*."""
        self._faults.append(_Fault("drop", shard, frame_index))
        return self

    def corrupt_frame(self, shard: int, frame_index: int) -> "FaultPlan":
        """Flip a payload byte of the *frame_index*-th frame to *shard*."""
        self._faults.append(_Fault("corrupt", shard, frame_index))
        return self

    def delay_frame(
        self, shard: int, frame_index: int, seconds: float
    ) -> "FaultPlan":
        """Sleep *seconds* before writing the *frame_index*-th frame."""
        self._faults.append(_Fault("delay", shard, frame_index, seconds))
        return self

    # -- client-facing hooks ------------------------------------------------

    def before_send(
        self, shard: int, frame_index: int, frame: bytes, n_records: int
    ) -> bytes | None:
        """Called with each outgoing frame; returns the (possibly modified)
        frame, or None to drop it while keeping in-flight accounting."""
        for fault in self._faults:
            if fault.fired or fault.shard != shard:
                continue
            if fault.kind == "drop" and frame_index == fault.trigger:
                fault.fired = True
                self._record("drop", shard, frame_index=frame_index)
                return None
            if fault.kind == "corrupt" and frame_index == fault.trigger:
                fault.fired = True
                self._record("corrupt", shard, frame_index=frame_index)
                if len(frame) > 12:  # flip a byte inside the payload
                    mutated = bytearray(frame)
                    mutated[12] ^= 0xFF
                    return bytes(mutated)
                return frame
            if fault.kind == "delay" and frame_index == fault.trigger:
                fault.fired = True
                self._record(
                    "delay", shard, frame_index=frame_index,
                    seconds=fault.arg,
                )
                time.sleep(float(fault.arg))
        return frame

    def after_send(self, shard: int, n_records: int, process: Any) -> None:
        """Called after each frame write; applies kill/wedge thresholds."""
        if n_records:
            self._data_frames[shard] = self._data_frames.get(shard, 0) + 1
        sent = self._data_frames.get(shard, 0)
        for fault in self._faults:
            if fault.fired or fault.shard != shard:
                continue
            if fault.kind not in ("kill", "wedge"):
                continue
            if sent < fault.trigger:
                continue
            fault.fired = True
            if fault.kind == "kill":
                self._record("kill", shard, after_batches=fault.trigger)
                process.terminate()
            else:
                self._record("wedge", shard, after_batches=fault.trigger)
                pid = getattr(process, "pid", None)
                if pid is not None:
                    os.kill(pid, signal.SIGSTOP)

    # -- bookkeeping --------------------------------------------------------

    def _record(self, kind: str, shard: int, **detail: Any) -> None:
        self.events.append({"kind": kind, "shard": shard, **detail})

    @property
    def pending(self) -> int:
        return sum(1 for fault in self._faults if not fault.fired)

    def __repr__(self) -> str:
        return (
            f"FaultPlan({len(self._faults)} faults, "
            f"{len(self.events)} fired)"
        )
