"""The push-based continuous-query engine.

:class:`Engine` is the top-level object an application creates.  It owns:

* a :class:`~repro.dsms.clock.VirtualClock` (virtual time + timers, giving
  the *Active Expiration* semantics EXCEPTION_SEQ needs),
* the stream and table catalogs,
* the scalar-function (UDF) and aggregate (UDA) registries, and
* every registered continuous query.

Time discipline: pushing a tuple first advances the clock to the tuple's
timestamp — firing any due timers — and only then delivers the tuple.  A
timeout scheduled for time T therefore always fires before a tuple stamped
after T is seen, which makes EXCEPTION_SEQ results deterministic and
replayable.

Typical use::

    engine = Engine()
    engine.create_stream('readings', 'reader_id str, tag_id str, read_time float')
    out = engine.query(ESL_EV_TEXT)          # returns a QueryHandle
    engine.push('readings', {'reader_id': 'r1', 'tag_id': 't7',
                             'read_time': 3.0}, ts=3.0)
    print(out.results)
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .aggregates import Aggregate, AggregateRegistry
from .clock import VirtualClock
from .columns import ColumnBatch
from .errors import EslSemanticError
from .functions import default_functions
from .schema import Schema
from .streams import Stream, StreamRegistry
from .table import Table, TableRegistry
from .tuples import Tuple
from .udf import UdfRegistry


class Collector:
    """A list-backed sink: subscribe it to any stream to capture output."""

    def __init__(self, name: str = "collector") -> None:
        self.name = name
        self.results: list[Tuple] = []
        # Result-row schema when known (set by the compiler for query
        # collectors); lets consumers rebuild Tuples from raw values.
        self.schema: Schema | None = None
        self._unsubscribe: Callable[[], None] | None = None

    def __call__(self, tup: Tuple) -> None:
        self.results.append(tup)

    def attach(self, stream: Stream) -> "Collector":
        self._unsubscribe = stream.subscribe(self)
        return self

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def clear(self) -> None:
        self.results.clear()

    def rows(self) -> list[dict[str, Any]]:
        """Captured tuples as plain dicts."""
        return [tup.as_dict() for tup in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.results)

    def __repr__(self) -> str:
        return f"Collector({self.name!r}, {len(self.results)} tuples)"


class QueryHandle:
    """Handle for a registered continuous query.

    Exposes the query's output (either a named derived stream or an internal
    collector) and a :meth:`stop` method that detaches it from its sources.

    The compiler also attaches routing metadata for sharded execution
    (:mod:`repro.dsms.sharding`): ``source_streams`` — the stream names the
    query reads (None on pure-DDL handles) — and ``partition_field`` — the
    hoisted all-alias equality key of a temporal query, if any.  INSERT INTO
    table queries additionally carry ``sink_table``.
    """

    # Class-level defaults so DDL handles (which skip _compile_select)
    # respond to the same metadata reads.
    partition_field: str | None = None
    source_streams: tuple[str, ...] | None = None
    sink_table = None

    def __init__(
        self,
        engine: "Engine",
        name: str,
        output: Stream | None,
        collector: Collector | None,
        teardown: Sequence[Callable[[], None]] = (),
    ) -> None:
        self.engine = engine
        self.name = name
        self.output = output
        self._collector = collector
        self._teardown = list(teardown)
        self.stopped = False

    @property
    def results(self) -> list[Tuple]:
        """Captured output tuples (only for queries without INSERT INTO)."""
        if self._collector is None:
            raise EslSemanticError(
                f"query {self.name!r} writes to {self.output and self.output.name!r};"
                " subscribe to that stream instead of reading .results"
            )
        return self._collector.results

    def rows(self) -> list[dict[str, Any]]:
        """Captured output as dicts."""
        return [tup.as_dict() for tup in self.results]

    def clear(self) -> None:
        if self._collector is not None:
            self._collector.clear()

    def stop(self) -> None:
        """Detach the query from all its source streams."""
        if self.stopped:
            return
        for teardown in self._teardown:
            teardown()
        self.stopped = True

    def __repr__(self) -> str:
        target = self.output.name if self.output is not None else "<collector>"
        return f"QueryHandle({self.name!r} -> {target})"


class Engine:
    """A self-contained DSMS instance.

    ``compile_expressions`` selects the execution strategy for query
    predicates and select lists: when True (the default) the language
    compiler lowers expression trees to closures
    (:meth:`~repro.dsms.expressions.Expression.compile`); when False every
    evaluation walks the AST.  Both paths are semantically identical — the
    flag exists for ablation benchmarks and as an escape hatch.

    ``indexed_state`` selects the sequence-operator state layer: when True
    (the default) SEQ keeps incremental indexes — cached predecessor cuts,
    bisected window eviction, and a lazy partition-expiry heap (see
    :mod:`repro.core.operators.seq`); when False it uses the reference
    enumeration and the amortized all-partition sweep.  Both paths emit
    identical match sequences.

    ``vectorized_admission`` selects the columnar ingestion strategy for
    :class:`~repro.dsms.columns.ColumnBatch` pushes: when True (the
    default) admission predicates are evaluated over whole column arrays
    (:func:`~repro.dsms.expressions.compile_vector`) and Tuple objects are
    materialized only for rows some subscriber may admit; when False every
    batch row is materialized and checked one tuple at a time — the scalar
    differential reference.  Row-at-a-time pushes are unaffected either
    way, and both paths emit byte-identical outputs.

    ``native_admission`` (default off — it invokes the platform C
    compiler at query registration) adds the top tier of the same mask
    discipline: admission predicates are lowered from the expression IR
    to C kernels (:mod:`repro.dsms.native_codegen`), compiled into a
    content-hash-cached shared object, and evaluated over raw column
    buffers.  Predicates the native tier cannot lower — or every
    predicate, on a host with no C compiler — fall back to the
    vectorized masks, then to the closure path; outputs are
    byte-identical on every tier (native masks may over-admit, never
    under-admit, and survivors are re-checked downstream).  See
    :meth:`execution_tier` for which tier is actually active.
    """

    def __init__(
        self,
        compile_expressions: bool = True,
        indexed_state: bool = True,
        vectorized_admission: bool = True,
        native_admission: bool = False,
    ) -> None:
        self.clock = VirtualClock()
        self.streams = StreamRegistry()
        self.tables = TableRegistry()
        self.functions = UdfRegistry(default_functions())
        self.aggregates = AggregateRegistry()
        self.queries: list[QueryHandle] = []
        self.histories: dict[str, Any] = {}  # stream -> SnapshotView
        self.compile_expressions = compile_expressions
        self.indexed_state = indexed_state
        self.vectorized_admission = vectorized_admission
        self.native_admission = native_admission
        # Per-engine native-tier state: kernel cache handles + counters.
        # Created eagerly (it is cheap — no compiler runs until a query
        # registers a lowerable predicate) so hook builders can count
        # fallbacks even when every predicate stays on a lower tier.
        self.native_state = None
        if native_admission:
            from .native import NativeState

            self.native_state = NativeState()
        self._query_counter = 0
        # Slot consumed by the next _Sink the compiler builds: the
        # multi-query registry parks a fan-out collector here so a
        # registered query's results go to per-subscriber sinks instead
        # of an unbounded list (see make_collector).
        self._pending_collector: Collector | None = None
        # Checkpointable components (operators, window buffers) in compile
        # order.  Engines rebuilt from the same statements register the
        # same components in the same order, which is what lets
        # dsms.checkpoint align a state blob with a fresh engine.
        self.checkpointables: list[Any] = []

    def register_checkpointable(self, component: Any) -> None:
        """Register a component exposing ``snapshot_state``/``restore_state``.

        Called by the query compiler for every stateful operator it
        wires; see :mod:`repro.dsms.checkpoint`.
        """
        self.checkpointables.append(component)

    def make_collector(self, label: str) -> Collector:
        """The collector a compiling query's sink should deliver to.

        Normally a fresh list-backed :class:`Collector`.  When a caller
        (the shared multi-query registry) has parked a pending collector
        on the engine, that instance is consumed instead — a registered
        continuous query must fan answers out to subscriber sinks rather
        than accumulate them forever.
        """
        pending = self._pending_collector
        if pending is not None:
            self._pending_collector = None
            pending.name = label
            return pending
        return Collector(label)

    def execution_tier(self) -> dict[str, Any]:
        """Which predicate-execution tier is requested vs actually active.

        ``requested`` reflects the constructor flags (highest enabled
        tier); ``active`` degrades along the native→vector→closure→
        interpreted fallback chain when the native tier is requested but
        no C compiler is available on this host.  When the native tier
        is on, ``native`` carries its counter snapshot (kernels built,
        cache hits, per-predicate and per-batch fallbacks) and
        ``compiler``/``cache_dir`` say where code comes from and goes.
        """
        if self.native_admission:
            requested = "native"
        elif self.vectorized_admission:
            requested = "vector"
        elif self.compile_expressions:
            requested = "closure"
        else:
            requested = "interpreted"
        active = requested
        info: dict[str, Any] = {"requested": requested}
        if self.native_admission:
            from .native import find_compiler

            compiler = find_compiler()
            if compiler is None:
                if self.vectorized_admission:
                    active = "vector"
                elif self.compile_expressions:
                    active = "closure"
                else:
                    active = "interpreted"
            info["compiler"] = compiler
        if self.native_state is not None:
            info["cache_dir"] = str(self.native_state.cache_dir)
            info["native"] = self.native_state.stats()
        info["active"] = active
        # The pairing hot path rides the same flags and degrades the same
        # way (its masks chain native -> vector and always fall back to
        # the scalar pairing re-check), so its ladder mirrors admission's.
        info["pairing"] = {"requested": requested, "active": active}
        return info

    # -- catalog --------------------------------------------------------

    def create_stream(
        self,
        name: str,
        schema: Schema | str | Iterable[str],
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
    ) -> Stream:
        """Declare a stream (the DDL ``CREATE STREAM`` goes through here)."""
        return self.streams.create(name, schema, allow_out_of_order, reorder_slack)

    def create_table(self, name: str, schema: Schema | str | Iterable[str]) -> Table:
        """Declare a persistent table (``CREATE TABLE``)."""
        return self.tables.create(name, schema)

    def stream(self, name: str) -> Stream:
        return self.streams.get(name)

    def table(self, name: str) -> Table:
        return self.tables.get(name)

    def register_udf(
        self, name: str, fn: Callable[..., Any], strict: bool = True
    ) -> None:
        """Register a user-defined scalar function."""
        self.functions.register(name, fn, strict=strict, replace=True)

    def register_uda(self, name: str, factory: Callable[[], Aggregate]) -> None:
        """Register a user-defined aggregate factory."""
        self.aggregates.register(name, factory)

    # -- time & data ----------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def advance_time(self, ts: float) -> int:
        """Heartbeat: move virtual time forward, firing due timers.

        This is how window expirations are detected on quiet streams
        (the paper's Active Expiration).  Returns the number of timers fired.
        """
        return self.clock.advance(ts)

    def push(
        self,
        stream_name: str,
        values: Mapping[str, Any] | Sequence[Any],
        ts: float,
    ) -> Tuple:
        """Push one tuple: advance the clock to *ts*, then deliver.

        *values* may be a field mapping or a positional sequence.
        """
        stream = self.streams.get(stream_name)
        self.clock.advance(ts)
        if isinstance(values, Mapping):
            return stream.push_dict(values, ts)
        return stream.push_row(values, ts)

    def push_tuple(self, stream_name: str, tup: Tuple) -> None:
        """Push an already-built tuple."""
        stream = self.streams.get(stream_name)
        self.clock.advance(tup.ts)
        stream.push(tup)

    def push_batch(
        self,
        stream_name: str,
        batch: Iterable[tuple[Mapping[str, Any] | Sequence[Any], float]],
    ) -> int:
        """Push many ``(values, ts)`` records to one stream.

        Equivalent to calling :meth:`push` per record — timers due at or
        before each record's timestamp still fire before that record is
        delivered, so EXCEPTION_SEQ active expiration sees the identical
        interleaving — but the stream lookup happens once and clock
        advancement skips the timer loop whenever nothing is due.

        *batch* may also be a :class:`~repro.dsms.columns.ColumnBatch`,
        which routes through :meth:`push_columns`.
        """
        if isinstance(batch, ColumnBatch):
            return self.push_columns(stream_name, batch)
        stream = self.streams.get(stream_name)
        advance = self.clock.advance_if_due
        ingest = stream.batch_ingester()
        count = 0
        for values, ts in batch:
            advance(ts)
            ingest(values, ts)
            count += 1
        return count

    def push_columns(self, stream_name: str, batch: ColumnBatch) -> int:
        """Push a :class:`~repro.dsms.columns.ColumnBatch` to one stream.

        Output-identical to :meth:`push_batch` over the batch's rows (the
        clock advances to every row's timestamp in order, firing due
        timers before that row is delivered), but with
        ``vectorized_admission`` enabled the subscribers' admission
        predicates run once per column batch and only surviving rows are
        materialized into Tuples.
        """
        stream = self.streams.get(stream_name)
        return stream.push_columns(
            batch,
            self.clock.advance_if_due,
            self.vectorized_admission or self.native_admission,
        )

    def run_trace(
        self, trace: Iterable[tuple[str, Mapping[str, Any] | Sequence[Any], float]]
    ) -> int:
        """Feed a whole trace of ``(stream, values, ts)`` records in order.

        Returns the number of tuples pushed.  Workload generators in
        :mod:`repro.rfid` produce traces in this shape.  Per-record
        semantics match :meth:`push` exactly (timers first, then the
        tuple); stream handles are cached and the clock fast-path skips
        the timer loop when no deadline is due.

        Two-element items ``(stream, ColumnBatch)`` are accepted
        alongside scalar records and route through :meth:`push_columns`,
        so a trace may interleave columnar and row-at-a-time sections.
        """
        ingesters: dict[str, Callable[[Any, float], Tuple]] = {}
        get = self.streams.get
        advance = self.clock.advance_if_due
        count = 0
        for record in trace:
            if len(record) == 2:
                stream_name, batch = record
                count += self.push_columns(stream_name, batch)
                continue
            stream_name, values, ts = record
            ingest = ingesters.get(stream_name)
            if ingest is None:
                ingest = ingesters[stream_name] = get(stream_name).batch_ingester()
            advance(ts)
            ingest(values, ts)
            count += 1
        return count

    def flush(self) -> int:
        """End-of-stream: release reorder buffers and fire remaining timers."""
        for stream in self.streams:
            stream.flush()
        return self.clock.drain()

    # -- queries --------------------------------------------------------

    def query(self, text: str, name: str | None = None) -> QueryHandle:
        """Parse, compile, and register an ESL-EV continuous query.

        Returns a :class:`QueryHandle`.  DDL statements (CREATE STREAM /
        TABLE / AGGREGATE) are executed immediately and return a handle with
        no output.  Multiple ``;``-separated statements are allowed; the
        handle of the last one is returned.
        """
        # Imported lazily: the language package depends on dsms, not vice versa.
        from ..core.language.compiler import compile_program

        self._query_counter += 1
        label = name or f"q{self._query_counter}"
        return compile_program(self, text, label)

    def register_query(self, handle: QueryHandle) -> QueryHandle:
        self.queries.append(handle)
        return handle

    # -- ad-hoc snapshot queries ------------------------------------------

    def enable_history(self, stream_name: str, duration: float | None = None):
        """Retain recent tuples of a stream for ad-hoc snapshot queries.

        The paper's section 2.1 motivates ad-hoc queries ("the current
        location of the patient") answered from live stream state.  A
        history is a :class:`~repro.dsms.snapshot.SnapshotView` with the
        given retention (None = unbounded); once enabled,
        :meth:`snapshot` can run one-shot SELECTs over that stream.
        Returns the view (also usable directly).
        """
        from .snapshot import SnapshotView

        # Canonicalize through the registry so the history key always
        # matches the stream's registered name, however the caller cased it.
        stream = self.streams.get(stream_name)
        key = stream.name.lower()
        view = self.histories.get(key)
        if view is None:
            view = SnapshotView(stream, duration, self.aggregates)
            self.histories[key] = view
        return view

    def history(self, stream_name: str):
        """The enabled history view for a stream (KeyError if not enabled).

        Lookup is case-insensitive and accepts any casing of the stream
        name, matching :meth:`enable_history` and :meth:`snapshot`.
        """
        try:
            return self.histories[stream_name.lower()]
        except KeyError:
            raise EslSemanticError(
                f"no history enabled for stream {stream_name!r}; call "
                "engine.enable_history() first"
            ) from None

    def snapshot(self, text: str) -> list[dict[str, Any]]:
        """Run a one-shot SELECT against current state.

        Streams in FROM are read from their enabled histories; tables from
        their current rows.  Returns the result rows immediately — nothing
        is registered, nothing keeps running.
        """
        from ..core.language.compiler import execute_snapshot

        return execute_snapshot(self, text)

    def collect(self, stream_name: str) -> Collector:
        """Attach a :class:`Collector` to a stream and return it."""
        collector = Collector(stream_name)
        collector.attach(self.streams.get(stream_name))
        return collector

    def stop_all(self) -> None:
        for handle in self.queries:
            handle.stop()

    def __repr__(self) -> str:
        return (
            f"Engine(streams={len(self.streams)}, tables={len(self.tables)}, "
            f"queries={len(self.queries)}, now={self.now:g})"
        )
