"""Stream and table schemas.

A :class:`Schema` declares an ordered list of named, typed fields.  Schemas
are immutable and hashable; two schema objects with the same fields compare
equal, which lets derived streams share schema instances freely.

The type system is deliberately small — the paper's examples only need
strings, numbers, and timestamps — but validation is strict so that workload
generators and the engine catch shape errors early instead of producing
silently wrong joins.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .errors import SchemaError


class FieldType(enum.Enum):
    """Logical field types supported by the DSMS."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    TIMESTAMP = "timestamp"
    ANY = "any"

    def accepts(self, value: Any) -> bool:
        """Return True when *value* is a legal instance of this type."""
        if value is None:
            return True  # SQL NULL is legal for every type
        if self is FieldType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is FieldType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is FieldType.STR:
            return isinstance(value, str)
        if self is FieldType.BOOL:
            return isinstance(value, bool)
        if self is FieldType.TIMESTAMP:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return True  # ANY

    def coerce(self, value: Any) -> Any:
        """Best-effort coercion of *value* into this type.

        Used when loading external data (e.g. CSV traces); raises
        :class:`SchemaError` when the value cannot be represented.
        """
        if value is None:
            return None
        try:
            if self is FieldType.INT:
                return int(value)
            if self in (FieldType.FLOAT, FieldType.TIMESTAMP):
                return float(value)
            if self is FieldType.STR:
                return str(value)
            if self is FieldType.BOOL:
                if isinstance(value, str):
                    lowered = value.strip().lower()
                    if lowered in ("true", "t", "1", "yes"):
                        return True
                    if lowered in ("false", "f", "0", "no"):
                        return False
                    raise ValueError(value)
                return bool(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce {value!r} to {self.value}") from exc
        return value

    @property
    def wire_format(self) -> str | None:
        """Preferred fixed-width wire encoding for the shard transport.

        A ``struct`` format character for fixed-width types, ``"U"`` for
        length-prefixed UTF-8 strings, or ``None`` when values of this
        type have no single wire shape (``ANY``) and must be pickled.
        The transport treats this as a *hint*: the declared type names
        the expected column encoding, and the codec still verifies each
        batch (``accepts`` is deliberately looser than the wire format —
        e.g. FLOAT admits ints, which pack as ``q`` instead).
        """
        return _WIRE_FORMATS.get(self)


#: FieldType -> wire format hint (see :attr:`FieldType.wire_format`).
_WIRE_FORMATS: Mapping[FieldType, str] = {
    FieldType.INT: "q",
    FieldType.FLOAT: "d",
    FieldType.TIMESTAMP: "d",
    FieldType.BOOL: "B",
    FieldType.STR: "U",
}


#: Mapping from the type names accepted in ESL-EV DDL to FieldType.
TYPE_NAMES: Mapping[str, FieldType] = {
    "int": FieldType.INT,
    "integer": FieldType.INT,
    "bigint": FieldType.INT,
    "float": FieldType.FLOAT,
    "real": FieldType.FLOAT,
    "double": FieldType.FLOAT,
    "str": FieldType.STR,
    "string": FieldType.STR,
    "varchar": FieldType.STR,
    "char": FieldType.STR,
    "text": FieldType.STR,
    "bool": FieldType.BOOL,
    "boolean": FieldType.BOOL,
    "timestamp": FieldType.TIMESTAMP,
    "time": FieldType.TIMESTAMP,
    "any": FieldType.ANY,
}


class Field:
    """A single named, typed column of a schema."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: FieldType = FieldType.ANY) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid field name: {name!r}")
        self.name = name
        self.type = type

    def __repr__(self) -> str:
        return f"Field({self.name!r}, {self.type.value})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Field):
            return NotImplemented
        return self.name == other.name and self.type == other.type

    def __hash__(self) -> int:
        return hash((self.name, self.type))


class Schema:
    """An ordered, immutable collection of :class:`Field` objects.

    Supports fast name->position lookup, which the tuple representation uses
    to store values positionally rather than in per-tuple dicts.
    """

    __slots__ = ("fields", "_index", "_names", "_hash")

    def __init__(self, fields: Iterable[Field | tuple[str, FieldType] | str]) -> None:
        normalized: list[Field] = []
        for spec in fields:
            if isinstance(spec, Field):
                normalized.append(spec)
            elif isinstance(spec, str):
                normalized.append(Field(spec))
            else:
                name, ftype = spec
                normalized.append(Field(name, ftype))
        self.fields: tuple[Field, ...] = tuple(normalized)
        self._index: dict[str, int] = {}
        for pos, field in enumerate(self.fields):
            if field.name in self._index:
                raise SchemaError(f"duplicate field name: {field.name!r}")
            self._index[field.name] = pos
        self._names: tuple[str, ...] = tuple(f.name for f in self.fields)
        self._hash = hash(self.fields)

    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Shorthand for an all-ANY schema: ``Schema.of('reader_id', 'tag_id')``."""
        return cls(names)

    @classmethod
    def parse(cls, spec: str) -> "Schema":
        """Parse ``"name type, name type"`` DDL column lists.

        The type is optional and defaults to ``any``:

        >>> Schema.parse("reader_id str, tag_id str, read_time timestamp")
        Schema(reader_id str, tag_id str, read_time timestamp)
        """
        fields: list[Field] = []
        for part in spec.split(","):
            words = part.split()
            if not words:
                continue
            if len(words) == 1:
                fields.append(Field(words[0]))
            elif len(words) == 2:
                type_name = words[1].lower()
                if type_name not in TYPE_NAMES:
                    raise SchemaError(f"unknown type {words[1]!r} in {part!r}")
                fields.append(Field(words[0], TYPE_NAMES[type_name]))
            else:
                raise SchemaError(f"malformed column spec: {part!r}")
        return cls(fields)

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def covers(self, names: Iterable[str]) -> bool:
        """True when every name in *names* is a field of this schema.

        ``dict.keys()`` views and sets compare directly without building an
        intermediate set, keeping per-tuple mapping validation allocation-free.
        The set-likeness probe is duck-typed (``<=`` raises TypeError for
        plain iterables) rather than an ABC isinstance check, which would put
        a ``__subclasscheck__`` dispatch on the per-tuple ingestion path.
        """
        keys = self._index.keys()
        try:
            return names <= keys
        except TypeError:
            return all(name in keys for name in names)

    def position(self, name: str) -> int:
        """Return the 0-based position of *name*, raising SchemaError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown field {name!r}; schema has {', '.join(self.names)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name} {f.type.value}" for f in self.fields)
        return f"Schema({cols})"

    def validate(self, values: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` unless *values* conforms positionally."""
        if len(values) != len(self.fields):
            raise SchemaError(
                f"expected {len(self.fields)} values, got {len(values)}"
            )
        for field, value in zip(self.fields, values):
            if not field.type.accepts(value):
                raise SchemaError(
                    f"field {field.name!r} expects {field.type.value}, "
                    f"got {value!r}"
                )

    def coerce_row(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Coerce a positional row into the schema's types."""
        if len(values) != len(self.fields):
            raise SchemaError(
                f"expected {len(self.fields)} values, got {len(values)}"
            )
        return tuple(
            field.type.coerce(value) for field, value in zip(self.fields, values)
        )

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema containing only *names*, in the given order."""
        return Schema(self.fields[self.position(name)] for name in names)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a new schema with fields renamed per *mapping*."""
        return Schema(
            Field(mapping.get(field.name, field.name), field.type)
            for field in self.fields
        )
