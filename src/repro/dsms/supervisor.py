"""Shard-worker supervision policy: classify failures, decide recovery.

The :class:`ShardSupervisor` is a pure policy object used by the sharded
executor.  It does not touch processes itself; given a transport failure
it answers two questions:

1. **Is this failure restartable?**  Crashes (:class:`WorkerCrashed`),
   hangs (:class:`WorkerHung`) and wire corruption
   (:class:`FrameCorrupt`) are infrastructure failures: restarting the
   worker and replaying its input is sound.  A generic
   :class:`TransportError` carrying a worker *application* exception is
   **not** restartable — replaying the same input would raise the same
   exception again — so it always escalates.

2. **What does the escalation policy say?**

   * ``fail_fast`` (default): re-raise immediately; no recovery.  This
     is the pre-existing behaviour and costs nothing on the hot path.
   * ``restart``: allow up to ``max_restarts`` restarts per shard with
     linear backoff (``backoff_s * attempt``); beyond that, re-raise.
   * ``degrade``: allow restarts like ``restart``; if a shard exhausts
     its restart budget, drop it and route its traffic to survivors,
     flagging affected outputs as stale.

Every decision is appended to :attr:`events` so tests (and the fault
bench) can assert on the exact recovery sequence.
"""

from __future__ import annotations

import time
from typing import Any

from .errors import FrameCorrupt, TransportError, WorkerCrashed, WorkerHung

__all__ = ["ShardSupervisor", "ESCALATION_POLICIES"]

ESCALATION_POLICIES = ("fail_fast", "restart", "degrade")


def classify_failure(exc: BaseException) -> str:
    """Map a transport exception to a failure class label."""
    if isinstance(exc, WorkerCrashed):
        return "crash"
    if isinstance(exc, WorkerHung):
        return "hang"
    if isinstance(exc, FrameCorrupt):
        return "corrupt"
    if isinstance(exc, TransportError):
        return "application"
    return "unknown"


class ShardSupervisor:
    """Decides whether and how a failed shard worker is recovered."""

    def __init__(
        self,
        policy: str = "fail_fast",
        max_restarts: int = 3,
        backoff_s: float = 0.05,
    ) -> None:
        if policy not in ESCALATION_POLICIES:
            raise ValueError(
                f"unknown escalation policy {policy!r}; "
                f"expected one of {ESCALATION_POLICIES}"
            )
        self.policy = policy
        self.max_restarts = max_restarts
        self.backoff_s = backoff_s
        self.restarts: dict[int, int] = {}
        self.degraded: set[int] = set()
        self.events: list[dict[str, Any]] = []

    # -- decisions ----------------------------------------------------------

    def restartable(self, exc: BaseException) -> bool:
        return classify_failure(exc) in ("crash", "hang", "corrupt")

    def on_failure(self, shard: int, exc: BaseException) -> str:
        """Record a failure and return the action to take.

        Returns one of:

        * ``"restart"`` — respawn the worker and replay (the supervisor
          has already slept the backoff delay);
        * ``"degrade"`` — drop the shard, remap traffic to survivors;
        * ``"raise"``   — no recovery; the caller re-raises *exc*.
        """
        failure = classify_failure(exc)
        attempt = self.restarts.get(shard, 0) + 1
        action = self._decide(shard, failure, attempt)
        self.events.append(
            {
                "shard": shard,
                "failure": failure,
                "error": f"{type(exc).__name__}: {exc}",
                "attempt": attempt,
                "action": action,
            }
        )
        if action == "restart":
            self.restarts[shard] = attempt
            if self.backoff_s > 0:
                time.sleep(self.backoff_s * attempt)
        elif action == "degrade":
            self.degraded.add(shard)
        return action

    def _decide(self, shard: int, failure: str, attempt: int) -> str:
        if self.policy == "fail_fast":
            return "raise"
        if failure not in ("crash", "hang", "corrupt"):
            # Application errors recur on replay: never restart for them.
            return "raise"
        if attempt <= self.max_restarts:
            return "restart"
        return "degrade" if self.policy == "degrade" else "raise"

    def on_recovered(self, shard: int, latency_s: float) -> None:
        self.events.append(
            {"shard": shard, "action": "recovered", "latency_s": latency_s}
        )

    def __repr__(self) -> str:
        return (
            f"ShardSupervisor(policy={self.policy!r}, "
            f"restarts={dict(self.restarts)}, degraded={sorted(self.degraded)})"
        )
