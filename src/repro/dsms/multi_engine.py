"""MultiQueryEngine: one ingestion front door for many registered queries.

The paper's deployment model is many continuous RFID queries (per-reader
alerts, per-tag tracking, shoplifting variants for every department) over
the same few streams.  :class:`MultiQueryEngine` packages the two ways to
run that workload:

* **shared** (default, ``shared_execution=True``) — one
  :class:`~repro.dsms.engine.Engine` plus a
  :class:`~repro.dsms.registry.QueryRegistry`: ingestion and schema
  decode run once per tuple, routing is predicate-indexed, and identical
  queries share one compiled plan.

* **naive** (``shared_execution=False``) — the differential baseline: a
  fresh private :class:`Engine` per registered query, DDL replayed into
  each, every tuple pushed once per engine.  This is what "N queries =
  N engines" costs, and the bench harness measures shared against it.

Both modes expose the same register/cancel/push surface and produce
byte-identical per-subscription answers, so tests can diff them shape by
shape.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from .columns import ColumnBatch
from .engine import Collector, Engine
from .errors import EslSemanticError
from .registry import QueryRegistry, Subscription, _parse_select
from .schema import Schema
from .tuples import Tuple

__all__ = ["MultiQueryEngine"]


class MultiQueryEngine:
    """Register N continuous queries over one shared ingestion path.

    Catalog DDL (streams, tables, UDFs, UDAs) goes through the methods
    here so naive mode can replay it into per-query engines; query text
    itself is registered via :meth:`register`, which returns a
    :class:`~repro.dsms.registry.Subscription`.
    """

    def __init__(
        self,
        *,
        shared_execution: bool = True,
        compile_expressions: bool = True,
        indexed_state: bool = True,
        vectorized_admission: bool = True,
        native_admission: bool = False,
    ) -> None:
        self.shared_execution = shared_execution
        self._flags = {
            "compile_expressions": compile_expressions,
            "indexed_state": indexed_state,
            "vectorized_admission": vectorized_admission,
            "native_admission": native_admission,
        }
        #: The catalog engine.  Shared mode also executes here; naive mode
        #: uses it only for validation and as the DDL template.
        self.engine = Engine(**self._flags)
        self.registry: QueryRegistry | None = (
            QueryRegistry(self.engine) if shared_execution else None
        )
        self._ddl: list[tuple[str, tuple[Any, ...], dict[str, Any]]] = []
        self._naive: list[tuple[Subscription, Engine]] = []
        self._naive_counter = 0
        self.closed = False

    # -- catalog (recorded for naive replay) ----------------------------

    def _ddl_call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        if self.closed:
            raise EslSemanticError("multi-query engine is closed")
        result = getattr(self.engine, method)(*args, **kwargs)
        self._ddl.append((method, args, kwargs))
        for _sub, engine in self._naive:
            getattr(engine, method)(*args, **kwargs)
        return result

    def create_stream(
        self,
        name: str,
        schema: Schema | str | Iterable[str],
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
    ) -> Any:
        return self._ddl_call(
            "create_stream", name, schema, allow_out_of_order, reorder_slack
        )

    def create_table(self, name: str, schema: Schema | str | Iterable[str]) -> Any:
        return self._ddl_call("create_table", name, schema)

    def register_udf(
        self, name: str, fn: Callable[..., Any], strict: bool = True
    ) -> None:
        self._ddl_call("register_udf", name, fn, strict=strict)

    def register_uda(self, name: str, factory: Callable[[], Any]) -> None:
        self._ddl_call("register_uda", name, factory)

    def ddl(self, text: str) -> None:
        """Run a DDL/INSERT program (no SELECT) on the catalog engine."""
        if self.closed:
            raise EslSemanticError("multi-query engine is closed")
        self.engine.query(text)
        self._ddl.append(("query", (text,), {}))
        for _sub, engine in self._naive:
            engine.query(text)

    # -- registration ---------------------------------------------------

    def register(
        self,
        text: str,
        on_answer: Callable[[Tuple], None] | None = None,
    ) -> Subscription:
        """Register one SELECT; answers land on the returned subscription."""
        if self.closed:
            raise EslSemanticError("multi-query engine is closed")
        if self.registry is not None:
            return self.registry.register(text, on_answer)
        # Naive mode: a private engine per query, catalog replayed in.
        _parse_select(text)  # same validation errors as shared mode
        engine = Engine(**self._flags)
        for method, args, kwargs in self._ddl:
            getattr(engine, method)(*args, **kwargs)
        self._naive_counter += 1
        subscription = Subscription(
            self, self._naive_counter, text, on_answer
        )
        collector_box = engine._pending_collector = _SinkCollector(subscription)
        try:
            engine.query(text, name=f"nq{self._naive_counter}")
        finally:
            engine._pending_collector = None
        assert collector_box is not None
        subscription._extra = engine
        self._naive.append((subscription, engine))
        return subscription

    def cancel(self, subscription: Subscription) -> None:
        """Cancel a subscription from either mode.  Idempotent."""
        if self.registry is not None and subscription._owner is self.registry:
            subscription.cancel()
            return
        if not subscription.active:
            return
        subscription.active = False
        self._naive = [
            (sub, eng) for sub, eng in self._naive if sub is not subscription
        ]
        subscription._extra = None

    # -- ingestion ------------------------------------------------------

    def push(
        self,
        stream_name: str,
        values: Mapping[str, Any] | Sequence[Any],
        ts: float,
    ) -> None:
        if self.registry is not None:
            self.engine.push(stream_name, values, ts)
            return
        self.engine.streams.get(stream_name)  # unknown-stream error once
        for _sub, engine in self._naive:
            engine.push(stream_name, values, ts)

    def push_batch(
        self,
        stream_name: str,
        batch: Iterable[tuple[Mapping[str, Any] | Sequence[Any], float]],
    ) -> int:
        if self.registry is not None:
            return self.engine.push_batch(stream_name, batch)
        self.engine.streams.get(stream_name)
        records = batch if isinstance(batch, (list, ColumnBatch)) else list(batch)
        count = 0
        for _sub, engine in self._naive:
            count = engine.push_batch(stream_name, records)
        return count

    def push_columns(self, stream_name: str, batch: ColumnBatch) -> int:
        if self.registry is not None:
            return self.engine.push_columns(stream_name, batch)
        self.engine.streams.get(stream_name)
        count = 0
        for _sub, engine in self._naive:
            count = engine.push_columns(stream_name, batch)
        return count

    def run_trace(
        self,
        trace: Iterable[tuple[str, Mapping[str, Any] | Sequence[Any], float]],
    ) -> int:
        if self.registry is not None:
            return self.engine.run_trace(trace)
        records = trace if isinstance(trace, list) else list(trace)
        count = 0
        for _sub, engine in self._naive:
            count = engine.run_trace(records)
        return count

    def advance_time(self, ts: float) -> int:
        if self.registry is not None:
            return self.engine.advance_time(ts)
        fired = 0
        for _sub, engine in self._naive:
            fired += engine.advance_time(ts)
        return fired

    def flush(self) -> int:
        if self.registry is not None:
            return self.engine.flush()
        fired = 0
        for _sub, engine in self._naive:
            fired += engine.flush()
        return fired

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Cancel every subscription.  Idempotent; live subs detach cleanly."""
        if self.closed:
            return
        if self.registry is not None:
            self.registry.close()
        for subscription, _engine in list(self._naive):
            self.cancel(subscription)
        self.closed = True

    def __enter__(self) -> "MultiQueryEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- introspection --------------------------------------------------

    @property
    def subscription_count(self) -> int:
        if self.registry is not None:
            return self.registry.subscription_count
        return len(self._naive)

    def state_size(self) -> int:
        if self.registry is not None:
            return self.registry.state_size()
        total = 0
        for _sub, engine in self._naive:
            for handle in engine.queries:
                operator = getattr(handle, "operator", None)
                if operator is not None:
                    total += operator.state_size
        return total

    def execution_tier(self) -> dict[str, Any]:
        """Admission execution tier of the underlying engine(s).

        All engines (catalog, shared, per-query naive) are built from the
        same flag set, so the catalog engine's tier report speaks for
        every one of them.
        """
        return self.engine.execution_tier()

    def stats(self) -> dict[str, Any]:
        if self.registry is not None:
            stats = self.registry.stats()
            stats["mode"] = "shared"
            return stats
        return {
            "mode": "naive",
            "subscriptions": len(self._naive),
            "shared_plans": len(self._naive),  # nothing shared, 1 plan each
            "engines": len(self._naive),
            "state_size": self.state_size(),
        }

    def __repr__(self) -> str:
        mode = "shared" if self.registry is not None else "naive"
        return (
            f"MultiQueryEngine(mode={mode}, "
            f"subscriptions={self.subscription_count})"
        )


class _SinkCollector(Collector):
    """Naive-mode collector: deliver straight to the one subscription."""

    def __init__(self, sink: Subscription) -> None:
        super().__init__("naive-sink")
        self._sink = sink

    def __call__(self, tup: Tuple) -> None:
        self._sink(tup)
