"""Columnar batches and the shared column-packing primitives.

This module is the single home of the engine's columnar representation:

* :class:`ColumnBatch` — a schema-typed batch of rows stored as per-field
  column lists plus a timestamp column.  It is the first-class unit of
  ingestion for the vectorized admission path
  (:meth:`~repro.dsms.engine.Engine.push_columns`): admission predicates
  are evaluated over whole columns and ``Tuple`` objects are materialized
  only for surviving rows.

* The struct-based column codec (``pack_column`` / ``unpack_column`` and
  the tag tables) that the shard transport uses on the wire.  It lived in
  :mod:`repro.dsms.transport` until the execution layer grew its own
  columnar path; keeping one schema-driven packing definition here means
  the codec and the executor cannot drift.

The transport depends on this module, never the reverse.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from collections.abc import Mapping as _MappingABC
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .errors import FrameCodecError, SchemaError
from .schema import Schema

# ---------------------------------------------------------------------------
# Pickle protocol 5 with out-of-band buffers
# ---------------------------------------------------------------------------


def dumps_oob(obj: Any) -> bytes:
    """Pickle with protocol 5, packing out-of-band buffers after the body.

    Layout: ``u32 pickle_len, pickle, u32 n_buffers, (u32 len, bytes)*``.
    For plain Python payloads no buffers are produced and this is one
    protocol-5 pickle with an 8-byte frame; buffer-protocol values
    (bytes/bytearray/memoryview/arrays) ride out-of-band without a copy
    into the pickle stream.
    """
    buffers: list[pickle.PickleBuffer] = []
    body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    parts = [struct.pack("<I", len(body)), body, struct.pack("<I", len(buffers))]
    for buffer in buffers:
        raw = buffer.raw()
        parts.append(struct.pack("<I", len(raw)))
        parts.append(raw.tobytes() if not isinstance(raw, bytes) else raw)
    return b"".join(parts)


def loads_oob(view: memoryview | bytes, offset: int = 0) -> tuple[Any, int]:
    """Inverse of :func:`dumps_oob`; returns ``(object, next_offset)``."""
    view = memoryview(view)
    try:
        (body_len,) = struct.unpack_from("<I", view, offset)
        offset += 4
        body = view[offset:offset + body_len]
        if len(body) != body_len:
            raise FrameCodecError("truncated pickle body in frame")
        offset += body_len
        (n_buffers,) = struct.unpack_from("<I", view, offset)
        offset += 4
        buffers = []
        for _ in range(n_buffers):
            (buf_len,) = struct.unpack_from("<I", view, offset)
            offset += 4
            buffers.append(view[offset:offset + buf_len])
            offset += buf_len
        return pickle.loads(body, buffers=buffers), offset
    except (struct.error, pickle.UnpicklingError, EOFError, ValueError) as exc:
        raise FrameCodecError(f"corrupt pickle section: {exc}") from exc


# ---------------------------------------------------------------------------
# Columnar value packing
# ---------------------------------------------------------------------------

TAG_PICKLE = 0
TAG_I64 = 1
TAG_F64 = 2
TAG_BOOL = 3
TAG_STR = 4

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Schema wire-format hint -> preferred column tag (schema-driven packing).
TAG_BY_WIRE = {"q": TAG_I64, "d": TAG_F64, "B": TAG_BOOL, "U": TAG_STR}


def schema_hints(schema: Schema) -> tuple[int | None, ...]:
    """Per-field preferred column tags for *schema* (None for ``any``)."""
    return tuple(
        TAG_BY_WIRE.get(getattr(field.type, "wire_format", None))
        for field in schema.fields
    )


def column_tag(values: Sequence, hint: int | None) -> int:
    """Pick the densest tag every non-None value satisfies.

    The schema's declared type (*hint*) is tried first — the common case
    is one type sweep that confirms it — and the remaining tags are
    probed only when the schema said ``any`` or the data disagrees (e.g.
    ints in a float column, which must round-trip as ints, not doubles).
    """
    candidates = [hint] if hint is not None else []
    candidates += [TAG_F64, TAG_I64, TAG_STR, TAG_BOOL]
    for tag in candidates:
        if tag == TAG_I64:
            if all(
                value is None
                or (type(value) is int and _I64_MIN <= value <= _I64_MAX)
                for value in values
            ):
                return tag
        elif tag == TAG_F64:
            if all(value is None or type(value) is float for value in values):
                return tag
        elif tag == TAG_STR:
            if all(value is None or type(value) is str for value in values):
                return tag
        elif tag == TAG_BOOL:
            if all(value is None or type(value) is bool for value in values):
                return tag
    return TAG_PICKLE


_PACKED_F64 = struct.pack("<BB", TAG_F64, 0)
_PACKED_I64 = struct.pack("<BB", TAG_I64, 0)
_PACKED_STR = struct.pack("<BB", TAG_STR, 0)


def pack_column(values: Sequence, hint: int | None, out: list[bytes]) -> None:
    n = len(values)
    # Fast paths first: a None-free column whose every value exactly
    # matches the hinted type packs with two C-speed sweeps (type check,
    # struct.pack) and no bitmap.  Everything else funnels through the
    # general tag probe.
    if hint == TAG_F64 and all(type(v) is float for v in values):
        out.append(_PACKED_F64)
        out.append(struct.pack(f"<{n}d", *values))
        return
    if hint == TAG_STR and all(type(v) is str for v in values):
        out.append(_PACKED_STR)
        blob = "\x00".join(values).encode("utf-8", "surrogatepass")
        if len(values) == blob.count(b"\x00") + 1:
            # No embedded NULs: ship one separator-joined blob instead of
            # n length prefixes.
            out.append(struct.pack("<BI", 1, len(blob)))
            out.append(blob)
        else:
            blobs = [v.encode("utf-8", "surrogatepass") for v in values]
            out.append(struct.pack("<B", 0))
            out.append(struct.pack(f"<{n}I", *map(len, blobs)))
            out.append(b"".join(blobs))
        return
    if hint == TAG_I64 and all(
        type(v) is int and _I64_MIN <= v <= _I64_MAX for v in values
    ):
        out.append(_PACKED_I64)
        out.append(struct.pack(f"<{n}q", *values))
        return
    tag = column_tag(values, hint)
    if tag == TAG_PICKLE:
        out.append(struct.pack("<B", TAG_PICKLE))
        out.append(dumps_oob(list(values)))
        return
    has_none = None in values
    out.append(struct.pack("<BB", tag, int(has_none)))
    if has_none:
        bitmap = bytearray((n + 7) // 8)
        for index, value in enumerate(values):
            if value is None:
                bitmap[index >> 3] |= 1 << (index & 7)
        out.append(bytes(bitmap))
    if tag == TAG_I64:
        out.append(struct.pack(
            f"<{n}q", *(0 if value is None else value for value in values)
        ))
    elif tag == TAG_F64:
        out.append(struct.pack(
            f"<{n}d", *(0.0 if value is None else value for value in values)
        ))
    elif tag == TAG_BOOL:
        out.append(bytes(
            0 if value is None else int(value) for value in values
        ))
    else:  # TAG_STR
        blobs = [
            b"" if value is None
            else value.encode("utf-8", "surrogatepass")
            for value in values
        ]
        out.append(struct.pack("<B", 0))
        out.append(struct.pack(f"<{n}I", *map(len, blobs)))
        out.append(b"".join(blobs))


def unpack_column(
    view: memoryview, offset: int, n: int
) -> tuple[list, int]:
    (tag,) = struct.unpack_from("<B", view, offset)
    offset += 1
    if tag == TAG_PICKLE:
        values, offset = loads_oob(view, offset)
        if not isinstance(values, list) or len(values) != n:
            raise FrameCodecError("pickle column has wrong row count")
        return values, offset
    if tag not in (TAG_I64, TAG_F64, TAG_BOOL, TAG_STR):
        raise FrameCodecError(f"unknown column tag {tag}")
    (has_none,) = struct.unpack_from("<B", view, offset)
    offset += 1
    bitmap = None
    if has_none:
        bitmap = view[offset:offset + (n + 7) // 8]
        offset += (n + 7) // 8
    try:
        if tag == TAG_I64:
            raw: Sequence = struct.unpack_from(f"<{n}q", view, offset)
            offset += 8 * n
        elif tag == TAG_F64:
            raw = struct.unpack_from(f"<{n}d", view, offset)
            offset += 8 * n
        elif tag == TAG_BOOL:
            raw = [bool(b) for b in bytes(view[offset:offset + n])]
            if len(raw) != n:
                raise FrameCodecError("truncated bool column")
            offset += n
        else:  # TAG_STR
            (joined,) = struct.unpack_from("<B", view, offset)
            offset += 1
            if joined:
                (blob_len,) = struct.unpack_from("<I", view, offset)
                offset += 4
                blob = view[offset:offset + blob_len]
                if len(blob) != blob_len:
                    raise FrameCodecError("truncated string column")
                offset += blob_len
                raw = bytes(blob).decode("utf-8", "surrogatepass").split("\x00")
                if len(raw) != n:
                    raise FrameCodecError(
                        "string column separator count mismatch"
                    )
            else:
                lengths = struct.unpack_from(f"<{n}I", view, offset)
                offset += 4 * n
                total = sum(lengths)
                blob = bytes(view[offset:offset + total])
                if len(blob) != total:
                    raise FrameCodecError("truncated string column")
                offset += total
                raw = []
                position = 0
                for length in lengths:
                    raw.append(
                        blob[position:position + length].decode(
                            "utf-8", "surrogatepass"
                        )
                    )
                    position += length
    except struct.error as exc:
        raise FrameCodecError(f"truncated column data: {exc}") from exc
    if bitmap is None:
        return list(raw), offset
    values = list(raw)
    for index in range(n):
        if bitmap[index >> 3] & (1 << (index & 7)):
            values[index] = None
    return values, offset


# ---------------------------------------------------------------------------
# ColumnBatch
# ---------------------------------------------------------------------------


class ColumnBatch:
    """A schema-typed batch of stream rows stored column-wise.

    ``columns[j][i]`` is field ``j`` of row ``i``; ``timestamps[i]`` is
    row ``i``'s event timestamp.  Rows within a batch must already be in
    timestamp order — the ingestion paths enforce the same monotonicity
    contract as scalar pushes.

    A batch is the unit the vectorized admission tier operates on:
    compiled predicates evaluate whole columns at once and only rows that
    some subscriber admits are materialized into
    :class:`~repro.dsms.tuples.Tuple` objects.  The same object crosses
    the shard transport without being exploded into per-record tuples.
    """

    __slots__ = ("schema", "columns", "timestamps")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[Sequence[Any]],
        timestamps: Sequence[float],
    ) -> None:
        if len(columns) != len(schema):
            raise SchemaError(
                f"{len(columns)} columns for {len(schema)}-column "
                f"schema {schema!r}"
            )
        n = len(timestamps)
        for position, column in enumerate(columns):
            if len(column) != n:
                raise SchemaError(
                    f"column {schema.names[position]!r} has {len(column)} "
                    f"values for {n} timestamps"
                )
        self.schema = schema
        self.columns = tuple(columns)
        # Timestamps are coerced to float once here so survivor-only Tuple
        # materialization can use trusted slot assignment per row.
        self.timestamps = [float(ts) for ts in timestamps]

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        records: Iterable[tuple[Mapping[str, Any] | Sequence[Any], float]],
    ) -> "ColumnBatch":
        """Build a batch from ``(values, ts)`` records (mapping or positional).

        Applies the same schema validation as the scalar ingestion path
        (:meth:`~repro.dsms.streams.Stream.batch_ingester`): mappings must
        not carry unknown fields (missing ones become None), positional
        rows must match the schema width.
        """
        names = schema.names
        n_cols = len(names)
        covers = schema.covers
        columns: list[list[Any]] = [[] for _ in range(n_cols)]
        timestamps: list[float] = []
        for values, ts in records:
            if type(values) is dict or isinstance(values, _MappingABC):
                if not covers(values.keys()):
                    extra = set(values) - set(names)
                    raise SchemaError(
                        f"unknown fields {sorted(extra)} for {schema!r}"
                    )
                row = tuple(map(values.get, names))
            else:
                row = tuple(values)
                if len(row) != n_cols:
                    raise SchemaError(
                        f"tuple has {len(row)} values for {n_cols}-column "
                        f"schema {schema!r}"
                    )
            for column, value in zip(columns, row):
                column.append(value)
            timestamps.append(float(ts))
        return cls(schema, columns, timestamps)

    def __len__(self) -> int:
        return len(self.timestamps)

    def row(self, index: int) -> tuple:
        """Positional values of row *index* (schema order)."""
        return tuple(column[index] for column in self.columns)

    def rows(self) -> Iterator[tuple[tuple, float]]:
        """Iterate ``(values, ts)`` records — the scalar-path view."""
        return zip(zip(*self.columns) if self.columns else iter(()),
                   self.timestamps)

    def to_records(self) -> list[tuple[tuple, float]]:
        """Materialize every row as a ``(values, ts)`` record."""
        if not self.columns:
            return [((), ts) for ts in self.timestamps]
        return list(zip(zip(*self.columns), self.timestamps))

    def select(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch containing only the given row indices (in order)."""
        timestamps = self.timestamps
        return ColumnBatch(
            self.schema,
            tuple(
                [column[i] for i in indices] for column in self.columns
            ),
            [timestamps[i] for i in indices],
        )

    def __repr__(self) -> str:
        return (
            f"ColumnBatch({len(self)} rows x {len(self.schema)} cols, "
            f"schema={self.schema!r})"
        )


# ---------------------------------------------------------------------------
# ColumnStore — incremental columnar mirror of operator partition history
# ---------------------------------------------------------------------------

_I53 = 1 << 53  # largest int64 magnitude exactly representable as double


class _StrTable:
    """Append-only string intern table shared across partition mirrors.

    Interned ids are stable for the table's lifetime, so the native
    pairing kernels can compare strings by id across calls without
    re-interning history on every anchor.  The blob/offsets pair is the
    exact ``dict``/``dict_off`` side-table layout the kernel ABI reads
    (NUL-terminated UTF-8 at ``blob + offsets[id]``).
    """

    __slots__ = ("ids", "blob", "offsets")

    def __init__(self) -> None:
        self.ids: dict[str, int] = {}
        self.blob = array("b")
        self.offsets = array("i")

    def intern(self, text: str) -> int:
        """Stable id for *text*; raises ValueError on an embedded NUL."""
        ident = self.ids.get(text)
        if ident is not None:
            return ident
        data = text.encode("utf-8")
        if b"\x00" in data:
            raise ValueError("embedded NUL in string value")
        ident = self.ids[text] = len(self.offsets)
        self.offsets.append(len(self.blob))
        self.blob.frombytes(data + b"\x00")
        return ident


class ColumnStore:
    """A per-partition columnar mirror of a SEQ history list.

    Maintained incrementally alongside the row history: ``append`` on
    admit, ``evict_front`` on window eviction, ``rebuild`` after a
    checkpoint restore.  ``columns[j][i]`` / ``timestamps[i]`` mirror
    field ``j`` / the timestamp of ``history[i]`` exactly, so the
    vectorized pairing tier evaluates masks over them with the same
    ``(cols, tss, n)`` protocol as :class:`ColumnBatch`.

    When *packed_slots* is given (the column positions a native pairing
    kernel reads, each tagged ``"i"``/``"d"``/``"s"``), the store also
    maintains fixed-width buffers in the kernel ABI's layout: int64 /
    double value arrays with a verdict-flag side array (0 = present,
    2 = NULL, 3 = unrepresentable — out-of-int64 ints, type
    mismatches), and interned int32 string-id arrays against a shared
    :class:`_StrTable`.  Buffer addresses must be fetched per call
    (appends reallocate).

    Poison semantics: a tuple from the wrong schema sets ``ok = False``
    (the whole mirror is untrusted and every mask consumer must fall
    back to scalar); a string anomaly the ABI cannot express (non-str
    value in a STR slot, embedded NUL) sets ``native_ok = False`` —
    the packed side is abandoned but the object columns stay exact, so
    the vectorized tier keeps working.
    """

    __slots__ = (
        "schema", "columns", "timestamps", "ok", "native_ok",
        "packed_slots", "packed", "nulls", "packed_ts", "strings",
    )

    def __init__(
        self,
        schema: Schema,
        packed_slots: Sequence[tuple[int, str]] | None = None,
        strings: "_StrTable | None" = None,
    ) -> None:
        self.schema = schema
        self.columns: tuple[list, ...] = tuple(
            [] for _ in range(len(schema))
        )
        self.timestamps: list[float] = []
        self.ok = True
        self.packed_slots = tuple(packed_slots) if packed_slots else ()
        self.native_ok = bool(self.packed_slots)
        self.packed: list = []
        self.nulls: list = []
        for __, kind in self.packed_slots:
            if kind == "i":
                self.packed.append(array("q"))
                self.nulls.append(array("b"))
            elif kind == "d":
                self.packed.append(array("d"))
                self.nulls.append(array("b"))
            else:  # "s"
                self.packed.append(array("i"))
                self.nulls.append(None)
        self.packed_ts = array("d")
        self.strings = strings if strings is not None else _StrTable()

    def __len__(self) -> int:
        return len(self.timestamps)

    def append(self, tup: Any) -> None:
        """Mirror an admitted tuple (history.append happened alongside)."""
        if tup.schema is not self.schema:
            # A foreign-schema tuple can't be mirrored positionally; the
            # resulting length divergence from the row history is what
            # mask consumers check before trusting this store.
            self.ok = False
            return
        values = tup.values
        for column, value in zip(self.columns, values):
            column.append(value)
        self.timestamps.append(tup.ts)
        if self.native_ok:
            self._append_packed(values, tup.ts)

    def _append_packed(self, values: Sequence[Any], ts: float) -> None:
        try:
            for j, (position, kind) in enumerate(self.packed_slots):
                value = values[position]
                if kind == "s":
                    if value is None:
                        self.packed[j].append(-1)
                    elif type(value) is str:
                        self.packed[j].append(self.strings.intern(value))
                    else:
                        raise TypeError("non-string value in STR slot")
                elif value is None:
                    self.packed[j].append(0)
                    self.nulls[j].append(2)
                elif kind == "i":
                    if isinstance(value, int) and (
                        _I64_MIN <= value <= _I64_MAX
                    ):
                        self.packed[j].append(value)
                        self.nulls[j].append(0)
                    else:
                        # Unrepresentable: flag 3 makes the kernel
                        # verdict UNKNOWN, so the row always admits and
                        # the scalar re-check decides.
                        self.packed[j].append(0)
                        self.nulls[j].append(3)
                else:  # "d"
                    if isinstance(value, (int, float)) and not (
                        isinstance(value, int) and abs(value) > _I53
                    ):
                        self.packed[j].append(float(value))
                        self.nulls[j].append(0)
                    else:
                        self.packed[j].append(0.0)
                        self.nulls[j].append(3)
            self.packed_ts.append(ts)
        except (TypeError, ValueError, OverflowError):
            # The packed side is now length-inconsistent mid-row; it is
            # never read again once native_ok drops.
            self.native_ok = False

    def evict_front(self, count: int) -> None:
        """Drop the *count* oldest mirrored rows (front eviction only)."""
        if count <= 0:
            return
        for column in self.columns:
            del column[:count]
        del self.timestamps[:count]
        if self.native_ok:
            for j, buf in enumerate(self.packed):
                del buf[:count]
                side = self.nulls[j]
                if side is not None:
                    del side[:count]
            del self.packed_ts[:count]

    def rebuild(self, history: Sequence[Any]) -> None:
        """Reset and re-mirror *history* (checkpoint restore path)."""
        for column in self.columns:
            del column[:]
        del self.timestamps[:]
        self.ok = True
        self.native_ok = bool(self.packed_slots)
        for j, (__, kind) in enumerate(self.packed_slots):
            ctype = {"i": "q", "d": "d", "s": "i"}[kind]
            self.packed[j] = array(ctype)
            self.nulls[j] = None if kind == "s" else array("b")
        self.packed_ts = array("d")
        for tup in history:
            self.append(tup)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnStore({len(self)} rows x {len(self.schema)} cols, "
            f"ok={self.ok}, native_ok={self.native_ok})"
        )
