"""Shard transport: binary frame codec + persistent pipe workers.

The parallel :class:`~repro.dsms.sharding.ShardedEngine` executor used to
pay a ``concurrent.futures`` round trip per batch: every dispatch pickled
a list of per-record tuples into a ``ProcessPoolExecutor`` work queue and
harvested outputs through ``Future.result()`` — per-epoch overhead that
consumed the entire parallel speedup (``BENCH_sharded_scaling.json``
showed the parallel executor at ~1/7 of a single in-process engine).
This module is the replacement transport:

* **Persistent workers.**  Each shard is one long-lived worker process
  owning its shard :class:`~repro.dsms.engine.Engine` for the engine's
  lifetime, fed over a duplex ``multiprocessing`` pipe.  There is no
  executor machinery between router and worker: a batch crosses the
  process boundary as exactly one ``send_bytes`` call.

* **Binary frame codec.**  :class:`FrameCodec` packs a record batch
  ``(g, stream, values, ts)`` — and the stamped output runs coming back —
  into one contiguous struct-packed frame: stream names are interned to
  small integer ids, fixed-type columns (int/float/bool/str, chosen
  schema-first with a per-batch type check) are packed columnar, and
  anything heterogeneous falls back to pickle protocol 5 with out-of-band
  buffers.  Every frame carries a length and CRC-32 so truncation and
  corruption are detected, not silently mis-decoded.  The ``"pickle"``
  codec keeps the same framing but pickles the payload wholesale — the
  ablation arm that isolates codec wins from transport wins.

* **Pipelined, backpressure-aware dispatch.**  Output frames are streamed
  back asynchronously: a per-shard reader thread drains the pipe into the
  merge collector while the router keeps sending, with a bounded number
  of un-acknowledged frames in flight (double-buffered by default) so a
  slow shard applies backpressure instead of accumulating unbounded
  queue.  The reader thread also makes the protocol deadlock-free: the
  parent->worker pipe can only stall if the worker stops reading, and the
  worker only stops reading while blocked on a write the reader is, by
  construction, always draining.  :class:`AdaptiveBatcher` closes the
  loop, growing the per-shard batch size while observed round-trip
  latency is cheap and shrinking it when frames queue up.

Every counter a transport question needs — frames, heartbeat-only
frames, bytes on the wire each way, round trips, encode/decode seconds
on both sides of the pipe — is kept per shard and surfaced through
:meth:`ShardedEngine.transport_stats`.
"""

from __future__ import annotations

import struct
import threading
import time
import traceback
import zlib
from collections import deque
from collections.abc import Mapping as _MappingABC
from typing import Any, Callable, Mapping, Sequence

from .columns import (
    ColumnBatch,
    dumps_oob,
    loads_oob,
    pack_column as _pack_column,
    schema_hints as _schema_hints,
    unpack_column as _unpack_column,
)
from .errors import (
    FrameCodecError,
    FrameCorrupt,
    SchemaError,
    TransportError,
    WorkerCrashed,
    WorkerHung,
)
from .merge import StampedRow

# ---------------------------------------------------------------------------
# Frame envelope
# ---------------------------------------------------------------------------

MAGIC = 0xE51F
_HEADER = struct.Struct("<HBBII")  # magic, ftype, flags, payload_len, crc32

FT_HELLO = 1
FT_BATCH = 2
FT_ADVANCE = 3
FT_FLUSH = 4
FT_OUTPUT = 5
FT_CALL = 6
FT_REPLY = 7
FT_STOP = 8
FT_ERROR = 9
FT_COLBATCH = 10

_FRAME_TYPES = frozenset(
    (FT_HELLO, FT_BATCH, FT_ADVANCE, FT_FLUSH, FT_OUTPUT, FT_CALL, FT_REPLY,
     FT_STOP, FT_ERROR, FT_COLBATCH)
)


def encode_frame(ftype: int, payload: bytes) -> bytes:
    """Wrap *payload* in the transport envelope (magic, length, CRC-32)."""
    return _HEADER.pack(
        MAGIC, ftype, 0, len(payload), zlib.crc32(payload)
    ) + payload


def decode_frame(data: bytes) -> tuple[int, memoryview]:
    """Split an envelope into ``(ftype, payload)``, verifying integrity.

    Raises :class:`FrameCodecError` for short, truncated, corrupt, or
    unknown frames — a damaged frame must never decode as a shorter valid
    one.
    """
    if len(data) < _HEADER.size:
        raise FrameCorrupt(
            f"short frame: {len(data)} bytes < {_HEADER.size}-byte header"
        )
    magic, ftype, _flags, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameCorrupt(f"bad frame magic 0x{magic:04x}")
    if ftype not in _FRAME_TYPES:
        raise FrameCodecError(f"unknown frame type {ftype}")
    payload = memoryview(data)[_HEADER.size:]
    if len(payload) != length:
        raise FrameCorrupt(
            f"truncated frame: header declares {length} payload bytes, "
            f"got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise FrameCorrupt("frame CRC mismatch (corrupt payload)")
    return ftype, payload




# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


class FrameCodec:
    """Encodes/decodes the shard transport's frame payloads.

    Both pipe ends construct their codec from the same
    :class:`~repro.dsms.sharding.ShardSpec`, so the interned stream-name
    and sink-id tables agree without ever crossing the wire.  ``codec``
    selects the batch/output payload encoding: ``"framed"`` (columnar
    struct packing) or ``"pickle"`` (whole-payload protocol-5 pickle over
    the same envelope — the ablation arm).
    """

    def __init__(self, codec: str, spec: Any) -> None:
        if codec not in ("framed", "pickle"):
            raise FrameCodecError(
                f"unknown codec {codec!r}: expected 'framed' or 'pickle'"
            )
        self.codec = codec
        table = getattr(spec, "stream_table", None) or ()
        self._stream_ids: dict[str, int] = {}
        self._stream_names: list[str] = []
        self._schemas: list[Any] = []
        self._hints: list[tuple[int | None, ...]] = []
        self._names: list[tuple[str, ...]] = []
        for name, schema in table:
            key = name.lower()
            self._stream_ids[key] = len(self._stream_names)
            self._stream_names.append(key)
            self._schemas.append(schema)
            self._hints.append(_schema_hints(schema))
            self._names.append(schema.names)
        self._sink_ids: list[str] = [sink[0] for sink in spec.sinks]
        self._sink_index = {
            sink_id: index for index, sink_id in enumerate(self._sink_ids)
        }

    # -- record batches (router -> worker) -------------------------------

    def encode_batch(
        self,
        seq: int,
        records: list[tuple[int, str, Any, float]],
        advance_to: tuple[int, float] | None,
    ) -> bytes:
        if self.codec == "pickle":
            payload = struct.pack("<Q", seq) + dumps_oob((records, advance_to))
            return encode_frame(FT_BATCH, payload)
        n = len(records)
        parts: list[bytes] = [struct.pack("<Q", seq)]
        if advance_to is None:
            parts.append(struct.pack("<B", 0))
        else:
            parts.append(struct.pack("<BQd", 1, advance_to[0], advance_to[1]))
        parts.append(struct.pack("<I", n))
        parts.append(struct.pack(f"<{n}Q", *(rec[0] for rec in records)))
        parts.append(struct.pack(f"<{n}d", *(rec[3] for rec in records)))
        stream_ids = self._stream_ids
        groups: dict[int, tuple[list[int], list[tuple]]] = {}
        index = 0
        for _g, stream, values, _ts in records:
            try:
                group = groups[stream_ids[stream]]
            except KeyError:
                stream_id = stream_ids.get(stream)
                if stream_id is None:
                    raise FrameCodecError(
                        f"stream {stream!r} is not in the transport's "
                        "interned table; was it declared before the engine "
                        "froze?"
                    ) from None
                group = groups[stream_id] = ([], [])
            group[0].append(index)
            # Normalize to a positional row exactly as the shard-side
            # ingester would (same covers check, same error messages), so
            # delivering the decoded tuple is semantically identical to
            # delivering the original mapping.
            if type(values) is dict or isinstance(values, _MappingABC):
                group[1].append(values)
            else:
                group[1].append(tuple(values))
            index += 1
        parts.append(struct.pack("<H", len(groups)))
        for stream_id, (indices, raw_rows) in groups.items():
            names = self._names[stream_id]
            schema = self._schemas[stream_id]
            covers = schema.covers
            n_cols = len(names)
            rows: list[tuple] = []
            append = rows.append
            for values in raw_rows:
                if type(values) is tuple:
                    if len(values) != n_cols:
                        raise SchemaError(
                            f"tuple has {len(values)} values for "
                            f"{n_cols}-column schema {schema!r}"
                        )
                    append(values)
                else:
                    if not covers(values.keys()):
                        extra = set(values) - set(names)
                        raise SchemaError(
                            f"unknown fields {sorted(extra)} for {schema!r}"
                        )
                    append(tuple(map(values.get, names)))
            n_rows = len(rows)
            parts.append(struct.pack("<HIB", stream_id, n_rows, n_cols))
            parts.append(struct.pack(f"<{n_rows}I", *indices))
            hints = self._hints[stream_id]
            for col, column in enumerate(zip(*rows)):
                _pack_column(column, hints[col], parts)
        return encode_frame(FT_BATCH, b"".join(parts))

    def decode_batch(
        self, payload: memoryview
    ) -> tuple[int, list[tuple[int, str, Any, float]], tuple[int, float] | None]:
        try:
            (seq,) = struct.unpack_from("<Q", payload, 0)
            offset = 8
            if self.codec == "pickle":
                (records, advance_to), _ = loads_oob(payload, offset)
                return seq, records, advance_to
            (has_advance,) = struct.unpack_from("<B", payload, offset)
            offset += 1
            advance_to = None
            if has_advance:
                g_adv, ts_adv = struct.unpack_from("<Qd", payload, offset)
                advance_to = (g_adv, ts_adv)
                offset += 16
            (n,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            gs = struct.unpack_from(f"<{n}Q", payload, offset)
            offset += 8 * n
            tss = struct.unpack_from(f"<{n}d", payload, offset)
            offset += 8 * n
            streams: list[str | None] = [None] * n
            values_at: list[Any] = [None] * n
            (n_groups,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            for _ in range(n_groups):
                stream_id, n_rows, n_cols = struct.unpack_from(
                    "<HIB", payload, offset
                )
                offset += 7
                if stream_id >= len(self._stream_names):
                    raise FrameCodecError(f"unknown stream id {stream_id}")
                indices = struct.unpack_from(f"<{n_rows}I", payload, offset)
                offset += 4 * n_rows
                columns = []
                for _col in range(n_cols):
                    column, offset = _unpack_column(payload, offset, n_rows)
                    columns.append(column)
                name = self._stream_names[stream_id]
                if indices and max(indices) >= n:
                    raise FrameCodecError(
                        f"record index {max(indices)} out of range "
                        f"(batch of {n})"
                    )
                for index, row in zip(indices, zip(*columns)):
                    streams[index] = name
                    values_at[index] = row
            if any(stream is None for stream in streams):
                raise FrameCodecError("batch frame left records unassigned")
            return seq, [
                (gs[i], streams[i], values_at[i], tss[i]) for i in range(n)
            ], advance_to
        except struct.error as exc:
            raise FrameCodecError(f"truncated batch frame: {exc}") from exc

    # -- column batches (router -> worker, no explode/re-pack) ------------

    def encode_column_batch(
        self,
        seq: int,
        entries: list[tuple[str, Sequence[int], ColumnBatch]],
        advance_to: tuple[int, float] | None,
    ) -> bytes:
        """Pack ``(stream, gs, ColumnBatch)`` groups into one COLBATCH frame.

        Unlike :meth:`encode_batch`, the rows never exist as per-record
        tuples on either side of the pipe: the router ships the batch's
        column lists as-is and the worker rebuilds a :class:`ColumnBatch`
        straight from the unpacked columns.
        """
        if self.codec == "pickle":
            raw = [
                (stream, tuple(gs), [list(c) for c in batch.columns],
                 list(batch.timestamps))
                for stream, gs, batch in entries
            ]
            payload = struct.pack("<Q", seq) + dumps_oob((raw, advance_to))
            return encode_frame(FT_COLBATCH, payload)
        parts: list[bytes] = [struct.pack("<Q", seq)]
        if advance_to is None:
            parts.append(struct.pack("<B", 0))
        else:
            parts.append(struct.pack("<BQd", 1, advance_to[0], advance_to[1]))
        parts.append(struct.pack("<H", len(entries)))
        for stream, gs, batch in entries:
            stream_id = self._stream_ids.get(stream)
            if stream_id is None:
                raise FrameCodecError(
                    f"stream {stream!r} is not in the transport's interned "
                    "table; was it declared before the engine froze?"
                )
            schema = self._schemas[stream_id]
            if batch.schema != schema:
                raise SchemaError(
                    f"column batch schema {batch.schema!r} does not match "
                    f"stream {stream!r} schema {schema!r}"
                )
            n_rows = len(batch)
            n_cols = len(batch.columns)
            parts.append(struct.pack("<HIB", stream_id, n_rows, n_cols))
            parts.append(struct.pack(f"<{n_rows}Q", *gs))
            parts.append(struct.pack(f"<{n_rows}d", *batch.timestamps))
            hints = self._hints[stream_id]
            for col, column in enumerate(batch.columns):
                _pack_column(column, hints[col], parts)
        return encode_frame(FT_COLBATCH, b"".join(parts))

    def decode_column_batch(
        self, payload: memoryview
    ) -> tuple[
        int,
        list[tuple[str, tuple[int, ...], ColumnBatch]],
        tuple[int, float] | None,
    ]:
        try:
            (seq,) = struct.unpack_from("<Q", payload, 0)
            offset = 8
            if self.codec == "pickle":
                (raw, advance_to), _ = loads_oob(payload, offset)
                entries = []
                for stream, gs, columns, tss in raw:
                    stream_id = self._stream_ids.get(stream)
                    if stream_id is None:
                        raise FrameCodecError(f"unknown stream {stream!r}")
                    entries.append((
                        stream, tuple(gs),
                        ColumnBatch(self._schemas[stream_id], columns, tss),
                    ))
                return seq, entries, advance_to
            (has_advance,) = struct.unpack_from("<B", payload, offset)
            offset += 1
            advance_to = None
            if has_advance:
                g_adv, ts_adv = struct.unpack_from("<Qd", payload, offset)
                advance_to = (g_adv, ts_adv)
                offset += 16
            (n_entries,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            entries = []
            for _ in range(n_entries):
                stream_id, n_rows, n_cols = struct.unpack_from(
                    "<HIB", payload, offset
                )
                offset += 7
                if stream_id >= len(self._stream_names):
                    raise FrameCodecError(f"unknown stream id {stream_id}")
                schema = self._schemas[stream_id]
                if n_cols != len(schema):
                    raise FrameCodecError(
                        f"column batch for stream id {stream_id} has "
                        f"{n_cols} columns for {len(schema)}-column schema"
                    )
                gs = struct.unpack_from(f"<{n_rows}Q", payload, offset)
                offset += 8 * n_rows
                tss = list(struct.unpack_from(f"<{n_rows}d", payload, offset))
                offset += 8 * n_rows
                columns = []
                for _col in range(n_cols):
                    column, offset = _unpack_column(payload, offset, n_rows)
                    columns.append(column)
                entries.append((
                    self._stream_names[stream_id], gs,
                    ColumnBatch(schema, columns, tss),
                ))
            return seq, entries, advance_to
        except struct.error as exc:
            raise FrameCodecError(
                f"truncated column batch frame: {exc}"
            ) from exc

    # -- small control frames --------------------------------------------

    def encode_advance(self, seq: int, g: int, ts: float) -> bytes:
        return encode_frame(FT_ADVANCE, struct.pack("<QQd", seq, g, ts))

    @staticmethod
    def decode_advance(payload: memoryview) -> tuple[int, int, float]:
        try:
            return struct.unpack_from("<QQd", payload, 0)
        except struct.error as exc:
            raise FrameCodecError(f"truncated advance frame: {exc}") from exc

    def encode_flush(self, seq: int, g: int) -> bytes:
        return encode_frame(FT_FLUSH, struct.pack("<QQ", seq, g))

    @staticmethod
    def decode_flush(payload: memoryview) -> tuple[int, int]:
        try:
            return struct.unpack_from("<QQ", payload, 0)
        except struct.error as exc:
            raise FrameCodecError(f"truncated flush frame: {exc}") from exc

    # -- stamped output runs (worker -> router) --------------------------

    def encode_outputs(
        self,
        ack_seq: int,
        outputs: Mapping[str, list[StampedRow]],
        decode_s: float,
        encode_s: float,
    ) -> bytes:
        head = struct.pack("<Qdd", ack_seq, decode_s, encode_s)
        if self.codec == "pickle":
            return encode_frame(FT_OUTPUT, head + dumps_oob(dict(outputs)))
        parts: list[bytes] = [head, struct.pack("<H", len(outputs))]
        for sink_id, rows in outputs.items():
            sink_index = self._sink_index.get(sink_id)
            if sink_index is None:
                raise FrameCodecError(f"unknown sink id {sink_id!r}")
            n = len(rows)
            parts.append(struct.pack("<HI", sink_index, n))
            if not n:
                parts.append(struct.pack("<B", 0))
                parts.append(dumps_oob([]))
                continue
            tss, gs, _shards, locals_, values = zip(*rows)
            parts.append(struct.pack(f"<{n}d", *tss))
            parts.append(struct.pack(f"<{n}Q", *gs))
            parts.append(struct.pack(f"<{n}Q", *locals_))
            widths = {len(v) for v in values}
            if len(widths) == 1:
                n_cols = widths.pop()
                parts.append(struct.pack("<BB", 1, n_cols))
                for column in zip(*values):
                    _pack_column(column, None, parts)
            else:  # ragged values: whole-block pickle fallback
                parts.append(struct.pack("<B", 0))
                parts.append(dumps_oob(list(values)))
        return encode_frame(FT_OUTPUT, b"".join(parts))

    def decode_outputs(
        self, payload: memoryview, shard: int
    ) -> tuple[int, dict[str, list[StampedRow]], float, float]:
        try:
            ack_seq, decode_s, encode_s = struct.unpack_from("<Qdd", payload, 0)
            offset = 24
            if self.codec == "pickle":
                outputs, _ = loads_oob(payload, offset)
                return ack_seq, outputs, decode_s, encode_s
            (n_sinks,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            outputs: dict[str, list[StampedRow]] = {}
            for _ in range(n_sinks):
                sink_index, n = struct.unpack_from("<HI", payload, offset)
                offset += 6
                if sink_index >= len(self._sink_ids):
                    raise FrameCodecError(f"unknown sink index {sink_index}")
                tss = struct.unpack_from(f"<{n}d", payload, offset)
                offset += 8 * n
                gs = struct.unpack_from(f"<{n}Q", payload, offset)
                offset += 8 * n
                locals_ = struct.unpack_from(f"<{n}Q", payload, offset)
                offset += 8 * n
                (uniform,) = struct.unpack_from("<B", payload, offset)
                offset += 1
                if uniform:
                    (n_cols,) = struct.unpack_from("<B", payload, offset)
                    offset += 1
                    columns = []
                    for _col in range(n_cols):
                        column, offset = _unpack_column(payload, offset, n)
                        columns.append(column)
                    if n_cols:
                        values = list(zip(*columns))
                    else:
                        values = [()] * n
                else:
                    values, offset = loads_oob(payload, offset)
                shards = [shard] * n
                outputs[self._sink_ids[sink_index]] = list(
                    zip(tss, gs, shards, locals_, values)
                )
            return ack_seq, outputs, decode_s, encode_s
        except struct.error as exc:
            raise FrameCodecError(f"truncated output frame: {exc}") from exc


def encode_hello(shard: int) -> bytes:
    return encode_frame(FT_HELLO, struct.pack("<H", shard))


def encode_error(exc: BaseException) -> bytes:
    detail = (type(exc).__name__, str(exc), traceback.format_exc())
    return encode_frame(FT_ERROR, dumps_oob(detail))


def encode_call(method: str, args: tuple) -> bytes:
    return encode_frame(FT_CALL, dumps_oob((method, args)))


def encode_reply(result: Any) -> bytes:
    return encode_frame(FT_REPLY, dumps_oob(result))


_STOP_FRAME = encode_frame(FT_STOP, b"")


# ---------------------------------------------------------------------------
# Adaptive batch sizing
# ---------------------------------------------------------------------------


class AdaptiveBatcher:
    """Round-trip-latency-driven batch-size controller for one shard.

    Doubles the dispatch threshold while full frames come back fast
    (fixed per-frame overhead dominates — bigger batches amortize it) and
    halves it when acks slow past ``high_water_s`` (frames queueing on a
    saturated shard — smaller batches restore responsiveness).  Bounded
    by ``[min_size, max_size]``; growth/shrink counts are reported in the
    transport stats so a bench run shows what the controller did.
    """

    __slots__ = ("size", "min_size", "max_size", "low_water_s",
                 "high_water_s", "growths", "shrinks")

    def __init__(
        self,
        initial: int,
        min_size: int = 64,
        max_size: int = 8192,
        low_water_s: float = 0.005,
        high_water_s: float = 0.050,
    ) -> None:
        self.size = max(min(initial, max_size), min_size)
        self.min_size = min_size
        self.max_size = max_size
        self.low_water_s = low_water_s
        self.high_water_s = high_water_s
        self.growths = 0
        self.shrinks = 0

    def observe(self, rtt_s: float, n_records: int) -> None:
        # Clock-anomaly clamp: a worker restart can yield RTT samples
        # computed across two different processes' sends — zero, negative
        # (non-monotonic readings), NaN, or absurd values.  Non-finite and
        # non-positive samples carry no latency signal, so they must not
        # drive the batch size anywhere (a burst of zeros would otherwise
        # grow past every queueing signal; negatives from a restarted
        # pending queue would never shrink a saturated shard).
        if not (0.0 < rtt_s < float("inf")):
            return
        if rtt_s > self.high_water_s and self.size > self.min_size:
            self.size = max(self.size // 2, self.min_size)
            self.shrinks += 1
        elif (
            rtt_s < self.low_water_s
            and n_records >= self.size
            and self.size < self.max_size
        ):
            self.size = min(self.size * 2, self.max_size)
            self.growths += 1


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def shard_worker_main(
    conn: Any, spec: Any, shard: int, n_shards: int, codec_name: str
) -> None:
    """Entry point of one persistent shard worker process.

    Builds the shard's engine once, announces readiness (HELLO), then
    serves frames until STOP or pipe close.  Every data frame is answered
    with exactly one OUTPUT frame acknowledging it and carrying whatever
    stamped rows the step produced, so the router's in-flight accounting
    is a plain counter.  Failures are reported as ERROR frames with the
    worker traceback — the router re-raises them as
    :class:`~repro.dsms.errors.TransportError`.
    """
    from .sharding import _ShardRuntime

    clock = time.perf_counter
    decode_s = 0.0
    encode_s = 0.0
    try:
        codec = FrameCodec(codec_name, spec)
        runtime = _ShardRuntime(spec, shard, n_shards)
        conn.send_bytes(encode_hello(shard))
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            started = clock()
            ftype, payload = decode_frame(data)
            if ftype == FT_BATCH:
                seq, records, advance_to = codec.decode_batch(payload)
                decode_s += clock() - started
                ingest = runtime.ingest
                for g, stream, values, ts in records:
                    ingest(g, stream, values, ts)
                if advance_to is not None:
                    runtime.advance(advance_to[0], advance_to[1])
            elif ftype == FT_COLBATCH:
                seq, entries, advance_to = codec.decode_column_batch(payload)
                decode_s += clock() - started
                for stream, gs, batch in entries:
                    runtime.ingest_columns(gs, stream, batch)
                if advance_to is not None:
                    runtime.advance(advance_to[0], advance_to[1])
            elif ftype == FT_ADVANCE:
                seq, g, ts = codec.decode_advance(payload)
                decode_s += clock() - started
                runtime.advance(g, ts)
            elif ftype == FT_FLUSH:
                seq, g = codec.decode_flush(payload)
                decode_s += clock() - started
                runtime.flush(g)
            elif ftype == FT_CALL:
                (method, args), _ = loads_oob(payload)
                result = getattr(runtime, method)(*args)
                conn.send_bytes(encode_reply(result))
                continue
            elif ftype == FT_STOP:
                break
            else:
                raise TransportError(
                    f"shard {shard} worker received unexpected frame "
                    f"type {ftype}"
                )
            outputs = runtime.take_outputs()
            started = clock()
            frame = codec.encode_outputs(seq, outputs, decode_s, encode_s)
            encode_s += clock() - started
            conn.send_bytes(frame)
    except Exception as exc:  # noqa: BLE001 - forwarded to the router
        try:
            conn.send_bytes(encode_error(exc))
        except (OSError, ValueError, BrokenPipeError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Router-side worker client
# ---------------------------------------------------------------------------


def _shutdown_worker(process: Any, conn: Any) -> None:
    """Best-effort worker teardown; also runs at interpreter exit."""
    try:
        if process.is_alive():
            try:
                conn.send_bytes(_STOP_FRAME)
            except (OSError, ValueError, BrokenPipeError):
                pass
        process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():
            # SIGTERM stays pending on a stopped (SIGSTOP-wedged) process;
            # SIGKILL does not.
            process.kill()
            process.join(timeout=1.0)
    finally:
        try:
            conn.close()
        except OSError:
            pass


class ShardWorkerClient:
    """Router-side handle for one persistent shard worker.

    Owns the pipe, the reader thread that streams OUTPUT frames into the
    merge collector, the in-flight window (backpressure), and the
    per-shard transport counters.  All send-side methods are called from
    the router thread only; the reader thread owns the receive side.
    """

    def __init__(
        self,
        spec: Any,
        shard: int,
        n_shards: int,
        codec_name: str,
        context: Any,
        on_outputs: Callable[[int, Mapping[str, list[StampedRow]]], None],
        max_inflight: int = 2,
        hang_timeout: float | None = None,
        fault_plan: Any = None,
    ) -> None:
        import weakref

        self.shard = shard
        self._codec = FrameCodec(codec_name, spec)
        self._on_outputs = on_outputs
        self._max_inflight = max(1, max_inflight)
        # Supervision knobs: when hang_timeout is set, the wait loops raise
        # WorkerHung if frames stay unacknowledged past the deadline with
        # no progress signal.  fault_plan (tests/benches only) intercepts
        # sends to inject crashes, drops, corruption, and wedges.
        self._hang_timeout = hang_timeout
        self.fault_plan = fault_plan
        self._last_progress = time.monotonic()
        conn, worker_conn = context.Pipe(duplex=True)
        self._conn = conn
        self._process = context.Process(
            target=shard_worker_main,
            args=(worker_conn, spec, shard, n_shards, codec_name),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self._process.start()
        worker_conn.close()
        self._finalizer = weakref.finalize(
            self, _shutdown_worker, self._process, conn
        )
        self._cond = threading.Condition()
        self._seq = 0
        self._inflight = 0
        self._pending: deque[tuple[int, float, int]] = deque()
        self._rtt_samples: list[tuple[float, int]] = []
        self._reply: list[Any] = []
        self._error: BaseException | None = None
        self._ready = False
        self._dead = False
        self._closed = False
        self.last_sent_ts: float | None = None
        # Counters.  Send-side fields are written by the router thread,
        # receive-side fields by the reader thread; no field has two
        # writers, so reads for stats() only need the condition lock for
        # a consistent snapshot.
        self.frames_sent = 0
        self.heartbeat_frames = 0
        self.records_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.bytes_received = 0
        self.rows_received = 0
        self.round_trips = 0
        self.encode_s = 0.0
        self.decode_s = 0.0
        self.worker_decode_s = 0.0
        self.worker_encode_s = 0.0
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"repro-shard-{shard}-reader",
        )
        self._reader.start()

    # -- reader thread ----------------------------------------------------

    def _read_loop(self) -> None:
        clock = time.perf_counter
        conn = self._conn
        cond = self._cond
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            started = clock()
            try:
                ftype, payload = decode_frame(data)
                if ftype == FT_OUTPUT:
                    ack_seq, outputs, wdec, wenc = self._codec.decode_outputs(
                        payload, self.shard
                    )
                    elapsed = clock() - started
                    if outputs:
                        self._on_outputs(self.shard, outputs)
                    with cond:
                        self._last_progress = time.monotonic()
                        self.decode_s += elapsed
                        self.frames_received += 1
                        self.bytes_received += len(data)
                        self.rows_received += sum(
                            len(rows) for rows in outputs.values()
                        )
                        self.round_trips += 1
                        self.worker_decode_s = wdec
                        self.worker_encode_s = wenc
                        if self._pending and self._pending[0][0] == ack_seq:
                            _seq, sent_at, n_records = self._pending.popleft()
                            self._rtt_samples.append(
                                (started - sent_at, n_records)
                            )
                        self._inflight -= 1
                        cond.notify_all()
                elif ftype == FT_HELLO:
                    with cond:
                        self._last_progress = time.monotonic()
                        self._ready = True
                        cond.notify_all()
                elif ftype == FT_REPLY:
                    result, _ = loads_oob(payload)
                    with cond:
                        self._last_progress = time.monotonic()
                        self._reply.append(result)
                        self.frames_received += 1
                        self.bytes_received += len(data)
                        cond.notify_all()
                elif ftype == FT_ERROR:
                    (name, message, trace), _ = loads_oob(payload)
                    # Classify by the worker-side exception: a frame the
                    # worker could not verify is transport corruption (the
                    # supervisor may restart and replay); anything else is
                    # an application failure that would recur on replay.
                    exc_cls = (
                        FrameCorrupt
                        if name in ("FrameCorrupt", "FrameCodecError")
                        else TransportError
                    )
                    with cond:
                        self._error = exc_cls(
                            f"shard {self.shard} worker failed: {name}: "
                            f"{message}\n--- worker traceback ---\n{trace}"
                        )
                        cond.notify_all()
                else:
                    raise FrameCodecError(
                        f"unexpected frame type {ftype} from worker"
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced to router
                with cond:
                    if self._error is None:
                        self._error = exc if isinstance(
                            exc, TransportError
                        ) else TransportError(
                            f"shard {self.shard} reader failed: {exc}"
                        )
                    cond.notify_all()
                break
        with cond:
            self._dead = True
            cond.notify_all()

    # -- router-side sends ------------------------------------------------

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise self._error
        if self._dead and not self._closed:
            raise WorkerCrashed(
                f"shard {self.shard} worker exited unexpectedly"
            )

    def _check_hang(self) -> None:
        """Raise WorkerHung when in-flight work stalls past the deadline."""
        timeout = self._hang_timeout
        if timeout is None or not self._inflight:
            return
        stalled = time.monotonic() - self._last_progress
        if stalled > timeout:
            raise WorkerHung(
                f"shard {self.shard} worker made no progress for "
                f"{stalled:.1f}s with {self._inflight} frames in flight "
                f"(hang_timeout={timeout:g}s)"
            )

    def _wait_interval(self) -> float:
        timeout = self._hang_timeout
        if timeout is None:
            return 1.0
        return min(1.0, max(timeout / 4.0, 0.005))

    def _admit(self) -> None:
        """Block until the in-flight window has room (backpressure)."""
        wait_s = self._wait_interval()
        with self._cond:
            self._raise_if_failed()
            while self._inflight >= self._max_inflight:
                self._cond.wait(timeout=wait_s)
                self._raise_if_failed()
                self._check_hang()

    def _send(self, frame: bytes, n_records: int, heartbeat: bool) -> None:
        self._admit()
        plan = self.fault_plan
        if plan is not None:
            frame = plan.before_send(
                self.shard, self.frames_sent, frame, n_records
            )
        with self._cond:
            self._seq += 1
            self._pending.append((self._seq, time.perf_counter(), n_records))
            self._inflight += 1
            self.frames_sent += 1
            self.bytes_sent += len(frame) if frame is not None else 0
            self.records_sent += n_records
            if heartbeat:
                self.heartbeat_frames += 1
            self._last_progress = time.monotonic()
        if frame is not None:  # a dropped frame keeps its in-flight slot
            try:
                self._conn.send_bytes(frame)
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise WorkerCrashed(
                    f"shard {self.shard} worker pipe closed while sending: "
                    f"{exc}"
                ) from exc
        if plan is not None:
            plan.after_send(self.shard, n_records, self._process)

    def _next_seq(self) -> int:
        return self._seq + 1

    def send_batch(
        self,
        records: list[tuple[int, str, Any, float]],
        advance_to: tuple[int, float] | None,
    ) -> None:
        started = time.perf_counter()
        frame = self._codec.encode_batch(self._next_seq(), records, advance_to)
        self.encode_s += time.perf_counter() - started
        if advance_to is not None:
            self.last_sent_ts = advance_to[1]
        self._send(frame, len(records), heartbeat=not records)

    def send_column_batch(
        self,
        entries: list[tuple[str, Sequence[int], ColumnBatch]],
        advance_to: tuple[int, float] | None,
    ) -> None:
        started = time.perf_counter()
        frame = self._codec.encode_column_batch(
            self._next_seq(), entries, advance_to
        )
        self.encode_s += time.perf_counter() - started
        if advance_to is not None:
            self.last_sent_ts = advance_to[1]
        n_rows = sum(len(batch) for _stream, _gs, batch in entries)
        self._send(frame, n_rows, heartbeat=not n_rows)

    def send_advance(self, g: int, ts: float) -> None:
        frame = self._codec.encode_advance(self._next_seq(), g, ts)
        self.last_sent_ts = ts
        self._send(frame, 0, heartbeat=True)

    def send_flush(self, g: int) -> None:
        frame = self._codec.encode_flush(self._next_seq(), g)
        self._send(frame, 0, heartbeat=False)

    def drain(self) -> None:
        """Barrier: wait until every sent frame has been acknowledged."""
        wait_s = self._wait_interval()
        with self._cond:
            self._raise_if_failed()
            while self._inflight:
                self._cond.wait(timeout=wait_s)
                self._raise_if_failed()
                self._check_hang()

    def wait_ready(self, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        with self._cond:
            self._raise_if_failed()
            while not self._ready:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"shard {self.shard} worker did not come up within "
                        f"{timeout:.0f}s"
                    )
                self._cond.wait(timeout=min(remaining, 1.0))
                self._raise_if_failed()

    def call(self, method: str, *args: Any) -> Any:
        """Synchronous RPC into the worker (stats, table scans)."""
        self.drain()
        if self._closed:
            raise TransportError(
                f"shard {self.shard} worker is closed"
            )
        try:
            self._conn.send_bytes(encode_call(method, args))
        except (OSError, ValueError, BrokenPipeError) as exc:
            raise WorkerCrashed(
                f"shard {self.shard} worker pipe closed while calling "
                f"{method!r}: {exc}"
            ) from exc
        wait_s = self._wait_interval()
        started = time.monotonic()
        with self._cond:
            while not self._reply:
                self._raise_if_failed()
                timeout = self._hang_timeout
                if (
                    timeout is not None
                    and time.monotonic() - started > timeout
                ):
                    raise WorkerHung(
                        f"shard {self.shard} worker did not reply to "
                        f"{method!r} within {timeout:g}s"
                    )
                self._cond.wait(timeout=wait_s)
            return self._reply.pop()

    def take_rtt_samples(self) -> list[tuple[float, int]]:
        with self._cond:
            samples = self._rtt_samples
            self._rtt_samples = []
            return samples

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "shard": self.shard,
                "frames_sent": self.frames_sent,
                "heartbeat_frames": self.heartbeat_frames,
                "records_sent": self.records_sent,
                "bytes_sent": self.bytes_sent,
                "frames_received": self.frames_received,
                "bytes_received": self.bytes_received,
                "rows_received": self.rows_received,
                "round_trips": self.round_trips,
                "encode_s": self.encode_s,
                "decode_s": self.decode_s,
                "worker_decode_s": self.worker_decode_s,
                "worker_encode_s": self.worker_encode_s,
            }

    def close(self) -> None:
        """Idempotent teardown: STOP the worker, reap it, stop the reader."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()
        self._reader.join(timeout=2.0)
