"""User-defined scalar functions.

UDFs are plain Python callables registered under a case-insensitive name.
The paper's Example 3 assumes ``extract_serial`` exists as a UDF; this
module is how an application would supply it (we also ship it as a built-in
for convenience).

NULL propagation is opt-in via ``strict=True`` (the SQL default behaviour
for most functions): a strict UDF returns NULL whenever any argument is
NULL, without being invoked.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from .errors import EslSemanticError, UnknownFunctionError


class UdfRegistry:
    """Case-insensitive name -> callable registry layered over built-ins."""

    def __init__(self, builtins: dict[str, Callable[..., Any]] | None = None) -> None:
        self._functions: dict[str, Callable[..., Any]] = dict(builtins or {})

    def register(
        self,
        name: str,
        fn: Callable[..., Any],
        strict: bool = True,
        replace: bool = False,
    ) -> None:
        """Register *fn* under *name*.

        Args:
            strict: if True, any NULL argument yields NULL without calling fn.
            replace: allow overwriting an existing registration.
        """
        key = name.lower()
        if not replace and key in self._functions:
            raise EslSemanticError(f"function {name!r} is already registered")
        if strict:

            @functools.wraps(fn)
            def wrapper(*args: Any) -> Any:
                if any(arg is None for arg in args):
                    return None
                return fn(*args)

            self._functions[key] = wrapper
        else:
            self._functions[key] = fn

    def udf(self, name: str | None = None, strict: bool = True) -> Callable:
        """Decorator form: ``@registry.udf()`` or ``@registry.udf('name')``."""

        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            self.register(name or fn.__name__, fn, strict=strict)
            return fn

        return decorate

    def get(self, name: str) -> Callable[..., Any]:
        fn = self._functions.get(name.lower())
        if fn is None:
            raise UnknownFunctionError(f"unknown function {name!r}")
        return fn

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._functions

    def as_mapping(self) -> dict[str, Callable[..., Any]]:
        """The live mapping handed to expression Envs (shared, not copied)."""
        return self._functions
