"""Virtual time: the engine clock and timer service.

The paper's EXCEPTION_SEQ operator requires *Active Expiration* semantics
(section 3.1.3): a sliding-window expiration must be detected even when no
new tuple arrives.  In a real DSMS this is driven by the system clock; in
this reproduction time is virtual and advances in two ways:

* implicitly, when a tuple with a later timestamp is pushed, and
* explicitly, via :meth:`VirtualClock.advance` — the "heartbeat" a deployment
  would wire to wall-clock ticks.

Operators register :class:`Timer` callbacks; the clock fires every timer
whose deadline is <= the new time, in deadline order, before the triggering
tuple (if any) is processed.  This gives deterministic semantics: a timeout
at time T fires before a tuple stamped T' > T is seen.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from .errors import ClockError

TimerCallback = Callable[[float], None]


class Timer:
    """A scheduled callback.  Cancel by calling :meth:`cancel`.

    ``periodic`` marks timers whose callbacks re-arm themselves (recurring
    tasks like ALE event cycles); :meth:`VirtualClock.drain` cancels those
    instead of firing them, so end-of-stream flushes terminate.
    """

    __slots__ = ("deadline", "callback", "cancelled", "periodic", "_order",
                 "_clock")

    def __init__(
        self,
        deadline: float,
        callback: TimerCallback,
        order: int,
        periodic: bool = False,
        clock: "VirtualClock | None" = None,
    ) -> None:
        self.deadline = deadline
        self.callback = callback
        self.cancelled = False
        self.periodic = periodic
        self._order = order
        self._clock = clock

    def cancel(self) -> None:
        """Mark this timer so that it will be skipped when it pops."""
        if not self.cancelled:
            self.cancelled = True
            if self._clock is not None:
                self._clock._note_cancel()

    def __lt__(self, other: "Timer") -> bool:
        return (self.deadline, self._order) < (other.deadline, other._order)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"Timer(deadline={self.deadline:g}, {state})"


class VirtualClock:
    """Monotone virtual clock with a timer heap.

    The clock starts at ``-inf``-like ``None`` meaning "no time observed yet";
    the first advance establishes the epoch.  Moving backwards raises
    :class:`ClockError` — streams are timestamp-ordered by contract.
    """

    #: Compaction kicks in only past this heap size; below it the cancelled
    #: entries are popped soon enough that rebuilding would cost more.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: float | None = None
        self._timers: list[Timer] = []
        self._counter = itertools.count()
        self._firing = False
        self._live = 0  # armed (non-cancelled) timers, kept O(1)-readable

    @property
    def now(self) -> float:
        """Current virtual time; 0.0 before anything has happened."""
        return self._now if self._now is not None else 0.0

    @property
    def started(self) -> bool:
        return self._now is not None

    def schedule(
        self, deadline: float, callback: TimerCallback, periodic: bool = False
    ) -> Timer:
        """Register *callback* to fire when time reaches *deadline*.

        A deadline at or before the current time fires on the next advance
        (including a zero-width ``advance(now)``), never synchronously — this
        keeps operator code re-entrancy-free.  Pass ``periodic=True`` for
        self-re-arming timers so :meth:`drain` knows to stop them.
        """
        timer = Timer(
            float(deadline), callback, next(self._counter), periodic, clock=self
        )
        heapq.heappush(self._timers, timer)
        self._live += 1
        return timer

    def pending_timers(self) -> int:
        """Number of armed (non-cancelled) timers, maintained incrementally.

        Operators that arm and cancel timers per tuple (active expiration,
        state-expiry sweeps) call this on hot paths, so it must not scan
        the heap — cancelled entries stay in the heap until they pop or a
        compaction removes them.
        """
        return self._live

    def _note_cancel(self) -> None:
        """A timer was cancelled: keep the live count exact and compact the
        heap once cancelled entries dominate it.

        Compaction rebuilds the heap from the armed timers only; it is
        amortized O(1) per cancellation because it halves the heap each
        time it runs.
        """
        self._live -= 1
        timers = self._timers
        if len(timers) >= self.COMPACT_MIN and self._live * 2 < len(timers):
            self._timers = [t for t in timers if not t.cancelled]
            heapq.heapify(self._timers)

    def advance(self, to: float) -> int:
        """Move time forward to *to*, firing due timers in deadline order.

        Returns the number of timers fired.  Re-entrant scheduling is
        supported: a callback may schedule new timers, and those fire in the
        same advance when already due.
        """
        if self._now is not None and to < self._now:
            raise ClockError(
                f"clock cannot move backwards: at {self._now:g}, asked for {to:g}"
            )
        if self._firing:
            # A timer callback pushed a tuple; time is already being advanced.
            # Deadlines it creates are handled by the outer loop.
            self._now = max(self._now or to, to)
            return 0
        self._now = to if self._now is None else max(self._now, to)
        fired = 0
        self._firing = True
        try:
            while self._timers and self._timers[0].deadline <= self._now:
                timer = heapq.heappop(self._timers)
                if timer.cancelled:
                    continue
                self._live -= 1
                timer.cancelled = True  # fired: no longer armed, cancel() no-ops
                timer.callback(timer.deadline)
                fired += 1
        finally:
            self._firing = False
        return fired

    def advance_if_due(self, to: float) -> int:
        """Move time to *to*, entering the timer loop only when a timer is due.

        Semantically identical to :meth:`advance` — same backwards check,
        same timer-before-later-tuple discipline — but when the head of the
        timer heap (if any) lies beyond *to*, it just slides ``now`` forward
        without the firing-loop setup.  This is the per-record clock call of
        the batched ingestion paths, where almost every record advances time
        by a little and fires nothing.
        """
        timers = self._timers
        if timers and timers[0].deadline <= to:
            return self.advance(to)
        if self._firing:
            return self.advance(to)
        now = self._now
        if now is None:
            self._now = to
        elif to > now:
            self._now = to
        elif to < now:
            raise ClockError(
                f"clock cannot move backwards: at {now:g}, asked for {to:g}"
            )
        return 0

    def drain(self) -> int:
        """Fire all remaining one-shot timers regardless of deadline.

        Used at end-of-stream to flush pending window expirations, mirroring
        a DSMS shutting down a continuous query.  Periodic timers (recurring
        tasks such as ALE event cycles) are *cancelled*, not fired — a
        recurring task has no natural last firing, and draining it would
        loop forever.  Advances the clock to the last deadline fired.
        """
        fired = 0
        while self._timers:
            for timer in self._timers:
                if timer.periodic:
                    timer.cancel()
            armed = [t.deadline for t in self._timers if not t.cancelled]
            if not armed:
                self._timers.clear()
                break
            horizon = max(armed)
            fired += self.advance(
                horizon if self._now is None else max(horizon, self._now)
            )
        return fired

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:g}, timers={self.pending_timers()})"


def make_clock(value: Any = None) -> VirtualClock:
    """Return *value* if it already is a clock, else a fresh VirtualClock."""
    if isinstance(value, VirtualClock):
        return value
    return VirtualClock()
