"""Partition-sharded parallel engine.

The paper's central RFID idiom — equality on ``tag_id`` hoisted into
per-partition operator state (Example 6) — makes SEQ/EXCEPTION_SEQ
workloads embarrassingly parallel across tags: tuples of different tags
never interact.  :class:`ShardedEngine` exploits that.  It owns N inner
:class:`~repro.dsms.engine.Engine` shards, hash-routes each pushed tuple
to one shard by its partition key, broadcasts clock advancement to every
shard (so EXCEPTION_SEQ *Active Expiration* timers fire identically
everywhere), and k-way merges the per-shard outputs back into the single
deterministic result stream a one-engine run would have produced (see
:mod:`repro.dsms.merge` for the stamp/merge discipline).

Routing rules
-------------

Each input stream gets exactly one routing policy, derived when queries
are registered:

* **hash** — tuples go to ``crc32(str(key)) % n_shards`` where the key
  field comes from (a) an explicit ``shard_by={'stream': 'field'}``
  override, else (b) the query's hoisted equality-chain partition key
  (``QueryHandle.partition_field``) when every source stream carries it.
* **broadcast** — every shard receives every tuple.  This is the fallback
  for keyless streams: a query whose sources cannot all be keyed is
  *replicated* (each shard computes the full result from the full input)
  and its output is collected from shard 0 only, so rows are not
  duplicated N times.

A stream's policy must be consistent across all queries that read it:
registering a query that needs stream S broadcast when another query
hash-routes S (or needs a different key) raises
:class:`~repro.dsms.errors.EslSemanticError` — run the conflicting query
on its own ``ShardedEngine`` or add a ``shard_by`` override.  Correctness
of an explicit ``shard_by`` key is the caller's contract: the query's
semantics must not relate tuples with different key values (true for any
query whose predicates all correlate on that key, like Example 1's
per-tag dedup).

Executors
---------

Three interchangeable executors implement the same routing/merge
contract:

* ``executor='serial'`` — all shards live in this process and every
  record is applied synchronously: the target shard ingests, every other
  shard's clock advances first.  This is the *reference* executor the
  differential tests compare against a single ``Engine``.
* ``executor='parallel'`` — the pipe transport
  (:mod:`repro.dsms.transport`): each shard is one persistent worker
  process owning its Engine for the sharded engine's lifetime, fed
  batches over a duplex pipe as struct-packed binary frames
  (``codec='framed'``, the default) or whole-payload protocol-5 pickles
  (``codec='pickle'``).  Output frames stream back asynchronously on a
  per-shard reader thread; dispatch is pipelined with a bounded
  in-flight window (backpressure) and an adaptive batch-size
  controller.  Per-shard wire counters are surfaced through
  :meth:`ShardedEngine.transport_stats`.
* ``executor='futures'`` — the legacy transport (one single-worker
  ``concurrent.futures.ProcessPoolExecutor`` per shard, one submitted
  future per batch epoch, outputs harvested via ``Future.result()``).
  Kept as the ablation baseline the ``shard_transport`` benchmark
  measures the pipe transport against.

All executors batch through the same fused ingestion
(:meth:`Stream.batch_ingester`), so the PR-1 fast path applies per
shard.  Clock advancement is broadcast at batch boundaries, which
preserves merged output *order* (timer outputs are stamped with their
deadline either way) at the cost of coarser stamp granularity; see
``docs/PERFORMANCE.md`` for the exact guarantee.

Setup (``create_stream`` / ``create_table`` / ``register_udf`` /
``query`` / ``collect``) must happen before the first push: the first
data or clock operation freezes the configuration, and — in process
modes — spawns the worker processes from a declarative replay spec.
Call :meth:`ShardedEngine.start` to freeze and wait for workers
explicitly (benchmarks do, to keep process spawn out of timed regions).

Typical use::

    sharded = ShardedEngine(n_shards=4, executor='parallel')
    for name in ('c1', 'c2', 'c3', 'c4'):
        sharded.create_stream(name, 'readerid str, tagid str, tagtime float')
    handle = sharded.query(QUALITY_QUERY)   # partitions on tagid
    sharded.run_trace(trace)
    sharded.flush()
    print(handle.rows())                    # merged, single-engine order
    sharded.close()
"""

from __future__ import annotations

import heapq
import time
import zlib
from collections import deque
from collections.abc import Mapping as _MappingABC
from typing import Any, Callable, Iterable, Mapping, Sequence

from .columns import ColumnBatch
from .engine import Collector, Engine, QueryHandle
from .errors import EslSemanticError, TransportError
from .merge import RunCollector, StampedRow, StampedSink, merge_runs
from .schema import Schema
from .tuples import Tuple


def shard_of(key: Any, n_shards: int) -> int:
    """Stable hash routing: same key -> same shard, across runs and hosts.

    Uses CRC-32 of ``str(key)`` rather than :func:`hash` because the
    latter is salted per process (``PYTHONHASHSEED``) — worker processes
    and the router must agree.
    """
    if type(key) is not str:
        key = str(key)
    return zlib.crc32(key.encode("utf-8", "surrogatepass")) % n_shards


class _Route:
    """Routing decision for one stream."""

    __slots__ = ("stream", "policy", "field", "owner", "key_fn")

    def __init__(self, stream: str) -> None:
        self.stream = stream
        self.policy: str | None = None  # None (undecided) | "hash" | "broadcast"
        # For "hash": the key field, or None for *opaque* partitioned
        # streams (derived outputs of a partitioned query whose schema
        # does not carry the partition key — readable via collect(), but
        # not pushable or re-consumable).
        self.field: str | None = None
        self.owner: str | None = None  # query label that fixed the policy
        self.key_fn: Callable[[Any], Any] | None = None


class ShardSpec:
    """Declarative, picklable recipe for building one shard's Engine.

    ``ops`` replays the setup calls in order; ``sinks`` lists the outputs
    to stamp, as ``(sink_id, kind, target, ship)`` with kind ``"query"``
    (collector or derived-stream output of a registered query) or
    ``"stream"`` (an explicit :meth:`ShardedEngine.collect`), and ship
    ``"all"`` (every shard emits) or ``"zero"`` (replicated output,
    shard 0 only).  ``stream_table`` lists every pushable stream as
    ``(lowercased_name, Schema)``, in registration order — both ends of
    the pipe transport derive their interned stream-id and column-packing
    tables from it, so ids agree without crossing the wire.
    """

    __slots__ = (
        "ops", "sinks", "compile_expressions", "indexed_state",
        "vectorized_admission", "native_admission", "stream_table",
    )

    def __init__(
        self,
        ops: Sequence[tuple],
        sinks: Sequence[tuple[str, str, str, str]],
        compile_expressions: bool,
        indexed_state: bool = True,
        stream_table: Sequence[tuple[str, Schema]] = (),
        vectorized_admission: bool = True,
        native_admission: bool = False,
    ) -> None:
        self.ops = list(ops)
        self.sinks = list(sinks)
        self.compile_expressions = compile_expressions
        self.indexed_state = indexed_state
        self.vectorized_admission = vectorized_admission
        self.native_admission = native_admission
        self.stream_table = tuple(stream_table)


class _ShardRuntime:
    """One shard: a full Engine built from a :class:`ShardSpec`.

    Lives in-process (serial executor) or inside a worker process
    (parallel executor).  All mutation goes through :meth:`ingest`,
    :meth:`advance`, and :meth:`flush`, each of which drains newly
    emitted rows into stamped per-sink buffers.
    """

    def __init__(self, spec: ShardSpec, shard: int, n_shards: int) -> None:
        self.shard = shard
        self.n_shards = n_shards
        self.engine = Engine(
            compile_expressions=spec.compile_expressions,
            indexed_state=spec.indexed_state,
            vectorized_admission=spec.vectorized_admission,
            native_admission=getattr(spec, "native_admission", False),
        )
        self.handles: dict[str, QueryHandle] = {}
        for op in spec.ops:
            kind = op[0]
            if kind == "stream":
                _, name, schema, ooo, slack = op
                self.engine.create_stream(name, schema, ooo, slack)
            elif kind == "table":
                _, name, schema = op
                self.engine.create_table(name, schema)
            elif kind == "udf":
                _, name, fn, strict = op
                self.engine.register_udf(name, fn, strict=strict)
            elif kind == "query":
                _, text, label = op
                self.handles[label] = self.engine.query(text, name=label)
            else:  # pragma: no cover - spec is built by ShardedEngine only
                raise EslSemanticError(f"unknown shard op {kind!r}")
        self._sinks: list[StampedSink] = []
        for sink_id, kind, target, ship in spec.sinks:
            if ship == "zero" and shard != 0:
                continue  # replicated output: suppress duplicates
            if kind == "query":
                handle = self.handles[target]
                if handle._collector is not None:
                    backing = handle._collector.results
                elif handle.output is not None:
                    backing = self.engine.collect(handle.output.name).results
                else:
                    continue  # table sink: read via table_rows(), no stamps
            else:
                backing = self.engine.collect(target).results
            self._sinks.append(StampedSink(sink_id, shard, backing))
        self._ingesters: dict[str, Callable[[Any, float], Tuple]] = {}
        self._advance_if_due = self.engine.clock.advance_if_due

    def _drain(self, g: int) -> None:
        for sink in self._sinks:
            sink.drain(g)

    def ingest(self, g: int, stream: str, values: Any, ts: float) -> None:
        self._advance_if_due(ts)
        ingest = self._ingesters.get(stream)
        if ingest is None:
            ingest = self._ingesters[stream] = self.engine.streams.get(
                stream
            ).batch_ingester()
        ingest(values, ts)
        self._drain(g)

    def ingest_columns(self, gs: Sequence[int], stream: str, batch: Any) -> None:
        """Columnar ingestion: the batch stays packed until admission.

        ``gs`` carries each row's global record index; draining after every
        row (with that row's ``g``) reproduces the exact merge stamps the
        per-record :meth:`ingest` path would assign.
        """
        strm = self.engine.streams.get(stream)
        drain = self._drain
        strm.push_columns(
            batch,
            self._advance_if_due,
            self.engine.vectorized_admission or self.engine.native_admission,
            on_row=lambda index: drain(gs[index]),
        )

    def advance(self, g: int, ts: float) -> None:
        """Clock broadcast: fire timers due at or before *ts*.

        Monotone-clamped (a stale heartbeat is a no-op) because batched
        hand-off can re-deliver an epoch boundary a shard already passed.
        """
        clock = self.engine.clock
        if clock._now is None or ts > clock._now:
            self._advance_if_due(ts)
        self._drain(g)

    def flush(self, g: int) -> None:
        self.engine.flush()
        self._drain(g)

    def take_outputs(self) -> dict[str, list[StampedRow]]:
        """Stamped rows accumulated since the last take (picklable)."""
        out: dict[str, list[StampedRow]] = {}
        for sink in self._sinks:
            if sink.rows:
                out[sink.sink_id] = sink.take()
        return out

    def query_state_size(self, label: str) -> int:
        operator = getattr(self.handles[label], "operator", None)
        return getattr(operator, "state_size", 0) if operator is not None else 0

    def table_rows(self, name: str) -> list[dict[str, Any]]:
        return list(self.engine.tables.get(name).scan())

    # -- checkpoint / restore (fault tolerance) -------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Serialize all mutable shard state as plain picklable data.

        Called over the transport's RPC path after a drain barrier, so
        every stamped sink buffer is empty (each data frame's outputs
        were already shipped) and the captured state is a consistent cut.
        """
        from .checkpoint import capture_engine_state

        state = capture_engine_state(self.engine)
        state["sink_locals"] = {
            sink.sink_id: sink._local for sink in self._sinks
        }
        return state

    def restore(self, state: Mapping[str, Any]) -> None:
        """Restore a freshly-built runtime to a checkpointed cut.

        The engine was just rebuilt from the spec, so compile-time rows
        (one-shot table queries) sit undrained in the sink backings; the
        cursor skips them — the original run already delivered them —
        while ``_local`` resumes the checkpointed output numbering so
        replayed batches regenerate byte-identical stamps.
        """
        from .checkpoint import restore_engine_state

        restore_engine_state(self.engine, state)
        sink_locals = state.get("sink_locals", {})
        for sink in self._sinks:
            sink._cursor = len(sink._backing)
            sink._local = sink_locals.get(sink.sink_id, 0)
            sink.rows.clear()
        # Cached ingest closures bind the pre-restore sequencer.
        self._ingesters.clear()


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class _SerialExecutor:
    """Reference executor: shards applied synchronously, in-process.

    Per record, every non-target shard's clock advances *before* output
    collection, so active-expiration timers fire at exactly the same
    global record index ``g`` as they would inside a single engine.
    """

    def __init__(self, spec: ShardSpec, n_shards: int) -> None:
        self._runtimes = [_ShardRuntime(spec, i, n_shards) for i in range(n_shards)]

    def route_one(self, shard: int, g: int, stream: str, values: Any, ts: float) -> None:
        for index, runtime in enumerate(self._runtimes):
            if index == shard:
                runtime.ingest(g, stream, values, ts)
            else:
                runtime.advance(g, ts)

    def route_columns(
        self,
        entries: Sequence[tuple[int, Sequence[int], str, Any]],
        advance_to: tuple[int, float] | None,
    ) -> None:
        """Apply pre-split column batches synchronously, still packed.

        Mirrors the pipe worker's COLBATCH handling: each target shard
        ingests its sub-batch columnar (per-row ``g`` stamps via the
        ``gs`` list), then every shard — touched or not — receives the
        epoch-boundary clock heartbeat.  ``advance`` is monotone-clamped,
        so re-advancing a shard that just ingested is a no-op.
        """
        for shard, gs, stream, batch in entries:
            self._runtimes[shard].ingest_columns(gs, stream, batch)
        if advance_to is not None:
            g, ts = advance_to
            for runtime in self._runtimes:
                runtime.advance(g, ts)

    def broadcast_one(self, g: int, stream: str, values: Any, ts: float) -> None:
        for runtime in self._runtimes:
            runtime.ingest(g, stream, values, ts)

    def advance_all(self, g: int, ts: float) -> None:
        for runtime in self._runtimes:
            runtime.advance(g, ts)

    def flush_all(self, g: int) -> None:
        for runtime in self._runtimes:
            runtime.flush(g)

    def sync(self) -> None:  # everything is already applied
        pass

    def outputs(self) -> dict[str, list[list[StampedRow]]]:
        runs: dict[str, list[list[StampedRow]]] = {}
        n = len(self._runtimes)
        for index, runtime in enumerate(self._runtimes):
            for sink in runtime._sinks:
                per_shard = runs.setdefault(sink.sink_id, [[] for _ in range(n)])
                per_shard[index] = sink.rows
        return runs

    def query_state_sizes(self, label: str) -> list[int]:
        return [runtime.query_state_size(label) for runtime in self._runtimes]

    def table_rows(self, name: str) -> list[list[dict[str, Any]]]:
        return [runtime.table_rows(name) for runtime in self._runtimes]

    def close(self) -> None:
        for runtime in self._runtimes:
            runtime.engine.stop_all()


# Worker-process state for the parallel executor.  Each shard has its own
# single-worker pool, so exactly one runtime lives per worker process.
_WORKER_RUNTIME: _ShardRuntime | None = None


def _worker_init(spec: ShardSpec, shard: int, n_shards: int) -> None:
    global _WORKER_RUNTIME
    _WORKER_RUNTIME = _ShardRuntime(spec, shard, n_shards)


def _worker_batch(
    records: list[tuple[int, str, Any, float]], advance_to: tuple[int, float] | None
) -> dict[str, list[StampedRow]]:
    runtime = _WORKER_RUNTIME
    assert runtime is not None
    ingest = runtime.ingest
    for g, stream, values, ts in records:
        ingest(g, stream, values, ts)
    if advance_to is not None:
        runtime.advance(advance_to[0], advance_to[1])
    return runtime.take_outputs()


def _worker_flush(g: int) -> dict[str, list[StampedRow]]:
    runtime = _WORKER_RUNTIME
    assert runtime is not None
    runtime.flush(g)
    return runtime.take_outputs()


def _worker_state_size(label: str) -> int:
    assert _WORKER_RUNTIME is not None
    return _WORKER_RUNTIME.query_state_size(label)


def _worker_table_rows(name: str) -> list[dict[str, Any]]:
    assert _WORKER_RUNTIME is not None
    return _WORKER_RUNTIME.table_rows(name)


def _worker_ready() -> bool:
    return _WORKER_RUNTIME is not None


class _FuturesExecutor:
    """Legacy process-backed executor: one pool + future per batch epoch.

    Records accumulate in per-shard buffers; when any buffer reaches
    ``batch_size`` the router dispatches *all* shards — loaded ones get
    their records, idle ones get an empty batch carrying the clock
    heartbeat — so windows and timeouts expire across every shard at each
    batch epoch.  Worker affinity is strict: each shard's pool has
    exactly one worker, so per-shard operator state never migrates.

    This is the transport the pipe executor replaced (select it with
    ``executor='futures'``): every epoch pays executor machinery — a
    pickled submission, a work-queue hop, and a ``Future.result()``
    round trip — per shard.  It is kept as the ablation baseline for the
    ``shard_transport`` benchmark, with the same heartbeat accounting
    (heartbeat-only submissions are counted and *skipped* when the clock
    stamp is not newer than the shard's last) and with teardown on a
    failed worker batch, which used to leave pools alive with pending
    futures.
    """

    def __init__(
        self,
        spec: ShardSpec,
        n_shards: int,
        batch_size: int,
        measure_bytes: bool = False,
    ) -> None:
        from concurrent.futures import ProcessPoolExecutor

        self._n = n_shards
        self._batch_size = batch_size
        self._measure_bytes = measure_bytes
        self._closed = False
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1, initializer=_worker_init, initargs=(spec, i, n_shards)
            )
            for i in range(n_shards)
        ]
        self._buffers: list[list[tuple[int, str, Any, float]]] = [
            [] for _ in range(n_shards)
        ]
        self._pending: list[deque] = [deque() for _ in range(n_shards)]
        self._runs: dict[str, list[list[StampedRow]]] = {}
        self._max_ts: float | None = None
        self._max_g = 0
        self._last_sent_ts: list[float | None] = [None] * n_shards
        self.frames_sent = [0] * n_shards
        self.heartbeat_frames = [0] * n_shards
        self.records_sent = [0] * n_shards
        self.bytes_sent = [0] * n_shards
        self.round_trips = [0] * n_shards

    def warm_up(self) -> None:
        """Block until every shard's worker process is initialized."""
        futures = [pool.submit(_worker_ready) for pool in self._pools]
        for future in futures:
            future.result()

    def _absorb(self, shard: int, outputs: dict[str, list[StampedRow]]) -> None:
        for sink_id, rows in outputs.items():
            per_shard = self._runs.setdefault(sink_id, [[] for _ in range(self._n)])
            per_shard[shard].extend(rows)

    def _result(self, shard: int, future) -> dict[str, list[StampedRow]]:
        """``Future.result()`` with teardown: a failed worker batch must
        not leave N pools alive with pending futures."""
        try:
            outputs = future.result()
        except BaseException:
            self.close(sync=False)
            raise
        self.round_trips[shard] += 1
        return outputs

    def _harvest_ready(self, shard: int) -> None:
        pending = self._pending[shard]
        while pending and pending[0].done():
            self._absorb(shard, self._result(shard, pending.popleft()))

    def _dispatch_all(self, advance_to: tuple[int, float] | None) -> None:
        for shard, pool in enumerate(self._pools):
            records = self._buffers[shard]
            if not records:
                # Heartbeat-only epoch: skip unless the clock stamp is
                # genuinely newer than this shard's last — a stale stamp
                # cannot fire timers, so re-dispatching it is pure
                # amplification.
                last = self._last_sent_ts[shard]
                if advance_to is None or (
                    last is not None and advance_to[1] <= last
                ):
                    continue
                self.heartbeat_frames[shard] += 1
            self._buffers[shard] = []
            if advance_to is not None:
                self._last_sent_ts[shard] = advance_to[1]
            if self._measure_bytes:
                import pickle

                self.bytes_sent[shard] += len(
                    pickle.dumps((records, advance_to), protocol=5)
                )
            self.frames_sent[shard] += 1
            self.records_sent[shard] += len(records)
            self._pending[shard].append(
                pool.submit(_worker_batch, records, advance_to)
            )
            self._harvest_ready(shard)

    def _note(self, g: int, ts: float) -> None:
        self._max_g = g
        if self._max_ts is None or ts > self._max_ts:
            self._max_ts = ts

    def route_one(self, shard: int, g: int, stream: str, values: Any, ts: float) -> None:
        self._note(g, ts)
        buffer = self._buffers[shard]
        buffer.append((g, stream, values, ts))
        if len(buffer) >= self._batch_size:
            self._dispatch_all((g, self._max_ts))

    def broadcast_one(self, g: int, stream: str, values: Any, ts: float) -> None:
        self._note(g, ts)
        record = (g, stream, values, ts)
        full = False
        for buffer in self._buffers:
            buffer.append(record)
            full = full or len(buffer) >= self._batch_size
        if full:
            self._dispatch_all((g, self._max_ts))

    def advance_all(self, g: int, ts: float) -> None:
        self._note(g, ts)
        self._dispatch_all((g, ts))

    def flush_all(self, g: int) -> None:
        self._dispatch_all(None)
        for shard, pool in enumerate(self._pools):
            self.frames_sent[shard] += 1
            self._pending[shard].append(pool.submit(_worker_flush, g))
        self.sync()

    def sync(self) -> None:
        """Barrier: drain buffers, then absorb every outstanding future."""
        if any(self._buffers):
            advance = (
                None
                if self._max_ts is None
                else (self._max_g, self._max_ts)
            )
            self._dispatch_all(advance)
        for shard in range(self._n):
            pending = self._pending[shard]
            while pending:
                self._absorb(shard, self._result(shard, pending.popleft()))

    def outputs(self) -> dict[str, list[list[StampedRow]]]:
        self.sync()
        return self._runs

    def query_state_sizes(self, label: str) -> list[int]:
        self.sync()
        futures = [pool.submit(_worker_state_size, label) for pool in self._pools]
        return [future.result() for future in futures]

    def table_rows(self, name: str) -> list[list[dict[str, Any]]]:
        self.sync()
        futures = [pool.submit(_worker_table_rows, name) for pool in self._pools]
        return [future.result() for future in futures]

    def stats(self) -> list[dict[str, Any]]:
        return [
            {
                "shard": shard,
                "frames_sent": self.frames_sent[shard],
                "heartbeat_frames": self.heartbeat_frames[shard],
                "records_sent": self.records_sent[shard],
                "bytes_sent": self.bytes_sent[shard],
                "round_trips": self.round_trips[shard],
            }
            for shard in range(self._n)
        ]

    def alive_workers(self) -> int:
        if self._closed:
            return 0
        return len(self._pools)

    def close(self, sync: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if sync:
                self.sync()
        finally:
            for pool in self._pools:
                pool.shutdown(wait=True, cancel_futures=True)


class _PipeExecutor:
    """Pipe-transport executor: persistent workers, framed dispatch.

    Same routing/merge contract as the other executors, different
    plumbing: each shard is a :class:`~repro.dsms.transport.ShardWorkerClient`
    wrapping one long-lived worker process, outputs stream back on reader
    threads into a :class:`~repro.dsms.merge.RunCollector`, and dispatch
    thresholds per shard are governed by an
    :class:`~repro.dsms.transport.AdaptiveBatcher` (when enabled).  Any
    exception escaping a transport operation tears the workers down
    before re-raising — a dead executor must not hold N processes.
    """

    def __init__(
        self,
        spec: ShardSpec,
        n_shards: int,
        batch_size: int,
        codec: str = "framed",
        start_method: str | None = None,
        max_inflight: int = 2,
        adaptive_batch: bool = True,
        fault_tolerance: str = "fail_fast",
        checkpoint_interval: float | None = None,
        hang_timeout: float | None = None,
        fault_plan: Any = None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.05,
    ) -> None:
        import multiprocessing

        from .supervisor import ShardSupervisor
        from .transport import AdaptiveBatcher, ShardWorkerClient

        self._n = n_shards
        self.codec = codec
        self._closed = False
        # Fault-tolerance machinery.  With the default fail_fast policy
        # the replay logs stay empty and none of this is consulted on the
        # per-record path, so the no-fault hot path is unchanged.
        self._spec = spec
        self._max_inflight = max_inflight
        self._hang_timeout = hang_timeout
        self._fault_plan = fault_plan
        self._ft = fault_tolerance != "fail_fast"
        self._ckpt_interval = checkpoint_interval or None
        self._supervisor = ShardSupervisor(
            fault_tolerance,
            max_restarts=max_restarts,
            backoff_s=restart_backoff_s,
        )
        self._replay_logs: list[list[tuple]] = [[] for _ in range(n_shards)]
        self._checkpoints: list[Any] = [None] * n_shards
        self._last_ckpt_ts: float | None = None
        self._degraded: set[int] = set()
        self._active: list[int] = list(range(n_shards))
        self._remap: dict[int, int] = {}
        self.recoveries = 0
        self.checkpoints_taken = 0
        self._collector = RunCollector()
        for sink_id, _kind, _target, _ship in spec.sinks:
            self._collector.register(sink_id, n_shards)
        context = multiprocessing.get_context(start_method)
        self._context = context
        self._clients: list[ShardWorkerClient] = []
        try:
            for shard in range(n_shards):
                self._clients.append(
                    ShardWorkerClient(
                        spec,
                        shard,
                        n_shards,
                        codec,
                        context,
                        self._collector.absorb,
                        max_inflight=max_inflight,
                        hang_timeout=hang_timeout,
                        fault_plan=fault_plan,
                    )
                )
        except BaseException:
            self.close(sync=False)
            raise
        self._batchers = [
            AdaptiveBatcher(batch_size) if adaptive_batch
            else AdaptiveBatcher(batch_size, min_size=batch_size,
                                 max_size=batch_size)
            for _ in range(n_shards)
        ]
        self._buffers: list[list[tuple[int, str, Any, float]]] = [
            [] for _ in range(n_shards)
        ]
        self._max_ts: float | None = None
        self._max_g = 0

    def warm_up(self) -> None:
        """Block until every worker has built its shard engine (HELLO)."""
        try:
            for client in self._clients:
                client.wait_ready()
        except BaseException:
            self.close(sync=False)
            raise

    # -- fault tolerance ---------------------------------------------------

    @staticmethod
    def _raw_send(client: Any, entry: tuple) -> None:
        """Replay-log entry -> wire frame.  Raw: never re-logs."""
        kind = entry[0]
        if kind == "batch":
            client.send_batch(entry[1], entry[2])
        elif kind == "colbatch":
            client.send_column_batch(entry[1], entry[2])
        elif kind == "advance":
            client.send_advance(entry[1], entry[2])
        else:  # "flush"
            client.send_flush(entry[1])

    def _entry_send(self, shard: int, entry: tuple) -> None:
        """Send one entry to a shard, logging it first (append-before-send)
        so a mid-send crash replays it along with everything since the
        last checkpoint."""
        if shard in self._degraded:
            return
        if self._ft:
            self._replay_logs[shard].append(entry)
        try:
            self._raw_send(self._clients[shard], entry)
        except TransportError as exc:
            # Recovery replays the whole log — including this entry — so
            # a successful return here means the entry was delivered.
            self._on_shard_failure(shard, exc)

    def _on_shard_failure(self, shard: int, exc: BaseException) -> None:
        """Escalation loop: restart (possibly repeatedly), degrade, or
        re-raise per the supervisor's policy decision."""
        if shard in self._degraded:
            return
        while True:
            action = self._supervisor.on_failure(shard, exc)
            if action == "raise":
                raise exc
            if action == "degrade":
                self._degrade_shard(shard)
                return
            try:
                self._restart_shard(shard)
                return
            except TransportError as next_exc:  # cascade: count it again
                exc = next_exc

    def _dedup_absorb(self, shard: int) -> Callable[[int, dict], None]:
        """Output filter for a restarted worker: replay regenerates every
        post-checkpoint emission, so rows whose local counter falls below
        what this shard already delivered are duplicates and are dropped."""
        collector = self._collector
        seen = {
            sink_id: len(collector.runs_for(sink_id)[shard])
            for sink_id in collector.sink_ids()
        }
        def absorb(s: int, outputs: dict) -> None:
            filtered = {}
            for sink_id, rows in outputs.items():
                cut = seen.get(sink_id, 0)
                kept = [row for row in rows if row[3] >= cut]
                if kept:
                    filtered[sink_id] = kept
            if filtered:
                collector.absorb(s, filtered)
        return absorb

    def _restart_shard(self, shard: int) -> None:
        """Respawn a shard worker, restore its last checkpoint (or rebuild
        from the spec when none was taken), and replay the logged frames."""
        from .transport import ShardWorkerClient

        started = time.monotonic()
        try:
            self._clients[shard].close()
        except Exception:  # noqa: BLE001 - dead worker teardown is best-effort
            pass
        client = ShardWorkerClient(
            self._spec,
            shard,
            self._n,
            self.codec,
            self._context,
            self._dedup_absorb(shard),
            max_inflight=self._max_inflight,
            hang_timeout=self._hang_timeout,
            fault_plan=self._fault_plan,
        )
        self._clients[shard] = client
        client.wait_ready()
        blob = self._checkpoints[shard]
        if blob is not None:
            client.call("restore", blob)
        for entry in self._replay_logs[shard]:
            self._raw_send(client, entry)
        client.drain()
        self._supervisor.on_recovered(shard, time.monotonic() - started)
        self.recoveries += 1

    def _degrade_shard(self, shard: int) -> None:
        """Drop a shard permanently: its traffic remaps to a survivor and
        every affected output is flagged stale (see degraded_shards())."""
        self._degraded.add(shard)
        self._active = [s for s in range(self._n) if s not in self._degraded]
        if not self._active:
            raise TransportError(
                "every shard worker has failed; no survivor to degrade to"
            )
        target = self._active[shard % len(self._active)]
        self._remap[shard] = target
        for src, dst in list(self._remap.items()):
            if dst == shard:
                self._remap[src] = target
        pending = self._buffers[shard]
        if pending:
            # Both buffers are ascending in g; merging by g keeps the
            # survivor's per-stream timestamps monotone.
            self._buffers[shard] = []
            merged = list(
                heapq.merge(
                    self._buffers[target], pending, key=lambda r: r[0]
                )
            )
            self._buffers[target] = merged
        try:
            self._clients[shard].close()
        except Exception:  # noqa: BLE001
            pass
        self._replay_logs[shard] = []
        self._checkpoints[shard] = None

    def _client_call(self, shard: int, method: str, *args: Any) -> Any:
        """RPC with recovery: on a restartable failure the shard is
        restarted (state restored + log replayed) and the call retried."""
        while True:
            if shard in self._degraded:
                return None
            try:
                return self._clients[shard].call(method, *args)
            except TransportError as exc:
                self._on_shard_failure(shard, exc)

    def _drain_all(self) -> None:
        for shard in range(self._n):
            while shard not in self._degraded:
                try:
                    self._clients[shard].drain()
                    break
                except TransportError as exc:
                    self._on_shard_failure(shard, exc)

    def _maybe_checkpoint(self) -> None:
        if self._max_ts is None:
            return
        last = self._last_ckpt_ts
        if last is not None and self._max_ts - last < self._ckpt_interval:
            return
        self._checkpoint_now()

    def _checkpoint_now(self) -> None:
        """Checkpoint every live shard and clear its replay log.

        ``call`` drains first, so the captured state reflects every frame
        sent so far and the emptied log loses nothing."""
        self._last_ckpt_ts = self._max_ts
        for shard in self._active:
            blob = self._client_call(shard, "checkpoint")
            if shard in self._degraded:
                continue
            self._checkpoints[shard] = blob
            self._replay_logs[shard] = []
        self.checkpoints_taken += 1

    def checkpoint_now(self) -> None:
        self._guard(self._checkpoint_now)

    def degraded_shards(self) -> set[int]:
        return set(self._degraded)

    # -- dispatch ----------------------------------------------------------

    def _dispatch_all(self, advance_to: tuple[int, float] | None) -> None:
        for shard in self._active:
            client = self._clients[shard]
            records = self._buffers[shard]
            if records:
                self._buffers[shard] = []
                self._entry_send(shard, ("batch", records, advance_to))
                client = self._clients[shard]  # may have been restarted
                batcher = self._batchers[shard]
                for rtt_s, n_records in client.take_rtt_samples():
                    batcher.observe(rtt_s, n_records)
            elif advance_to is not None and (
                client.last_sent_ts is None
                or advance_to[1] > client.last_sent_ts
            ):
                # Coalesced heartbeat: one small advance frame, and only
                # when the stamp is newer — a stale clock cannot fire
                # timers or produce outputs, so skipping preserves the
                # merge order exactly.
                self._entry_send(
                    shard, ("advance", advance_to[0], advance_to[1])
                )

    def _note(self, g: int, ts: float) -> None:
        self._max_g = g
        if self._max_ts is None or ts > self._max_ts:
            self._max_ts = ts

    def _guard(self, fn, *args):
        try:
            return fn(*args)
        except BaseException:
            self.close(sync=False)
            raise

    def route_one(self, shard: int, g: int, stream: str, values: Any, ts: float) -> None:
        self._note(g, ts)
        if self._remap:
            shard = self._remap.get(shard, shard)
        buffer = self._buffers[shard]
        buffer.append((g, stream, values, ts))
        if len(buffer) >= self._batchers[shard].size:
            self._guard(self._dispatch_all, (g, self._max_ts))
        if self._ckpt_interval is not None:
            self._guard(self._maybe_checkpoint)

    def broadcast_one(self, g: int, stream: str, values: Any, ts: float) -> None:
        self._note(g, ts)
        record = (g, stream, values, ts)
        full = False
        for shard in self._active:
            buffer = self._buffers[shard]
            buffer.append(record)
            full = full or len(buffer) >= self._batchers[shard].size
        if full:
            self._guard(self._dispatch_all, (g, self._max_ts))
        if self._ckpt_interval is not None:
            self._guard(self._maybe_checkpoint)

    def advance_all(self, g: int, ts: float) -> None:
        self._note(g, ts)
        self._guard(self._dispatch_all, (g, ts))
        if self._ckpt_interval is not None:
            self._guard(self._maybe_checkpoint)

    def _route_columns(
        self,
        entries: Sequence[tuple[int, Sequence[int], str, Any]],
        advance_to: tuple[int, float] | None,
    ) -> None:
        touched = set()
        for shard, gs, stream, batch in entries:
            if self._remap:
                shard = self._remap.get(shard, shard)
            if shard in self._degraded:
                continue
            records = self._buffers[shard]
            if records:
                # Row-buffered records precede this batch in global order;
                # flush them first so the worker applies them first.
                self._buffers[shard] = []
                self._entry_send(shard, ("batch", records, None))
            self._entry_send(
                shard, ("colbatch", [(stream, gs, batch)], advance_to)
            )
            if shard in self._degraded:
                continue
            client = self._clients[shard]
            batcher = self._batchers[shard]
            for rtt_s, n_records in client.take_rtt_samples():
                batcher.observe(rtt_s, n_records)
            touched.add(shard)
        if advance_to is None:
            return
        for shard in self._active:
            if shard in touched:
                continue
            client = self._clients[shard]
            if client.last_sent_ts is None or advance_to[1] > client.last_sent_ts:
                self._entry_send(
                    shard, ("advance", advance_to[0], advance_to[1])
                )

    def route_columns(
        self,
        entries: Sequence[tuple[int, Sequence[int], str, Any]],
        advance_to: tuple[int, float] | None,
    ) -> None:
        """Hand pre-split column batches to their shards, still packed.

        ``entries`` is ``[(shard, gs, stream, ColumnBatch)]``; untouched
        shards get a clock heartbeat so timers expire at the same epoch
        boundary as the row path.
        """
        if advance_to is not None:
            self._note(advance_to[0], advance_to[1])
        self._guard(self._route_columns, entries, advance_to)
        if self._ckpt_interval is not None:
            self._guard(self._maybe_checkpoint)

    def _flush_all(self, g: int) -> None:
        self._dispatch_all(None)
        for shard in list(self._active):
            self._entry_send(shard, ("flush", g))
        self._drain_all()

    def flush_all(self, g: int) -> None:
        self._guard(self._flush_all, g)

    def _sync(self) -> None:
        if any(self._buffers):
            advance = (
                None if self._max_ts is None else (self._max_g, self._max_ts)
            )
            self._dispatch_all(advance)
        self._drain_all()

    def sync(self) -> None:
        """Barrier: drain buffers, then wait until every frame is acked."""
        self._guard(self._sync)

    def outputs(self) -> dict[str, list[list[StampedRow]]]:
        self.sync()
        collector = self._collector
        return {
            sink_id: collector.runs_for(sink_id)
            for sink_id in collector.sink_ids()
        }

    def query_state_sizes(self, label: str) -> list[int]:
        self.sync()
        return self._guard(
            lambda: [
                self._client_call(shard, "query_state_size", label) or 0
                for shard in range(self._n)
            ]
        )

    def table_rows(self, name: str) -> list[list[dict[str, Any]]]:
        self.sync()
        return self._guard(
            lambda: [
                self._client_call(shard, "table_rows", name) or []
                for shard in range(self._n)
            ]
        )

    def stats(self) -> list[dict[str, Any]]:
        stats = []
        for shard, client in enumerate(self._clients):
            entry = client.stats()
            batcher = self._batchers[shard] if self._batchers else None
            if batcher is not None:
                entry["batch_size"] = batcher.size
                entry["batch_growths"] = batcher.growths
                entry["batch_shrinks"] = batcher.shrinks
            stats.append(entry)
        return stats

    def alive_workers(self) -> int:
        return sum(1 for client in self._clients if client.alive)

    def close(self, sync: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if sync:
                self._sync()
        except TransportError:
            pass  # tearing down a failed transport must not mask the cause
        finally:
            for client in self._clients:
                try:
                    client.close()
                except Exception:  # noqa: BLE001 - keep reaping the rest
                    pass


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


class ShardedQueryHandle:
    """Handle for a query (or collected stream) on a :class:`ShardedEngine`.

    API-compatible with :class:`~repro.dsms.engine.QueryHandle` where that
    makes sense for merged output: ``results`` / ``rows()`` return the
    deterministically merged result stream; ``state_size`` sums operator
    state across shards.  Sequence numbers are re-assigned by the merge
    (shard-local numbering cannot survive a union), so compare merged
    tuples by value/timestamp, not ``seq``.
    """

    def __init__(
        self,
        sharded: "ShardedEngine",
        name: str,
        kind: str,  # "collector" | "stream" | "table" | "ddl"
        *,
        sink_id: str | None = None,
        schema: Schema | None = None,
        stream_name: str = "",
        table_name: str | None = None,
        partition_field: str | None = None,
        replicated: bool = False,
    ) -> None:
        self.sharded = sharded
        self.name = name
        self.kind = kind
        self.sink_id = sink_id
        self.schema = schema
        self.stream_name = stream_name
        self.table_name = table_name
        self.partition_field = partition_field
        self.replicated = replicated
        self.stopped = False
        # Scenario/rows() compatibility: anything with readable output
        # reports a truthy collector so callers take the .rows() path.
        self._collector = None if kind == "ddl" else self

    @property
    def results(self) -> list[Tuple]:
        """Merged output tuples, in deterministic single-engine order."""
        if self.kind not in ("collector", "stream"):
            raise EslSemanticError(
                f"query {self.name!r} has no tuple output stream "
                f"(kind={self.kind}); use rows()"
            )
        assert self.sink_id is not None and self.schema is not None
        merged = self.sharded._merged(self.sink_id)
        schema = self.schema
        stream = self.stream_name
        trusted = Tuple.trusted
        # Row width is guaranteed by the shard engine's schema (and, over
        # the pipe transport, re-checked by the frame codec), so the
        # trusted constructor is safe here.
        return [
            trusted(schema, values, ts, stream)
            for ts, _g, _s, _l, values in merged
        ]

    def rows(self) -> list[dict[str, Any]]:
        """Merged output as plain dicts."""
        if self.kind == "table":
            assert self.table_name is not None
            return self.sharded.table_rows(self.table_name)
        if self.kind == "ddl":
            return []
        return [tup.as_dict() for tup in self.results]

    @property
    def state_size(self) -> int:
        """Total retained operator state, summed across shards."""
        return sum(self.sharded._executor_for_stats().query_state_sizes(self.name))

    @property
    def stale(self) -> bool:
        """True when a shard feeding this output was dropped (``degrade``
        policy): merged results miss that shard's post-failure rows."""
        return self.sharded.stale

    def stop(self) -> None:
        self.stopped = True

    def __repr__(self) -> str:
        return (
            f"ShardedQueryHandle({self.name!r}, kind={self.kind}, "
            f"{'replicated' if self.replicated else 'partitioned'})"
        )


class ShardedEngine:
    """N hash-partitioned Engine shards behind the single-engine API.

    See the module docstring for routing rules and executor semantics.

    Args:
        n_shards: number of inner engines (>= 1).
        executor: ``'serial'`` (in-process reference), ``'parallel'``
            (persistent pipe workers, framed transport), or ``'futures'``
            (legacy one-future-per-batch ProcessPoolExecutor transport,
            kept as the ablation baseline).
        shard_by: explicit ``{stream_name: key_field}`` routing overrides;
            takes precedence over hoisted partition keys.
        compile_expressions: forwarded to every inner Engine.
        indexed_state: forwarded to every inner Engine (sequence-operator
            state indexing; see :class:`~repro.dsms.engine.Engine`).
        vectorized_admission: forwarded to every inner Engine — columnar
            batches handed over via :meth:`push_columns` evaluate
            admission masks over whole columns and materialize survivors
            only (see :class:`~repro.dsms.engine.Engine`).
        native_admission: forwarded to every inner Engine — admission
            predicates additionally compile to native C kernels where
            the platform has a C compiler, falling back to the
            vectorized/closure tiers otherwise (see
            :class:`~repro.dsms.engine.Engine`).
        batch_size: records buffered per shard before a parallel hand-off
            (the adaptive controller's starting point under ``parallel``).
        codec: pipe-transport payload encoding, ``'framed'`` (columnar
            struct packing) or ``'pickle'`` (protocol-5 pickle over the
            same framing); ignored by the other executors.
        start_method: multiprocessing start method for pipe workers
            (``None`` = platform default); ignored by other executors.
        max_inflight: un-acknowledged frames allowed per pipe worker
            before dispatch blocks (double-buffered by default).
        adaptive_batch: let observed round-trip latency grow/shrink the
            per-shard dispatch threshold (``parallel`` only).
        measure_bytes: make the ``futures`` executor count submission
            bytes by pickling each batch a second time — measurement
            overhead, so keep it off for timed runs.
        fault_tolerance: what happens when a shard worker fails
            (``parallel`` only; see ``docs/FAULT_TOLERANCE.md``):
            ``'fail_fast'`` (default — re-raise, tear down, exactly the
            pre-existing behaviour), ``'restart'`` (respawn the worker,
            restore its last checkpoint, replay the logged frames), or
            ``'degrade'`` (restart up to the budget, then drop the shard
            and remap its traffic to survivors, flagging outputs stale).
        checkpoint_interval: stream-time seconds between shard state
            checkpoints (``parallel`` only); ``None``/0 disables periodic
            checkpoints — recovery then replays from the start of the
            run.
        hang_timeout: wall-clock seconds a worker may sit on in-flight
            frames without progress before it is declared hung
            (``parallel`` only; ``None`` disables hang detection).
        fault_plan: a :class:`~repro.dsms.faults.FaultPlan` injecting
            crashes/drops/corruption/wedges into the transport — tests
            and benchmarks only.
        max_restarts: per-shard restart budget under ``restart`` /
            ``degrade`` before escalating.
        restart_backoff_s: linear backoff base between restart attempts.
    """

    def __init__(
        self,
        n_shards: int = 4,
        executor: str = "serial",
        shard_by: Mapping[str, str] | None = None,
        compile_expressions: bool = True,
        indexed_state: bool = True,
        vectorized_admission: bool = True,
        native_admission: bool = False,
        batch_size: int = 2048,
        codec: str = "framed",
        start_method: str | None = None,
        max_inflight: int = 2,
        adaptive_batch: bool = True,
        measure_bytes: bool = False,
        fault_tolerance: str = "fail_fast",
        checkpoint_interval: float | None = None,
        hang_timeout: float | None = None,
        fault_plan: Any = None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.05,
    ) -> None:
        if n_shards < 1:
            raise EslSemanticError(f"n_shards must be >= 1, got {n_shards}")
        if executor not in ("serial", "parallel", "futures"):
            raise EslSemanticError(
                f"unknown executor {executor!r}: expected 'serial', "
                "'parallel', or 'futures'"
            )
        if codec not in ("framed", "pickle"):
            raise EslSemanticError(
                f"unknown codec {codec!r}: expected 'framed' or 'pickle'"
            )
        if fault_tolerance not in ("fail_fast", "restart", "degrade"):
            raise EslSemanticError(
                f"unknown fault_tolerance {fault_tolerance!r}: expected "
                "'fail_fast', 'restart', or 'degrade'"
            )
        if executor != "parallel" and (
            fault_tolerance != "fail_fast"
            or checkpoint_interval
            or hang_timeout is not None
            or fault_plan is not None
        ):
            raise EslSemanticError(
                "fault-tolerance options (fault_tolerance, "
                "checkpoint_interval, hang_timeout, fault_plan) require "
                "executor='parallel'"
            )
        self.n_shards = n_shards
        self.executor_kind = executor
        self.batch_size = batch_size
        self.codec = codec
        self.start_method = start_method
        self.max_inflight = max_inflight
        self.adaptive_batch = adaptive_batch
        self.measure_bytes = measure_bytes
        self.fault_tolerance = fault_tolerance
        self.checkpoint_interval = checkpoint_interval
        self.hang_timeout = hang_timeout
        self.fault_plan = fault_plan
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        # Under `degrade`, remember which partition keys each shard owns
        # so a dropped shard's stale partitions can be named exactly.
        self._shard_keys: dict[int, set[Any]] | None = (
            {shard: set() for shard in range(n_shards)}
            if fault_tolerance == "degrade"
            else None
        )
        self.compile_expressions = compile_expressions
        self.indexed_state = indexed_state
        self.vectorized_admission = vectorized_admission
        self.native_admission = native_admission
        self.shard_by = {
            name.lower(): field.lower() for name, field in (shard_by or {}).items()
        }
        # The catalog engine holds schemas and compiled query metadata for
        # routing decisions; it never receives data.
        self.catalog = Engine(
            compile_expressions=compile_expressions,
            indexed_state=indexed_state,
            vectorized_admission=vectorized_admission,
        )
        self._ops: list[tuple] = []
        self._sink_specs: list[tuple[str, str, str]] = []  # (sink_id, kind, target)
        self._routes: dict[str, _Route] = {}
        self._handles: dict[str, ShardedQueryHandle] = {}
        self._table_replicated: dict[str, bool] = {}
        self._executor: (
            _SerialExecutor | _PipeExecutor | _FuturesExecutor | None
        ) = None
        self._g = 0
        self._max_ts: float | None = None
        self._query_counter = 0

    # -- setup (pre-freeze) ---------------------------------------------

    def _ensure_setup_open(self, what: str) -> None:
        if self._executor is not None:
            raise EslSemanticError(
                f"cannot {what} after data has been pushed: a ShardedEngine "
                "freezes its configuration at the first push/advance"
            )

    def _route_entry(self, name: str) -> _Route:
        key = name.lower()
        route = self._routes.get(key)
        if route is None:
            route = self._routes[key] = _Route(key)
        return route

    def create_stream(
        self,
        name: str,
        schema: Schema | str | Iterable[str],
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
    ):
        self._ensure_setup_open("declare streams")
        stream = self.catalog.create_stream(
            name, schema, allow_out_of_order, reorder_slack
        )
        self._ops.append(
            ("stream", name, stream.schema, allow_out_of_order, reorder_slack)
        )
        self._route_entry(name)
        return stream

    def create_table(self, name: str, schema: Schema | str | Iterable[str]):
        self._ensure_setup_open("declare tables")
        table = self.catalog.create_table(name, schema)
        self._ops.append(("table", name, table.schema))
        return table

    def register_udf(self, name: str, fn: Callable[..., Any], strict: bool = True) -> None:
        """Register a scalar UDF on every shard.

        With the parallel executor the function must be importable/picklable
        from worker processes (module-level functions are; lambdas are not
        under the ``spawn`` start method).
        """
        self._ensure_setup_open("register UDFs")
        self.catalog.register_udf(name, fn, strict=strict)
        self._ops.append(("udf", name, fn, strict))

    def collect(self, stream_name: str) -> ShardedQueryHandle:
        """Merged collector over a stream (the sharded ``Engine.collect``)."""
        self._ensure_setup_open("attach collectors")
        stream = self.catalog.streams.get(stream_name)
        key = stream.name.lower()
        sink_id = f"s:{key}"
        if all(spec[0] != sink_id for spec in self._sink_specs):
            self._sink_specs.append((sink_id, "stream", stream.name))
        handle = ShardedQueryHandle(
            self,
            f"collect:{key}",
            "stream",
            sink_id=sink_id,
            schema=stream.schema,
            stream_name=stream.name,
        )
        return handle

    # -- query registration and routing ---------------------------------

    def query(self, text: str, name: str | None = None) -> ShardedQueryHandle:
        """Register an ESL-EV statement block on every shard.

        Routing metadata is derived from the *last* statement in *text*
        (the one whose handle a single Engine would return); register one
        continuous SELECT per call so every query's routing is checked.
        """
        self._ensure_setup_open("register queries")
        self._query_counter += 1
        label = name or f"q{self._query_counter}"
        catalog_handle = self.catalog.query(text, name=label)
        self._ops.append(("query", text, label))
        # DDL inside the text (or an auto-created INSERT INTO target) may
        # have added streams; give them route entries.
        for stream in self.catalog.streams:
            self._route_entry(stream.name)

        sources = catalog_handle.source_streams
        if sources is None:  # pure DDL block: nothing to route
            handle = ShardedQueryHandle(self, label, "ddl")
            self._handles[label] = handle
            return handle

        replicated = self._resolve_routing(catalog_handle, label)

        partition_field = catalog_handle.partition_field
        sink_table = getattr(catalog_handle, "sink_table", None)
        if catalog_handle.output is not None:
            # INSERT INTO stream: route the derived stream for downstream
            # consumers, and stamp its output for merged reads.
            out_route = self._route_entry(catalog_handle.output.name)
            if out_route.policy is None:
                if replicated:
                    out_route.policy = "broadcast"
                else:
                    out_route.policy = "hash"
                    out_schema = catalog_handle.output.schema
                    if partition_field is not None and any(
                        field.lower() == partition_field
                        for field in out_schema.names
                    ):
                        out_route.field = partition_field
                out_route.owner = label
            sink_id = f"q:{label}"
            self._sink_specs.append((sink_id, "query", label))
            handle = ShardedQueryHandle(
                self,
                label,
                "stream",
                sink_id=sink_id,
                schema=catalog_handle.output.schema,
                stream_name=catalog_handle.output.name,
                partition_field=partition_field,
                replicated=replicated,
            )
        elif catalog_handle._collector is not None:
            sink_id = f"q:{label}"
            self._sink_specs.append((sink_id, "query", label))
            handle = ShardedQueryHandle(
                self,
                label,
                "collector",
                sink_id=sink_id,
                schema=catalog_handle._collector.schema,
                partition_field=partition_field,
                replicated=replicated,
            )
        elif sink_table is not None:
            self._table_replicated[sink_table.name.lower()] = replicated
            handle = ShardedQueryHandle(
                self,
                label,
                "table",
                table_name=sink_table.name,
                partition_field=partition_field,
                replicated=replicated,
            )
        else:  # pragma: no cover - every SELECT has one of the three sinks
            handle = ShardedQueryHandle(self, label, "ddl")
        self._handles[label] = handle
        return handle

    def _resolve_routing(self, catalog_handle: QueryHandle, label: str) -> bool:
        """Fix routing policies for the query's source streams.

        Returns True when the query must run *replicated* (all sources
        broadcast, output collected from shard 0).
        """
        sources = [name.lower() for name in (catalog_handle.source_streams or ())]
        if not sources:
            return True  # table-only FROM: every shard computes identically
        partition_field = catalog_handle.partition_field
        desired: dict[str, str | None] = {}
        for source in sources:
            schema = self.catalog.streams.get(source).schema
            field = self.shard_by.get(source)
            if field is None and partition_field is not None and any(
                name.lower() == partition_field for name in schema.names
            ):
                field = partition_field
            if field is not None and not any(
                name.lower() == field for name in schema.names
            ):
                raise EslSemanticError(
                    f"shard_by key {field!r} is not a field of stream "
                    f"{source!r} ({', '.join(schema.names)})"
                )
            desired[source] = field

        # A query is partitioned only when every source can be keyed AND no
        # source is already pinned to broadcast; otherwise it is replicated
        # and needs *all* of its sources on every shard.
        existing = {source: self._routes[source] for source in desired}
        partitioned = all(field is not None for field in desired.values()) and not any(
            route.policy == "broadcast" for route in existing.values()
        )
        if not partitioned:
            for source, route in existing.items():
                if route.policy == "hash":
                    raise EslSemanticError(
                        f"query {label!r} needs stream {route.stream!r} on every "
                        f"shard, but query {route.owner!r} hash-routes it by "
                        f"{route.field!r}; run {label!r} on a separate "
                        "ShardedEngine or add a shard_by override that keys "
                        "this query too"
                    )
                route.policy = "broadcast"
                route.owner = route.owner or label
            return True
        for source, route in existing.items():
            field = desired[source]
            if route.policy is None:
                route.policy = "hash"
                route.field = field
                route.owner = label
            elif route.field is None or route.field != field:
                raise EslSemanticError(
                    f"conflicting shard keys for stream {route.stream!r}: query "
                    f"{route.owner!r} routes by {route.field!r}, query {label!r} "
                    f"needs {field!r}; use shard_by to pick one key or run the "
                    "queries on separate ShardedEngines"
                )
        return False

    # -- freeze ----------------------------------------------------------

    def _make_key_fn(self, stream_name: str, field: str) -> Callable[[Any], Any]:
        schema = self.catalog.streams.get(stream_name).schema
        actual = None
        position = 0
        for index, name in enumerate(schema.names):
            if name.lower() == field:
                actual, position = name, index
                break
        if actual is None:  # pragma: no cover - validated at routing time
            raise EslSemanticError(
                f"stream {stream_name!r} has no field {field!r}"
            )

        def key_of(values: Any) -> Any:
            # type-is-dict first: typing.Mapping's __instancecheck__ costs
            # more than the rest of this function on the per-record path.
            if type(values) is dict or isinstance(values, _MappingABC):
                return values.get(actual)
            return values[position]

        return key_of

    def _freeze(self) -> None:
        if self._executor is not None:
            return
        for route in self._routes.values():
            if route.policy is None:
                # Never consumed by a partitioned query: broadcasting is
                # always safe (replicated consumers read shard 0).
                route.policy = "broadcast"
            if route.policy == "hash" and route.field is not None:
                route.key_fn = self._make_key_fn(route.stream, route.field)
        sinks: list[tuple[str, str, str, str]] = []
        for sink_id, kind, target in self._sink_specs:
            if kind == "query":
                ship = "zero" if self._handles[target].replicated else "all"
            else:
                route = self._routes[target.lower()]
                ship = "zero" if route.policy == "broadcast" else "all"
            sinks.append((sink_id, kind, target, ship))
        stream_table = tuple(
            (stream.name.lower(), stream.schema)
            for stream in self.catalog.streams
        )
        spec = ShardSpec(
            self._ops, sinks, self.compile_expressions, self.indexed_state,
            stream_table, self.vectorized_admission, self.native_admission,
        )
        if self.executor_kind == "serial":
            self._executor = _SerialExecutor(spec, self.n_shards)
        elif self.executor_kind == "futures":
            self._executor = _FuturesExecutor(
                spec, self.n_shards, self.batch_size,
                measure_bytes=self.measure_bytes,
            )
        else:
            self._executor = _PipeExecutor(
                spec,
                self.n_shards,
                self.batch_size,
                codec=self.codec,
                start_method=self.start_method,
                max_inflight=self.max_inflight,
                adaptive_batch=self.adaptive_batch,
                fault_tolerance=self.fault_tolerance,
                checkpoint_interval=self.checkpoint_interval,
                hang_timeout=self.hang_timeout,
                fault_plan=self.fault_plan,
                max_restarts=self.max_restarts,
                restart_backoff_s=self.restart_backoff_s,
            )

    def start(self) -> "ShardedEngine":
        """Freeze the configuration and wait for worker processes.

        Optional — the first push freezes implicitly — but benchmarks
        call it so process spawn and engine construction stay out of
        timed regions, for every executor alike.
        """
        self._freeze()
        warm_up = getattr(self._executor, "warm_up", None)
        if warm_up is not None:
            warm_up()
        return self

    def _executor_for_stats(self):
        self._freeze()
        return self._executor

    # -- time & data -----------------------------------------------------

    @property
    def now(self) -> float:
        """Latest timestamp routed through the engine (0.0 before any)."""
        return self._max_ts if self._max_ts is not None else 0.0

    def push(
        self,
        stream_name: str,
        values: Mapping[str, Any] | Sequence[Any],
        ts: float,
    ) -> None:
        """Route one record: hash-partitioned streams go to one shard (all
        other shards receive the clock advance), broadcast streams go to
        every shard.  Unlike :meth:`Engine.push` this cannot return the
        delivered Tuple — with the parallel executor delivery happens in a
        worker process."""
        self._freeze()
        route = self._routes.get(stream_name.lower())
        if route is None:
            self.catalog.streams.get(stream_name)  # raises UnknownStreamError
            raise AssertionError("unreachable")  # pragma: no cover
        ts = float(ts)
        g = self._g
        self._g = g + 1
        if self._max_ts is None or ts > self._max_ts:
            self._max_ts = ts
        if route.policy == "hash":
            key_fn = route.key_fn
            if key_fn is None:
                raise EslSemanticError(
                    f"stream {route.stream!r} is partitioned by its producing "
                    "query but carries no known shard key; it can be collected "
                    "but not pushed to"
                )
            key = key_fn(values)
            shard = shard_of(key, self.n_shards)
            if self._shard_keys is not None:
                self._shard_keys[shard].add(key)
            self._executor.route_one(shard, g, route.stream, values, ts)
        else:
            self._executor.broadcast_one(g, route.stream, values, ts)

    def push_columns(self, stream_name: str, batch: ColumnBatch) -> int:
        """Route a whole :class:`~repro.dsms.columns.ColumnBatch`.

        Under the parallel (pipe) executor the batch is key-split into
        per-shard sub-batches that stay columnar across the wire and all
        the way into shard admission (survivor-only materialization);
        executors without a columnar path fall back to per-row
        :meth:`push`, which is record-for-record equivalent.
        """
        self._freeze()
        route = self._routes.get(stream_name.lower())
        if route is None:
            self.catalog.streams.get(stream_name)  # raises UnknownStreamError
            raise AssertionError("unreachable")  # pragma: no cover
        schema = self.catalog.streams.get(stream_name).schema
        if batch.schema is not schema and batch.schema != schema:
            raise EslSemanticError(
                f"column batch schema {batch.schema!r} does not match stream "
                f"{stream_name!r} schema {schema!r}"
            )
        n = len(batch)
        if not n:
            return 0
        executor = self._executor
        route_columns = getattr(executor, "route_columns", None)
        if route_columns is None:
            # Executors without a columnar path (futures) interleave
            # shards per record; replay the batch row by row for exact
            # stamps.
            push = self.push
            for values, ts in batch.rows():
                push(stream_name, values, ts)
            return n
        g0 = self._g
        self._g = g0 + n
        tss = batch.timestamps
        ts_max = max(tss)
        if self._max_ts is None or ts_max > self._max_ts:
            self._max_ts = ts_max
        advance_to = (self._g - 1, self._max_ts)
        if route.policy == "hash":
            if route.key_fn is None:
                raise EslSemanticError(
                    f"stream {route.stream!r} is partitioned by its producing "
                    "query but carries no known shard key; it can be collected "
                    "but not pushed to"
                )
            position = next(
                index
                for index, name in enumerate(schema.names)
                if name.lower() == route.field
            )
            key_column = batch.columns[position]
            n_shards = self.n_shards
            track = self._shard_keys
            buckets: dict[int, list[int]] = {}
            for i in range(n):
                shard = shard_of(key_column[i], n_shards)
                buckets.setdefault(shard, []).append(i)
                if track is not None:
                    track[shard].add(key_column[i])
            remap = getattr(executor, "_remap", None)
            if remap:
                # Degraded shards: fold their buckets into the survivor's
                # before assembly so each sub-batch stays ascending in g
                # (and therefore in per-stream timestamp order).
                for src, dst in remap.items():
                    moved = buckets.pop(src, None)
                    if moved is not None:
                        buckets.setdefault(dst, []).extend(moved)
                        buckets[dst].sort()
            entries = []
            for shard in sorted(buckets):
                indices = buckets[shard]
                sub = batch if len(indices) == n else batch.select(indices)
                entries.append((shard, [g0 + i for i in indices], route.stream, sub))
        else:
            gs = list(range(g0, g0 + n))
            entries = [
                (shard, gs, route.stream, batch)
                for shard in range(self.n_shards)
            ]
        route_columns(entries, advance_to)
        return n

    def push_batch(
        self,
        stream_name: str,
        batch: (
            Iterable[tuple[Mapping[str, Any] | Sequence[Any], float]] | ColumnBatch
        ),
    ) -> int:
        """Route many ``(values, ts)`` records — or a ColumnBatch — to one
        stream."""
        if isinstance(batch, ColumnBatch):
            return self.push_columns(stream_name, batch)
        push = self.push
        count = 0
        for values, ts in batch:
            push(stream_name, values, ts)
            count += 1
        return count

    def run_trace(
        self, trace: Iterable[tuple[str, Mapping[str, Any] | Sequence[Any], float]]
    ) -> int:
        """Route a whole trace in order: ``(stream, values, ts)`` records
        and ``(stream, ColumnBatch)`` entries may be interleaved."""
        push = self.push
        count = 0
        for record in trace:
            if len(record) == 2:
                stream_name, batch = record
                count += self.push_columns(stream_name, batch)
                continue
            stream_name, values, ts = record
            push(stream_name, values, ts)
            count += 1
        return count

    def advance_time(self, ts: float) -> None:
        """Heartbeat: broadcast a clock advance to every shard."""
        self._freeze()
        ts = float(ts)
        if self._max_ts is None or ts > self._max_ts:
            self._max_ts = ts
        self._executor.advance_all(self._g, ts)

    def flush(self) -> None:
        """End of stream: release reorder buffers, fire remaining timers."""
        self._freeze()
        self._executor.flush_all(self._g)

    # -- merged reads ----------------------------------------------------

    def _merged(self, sink_id: str) -> list[StampedRow]:
        self._freeze()
        runs = self._executor.outputs().get(sink_id)
        if not runs:
            return []
        return list(merge_runs(runs))

    def table_rows(self, name: str) -> list[dict[str, Any]]:
        """Merged table contents.

        Replicated tables (every shard computed the same rows) read from
        shard 0; partitioned tables concatenate shard contents in shard
        order — per-shard insert order is preserved, global order across
        shards is not meaningful for tables (they carry no timestamps).
        """
        self._freeze()
        per_shard = self._executor.table_rows(name)
        if self._table_replicated.get(name.lower(), True):
            return per_shard[0]
        return [row for rows in per_shard for row in rows]

    def handle(self, label: str) -> ShardedQueryHandle:
        return self._handles[label]

    def route_for(self, stream_name: str) -> tuple[str | None, str | None]:
        """The (policy, field) a stream is routed by — for tests/tools."""
        route = self._routes.get(stream_name.lower())
        if route is None:
            return (None, None)
        return (route.policy, route.field)

    def transport_stats(self) -> dict[str, Any]:
        """Per-shard transport counters, plus summed totals.

        ``per_shard`` entries carry whatever the active executor tracks —
        for the pipe transport: ``frames_sent``, ``heartbeat_frames``,
        ``records_sent``, ``bytes_sent``/``bytes_received``,
        ``round_trips``, router-side ``encode_s``/``decode_s``,
        worker-side ``worker_encode_s``/``worker_decode_s``, and the
        adaptive controller's ``batch_size``/``batch_growths``/
        ``batch_shrinks``; for the futures executor: frame/heartbeat/
        record/round-trip counts (bytes only under ``measure_bytes``).
        The serial executor has no transport, so ``per_shard`` is empty.
        Counters survive :meth:`close` — benchmarks read them after
        tearing the workers down.
        """
        self._freeze()
        stats_fn = getattr(self._executor, "stats", None)
        per_shard = stats_fn() if stats_fn is not None else []
        totals: dict[str, Any] = {}
        for entry in per_shard:
            for key, value in entry.items():
                if key == "shard" or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        return {
            "executor": self.executor_kind,
            "codec": self.codec if self.executor_kind == "parallel" else None,
            "n_shards": self.n_shards,
            "per_shard": per_shard,
            "totals": totals,
        }

    def execution_tier(self) -> dict[str, Any]:
        """The admission execution tier the inner engines run at.

        Computed from the configured flags and compiler availability on
        this host — the same degradation ladder as
        :meth:`~repro.dsms.engine.Engine.execution_tier` (native →
        vector → closure → interpreted).  Per-shard native counters live
        inside the worker processes and are not aggregated here.
        """
        if self.native_admission:
            requested = "native"
        elif self.vectorized_admission:
            requested = "vector"
        elif self.compile_expressions:
            requested = "closure"
        else:
            requested = "interpreted"
        active = requested
        info: dict[str, Any] = {"requested": requested}
        if self.native_admission:
            from .native import find_compiler

            compiler = find_compiler()
            if compiler is None:
                if self.vectorized_admission:
                    active = "vector"
                elif self.compile_expressions:
                    active = "closure"
                else:
                    active = "interpreted"
            info["compiler"] = compiler
        info["active"] = active
        # Pairing masks ride the same flags inside each shard's engine and
        # share admission's degradation ladder.
        info["pairing"] = {"requested": requested, "active": active}
        return info

    def alive_workers(self) -> int:
        """Worker processes still running (always 0 for the serial
        executor, and 0 after :meth:`close` or an error teardown)."""
        if self._executor is None:
            return 0
        fn = getattr(self._executor, "alive_workers", None)
        return fn() if fn is not None else 0

    # -- fault tolerance --------------------------------------------------

    def checkpoint(self) -> None:
        """Force an immediate checkpoint of every live shard.

        Normally checkpoints fire on ``checkpoint_interval`` stream-time
        boundaries; this forces one now (``parallel`` executor only).
        """
        self._freeze()
        fn = getattr(self._executor, "checkpoint_now", None)
        if fn is None:
            raise EslSemanticError(
                "checkpointing requires executor='parallel'"
            )
        fn()

    @property
    def degraded_shards(self) -> set[int]:
        """Shards dropped by the ``degrade`` policy (empty otherwise)."""
        if self._executor is None:
            return set()
        fn = getattr(self._executor, "degraded_shards", None)
        return fn() if fn is not None else set()

    @property
    def stale(self) -> bool:
        """True when any shard was dropped: merged outputs are missing
        that shard's post-failure contribution."""
        return bool(self.degraded_shards)

    def stale_partitions(self) -> dict[int, list[Any]]:
        """Partition keys whose owning shard was dropped, per shard.

        Only populated under ``fault_tolerance='degrade'`` (key tracking
        is off otherwise — it costs a set insert per routed record).
        """
        degraded = self.degraded_shards
        if not degraded or self._shard_keys is None:
            return {shard: [] for shard in degraded}
        return {
            shard: sorted(self._shard_keys.get(shard, ()), key=str)
            for shard in degraded
        }

    def fault_stats(self) -> dict[str, Any]:
        """Recovery counters and the supervisor's decision log."""
        executor = self._executor
        supervisor = getattr(executor, "_supervisor", None)
        return {
            "policy": self.fault_tolerance,
            "recoveries": getattr(executor, "recoveries", 0),
            "checkpoints": getattr(executor, "checkpoints_taken", 0),
            "degraded_shards": sorted(self.degraded_shards),
            "events": list(getattr(supervisor, "events", []) or []),
        }

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut down worker processes (parallel) / stop queries (serial)."""
        if self._executor is not None:
            self._executor.close()

    stop_all = close

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(n_shards={self.n_shards}, "
            f"executor={self.executor_kind!r}, queries={len(self._handles)})"
        )
