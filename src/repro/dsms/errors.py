"""Exception hierarchy for the DSMS substrate and the ESL-EV layer.

Every error raised by this package derives from :class:`EslError`, so
applications can catch one base class.  The hierarchy mirrors the phases a
query moves through: parsing (:class:`EslSyntaxError`), semantic analysis
(:class:`EslSemanticError`), and runtime execution (:class:`EslRuntimeError`
and its children).
"""

from __future__ import annotations


class EslError(Exception):
    """Base class for all errors raised by the repro package."""


class EslSyntaxError(EslError):
    """Raised by the lexer or parser on malformed ESL-EV text.

    Carries the source position so callers can point at the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EslSemanticError(EslError):
    """Raised during semantic analysis: unknown stream, bad column, etc."""


class EslRuntimeError(EslError):
    """Base class for errors raised while a continuous query is running."""


class SchemaError(EslRuntimeError):
    """A tuple does not conform to its stream's declared schema."""


class UnknownStreamError(EslRuntimeError):
    """A query references a stream that was never registered."""


class UnknownTableError(EslRuntimeError):
    """A query references a table that was never registered."""


class UnknownFunctionError(EslRuntimeError):
    """An expression calls a scalar function or UDF that is not registered."""


class UnknownAggregateError(EslRuntimeError):
    """A query calls an aggregate or UDA that is not registered."""


class OutOfOrderError(EslRuntimeError):
    """A tuple arrived with a timestamp earlier than the stream's clock.

    The DSMS assumes append-only, timestamp-ordered streams (paper section 1).
    Sources that cannot guarantee order must sort or buffer before pushing.

    Attributes:
        stream: name of the stream that rejected the tuple (or None).
        ts: the offending tuple's timestamp.
        last_ts: the stream's last-accepted timestamp.
    """

    def __init__(
        self,
        message: str,
        stream: str | None = None,
        ts: float | None = None,
        last_ts: float | None = None,
    ) -> None:
        self.stream = stream
        self.ts = ts
        self.last_ts = last_ts
        super().__init__(message)


class ClockError(EslRuntimeError):
    """The virtual clock was asked to move backwards."""


class WindowError(EslRuntimeError):
    """A window specification is invalid (negative range, bad anchor...)."""


class TransportError(EslRuntimeError):
    """The shard transport failed: a worker died, a pipe closed, or a
    worker reported an exception (the message carries its traceback)."""


class WorkerCrashed(TransportError):
    """A shard worker process died: the pipe reached EOF, a send hit a
    closed pipe, or the process exited without a STOP handshake.  A
    crash is restartable — the worker's engine state is gone, but a
    checkpoint + replay log can rebuild it."""


class WorkerHung(TransportError):
    """A shard worker stopped making progress: frames are in flight but
    no acknowledgement arrived within the hang deadline.  Hangs are
    restartable under supervision (the wedged process is killed first)."""


class FrameCodecError(TransportError):
    """A transport frame could not be encoded or decoded: short, truncated,
    corrupt (CRC mismatch), or referencing unknown interned ids."""


class FrameCorrupt(FrameCodecError):
    """A frame failed its integrity check on the wire (CRC mismatch,
    truncation, bad magic) — distinguished from codec misuse so the
    supervisor can classify it as a transport fault and restart."""


class CheckpointError(EslRuntimeError):
    """Shard state could not be checkpointed or restored: an operator in
    the plan does not support state capture, or the checkpoint blob does
    not match the engine the restore is applied to."""


class EpcFormatError(EslError):
    """An EPC code or EPC pattern string is malformed."""
