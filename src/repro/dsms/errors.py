"""Exception hierarchy for the DSMS substrate and the ESL-EV layer.

Every error raised by this package derives from :class:`EslError`, so
applications can catch one base class.  The hierarchy mirrors the phases a
query moves through: parsing (:class:`EslSyntaxError`), semantic analysis
(:class:`EslSemanticError`), and runtime execution (:class:`EslRuntimeError`
and its children).
"""

from __future__ import annotations


class EslError(Exception):
    """Base class for all errors raised by the repro package."""


class EslSyntaxError(EslError):
    """Raised by the lexer or parser on malformed ESL-EV text.

    Carries the source position so callers can point at the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EslSemanticError(EslError):
    """Raised during semantic analysis: unknown stream, bad column, etc."""


class EslRuntimeError(EslError):
    """Base class for errors raised while a continuous query is running."""


class SchemaError(EslRuntimeError):
    """A tuple does not conform to its stream's declared schema."""


class UnknownStreamError(EslRuntimeError):
    """A query references a stream that was never registered."""


class UnknownTableError(EslRuntimeError):
    """A query references a table that was never registered."""


class UnknownFunctionError(EslRuntimeError):
    """An expression calls a scalar function or UDF that is not registered."""


class UnknownAggregateError(EslRuntimeError):
    """A query calls an aggregate or UDA that is not registered."""


class OutOfOrderError(EslRuntimeError):
    """A tuple arrived with a timestamp earlier than the stream's clock.

    The DSMS assumes append-only, timestamp-ordered streams (paper section 1).
    Sources that cannot guarantee order must sort or buffer before pushing.
    """


class ClockError(EslRuntimeError):
    """The virtual clock was asked to move backwards."""


class WindowError(EslRuntimeError):
    """A window specification is invalid (negative range, bad anchor...)."""


class TransportError(EslRuntimeError):
    """The shard transport failed: a worker died, a pipe closed, or a
    worker reported an exception (the message carries its traceback)."""


class FrameCodecError(TransportError):
    """A transport frame could not be encoded or decoded: short, truncated,
    corrupt (CRC mismatch), or referencing unknown interned ids."""


class EpcFormatError(EslError):
    """An EPC code or EPC pattern string is malformed."""
