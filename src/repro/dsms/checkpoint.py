"""Shard state checkpointing: capture and restore a live engine's state.

The fault-tolerant sharded executor (``fault_tolerance="restart"``)
periodically snapshots each shard worker's engine so a crashed worker can
be respawned, restored, and fed only the post-checkpoint replay log —
resuming with zero output divergence from an unfaulted run.

Engines are **not** pickled wholesale: a compiled query plan is a web of
closures, timers, and subscriber lists that neither pickles nor needs to.
Instead, both sides rely on the fact that a shard engine is rebuilt
deterministically from its :class:`~repro.dsms.sharding.ShardSpec` — the
fresh worker replays the same DDL and queries, producing the same streams,
tables, and operators in the same order.  What a checkpoint carries is
only the *mutable* state layered on that skeleton:

* the virtual clock's current time,
* per-stream bookkeeping (last accepted ts, tuple count, reorder buffer),
* the engine-scoped tuple sequence counter (captured **non-consumingly**,
  so checkpointing never perturbs sequence numbering),
* table rows and index definitions, and
* every registered *checkpointable component* — operators and window
  buffers that expose ``snapshot_state()`` / ``restore_state(blob)`` over
  plain picklable data.  Components register with the engine in compile
  order, so the Nth component of the restored engine is the Nth component
  of the checkpointed one by construction.

Tuples inside operator state are serialized as ``(stream, values, ts,
seq)`` and rebuilt against the restored engine's registered schemas with
their original sequence numbers — ``(ts, seq)`` ordering inside windows
and histories survives the round trip exactly.

Plans containing operators without state-capture support (EXCEPTION_SEQ,
SEQ+ :class:`~repro.core.operators.star.StarSeqOperator`) register an
:class:`UnsupportedState` marker instead; checkpointing such an engine
raises :class:`~repro.dsms.errors.CheckpointError` with the operator
named, rather than silently dropping its state.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from .errors import CheckpointError
from .tuples import Tuple

CHECKPOINT_VERSION = 1


def pack_tuple(tup: Tuple) -> tuple[str, tuple, float, int]:
    """Serialize a stream tuple to plain data (schema carried by name)."""
    return (tup.stream, tup.values, tup.ts, tup.seq)


def tuple_unpacker(engine: Any) -> Callable[[tuple], Tuple]:
    """An ``unpack(packed) -> Tuple`` closure bound to *engine*'s catalogs.

    Resolves each packed tuple's schema **and canonical stream-name
    string** through the engine's stream registry, so identity checks on
    ``tup.stream`` inside operator dispatch keep working after restore.
    """
    schemas: dict[str, tuple[str, Any]] = {}

    def unpack(packed: tuple) -> Tuple:
        stream_name, values, ts, seq = packed
        entry = schemas.get(stream_name)
        if entry is None:
            if not stream_name or stream_name not in engine.streams:
                raise CheckpointError(
                    f"checkpointed tuple references stream {stream_name!r}, "
                    "which the restored engine does not declare"
                )
            stream = engine.streams.get(stream_name)
            entry = schemas[stream_name] = (stream.name, stream.schema)
        name, schema = entry
        return Tuple(schema, values, ts, name, seq=seq)

    return unpack


class WindowBufferState:
    """Checkpoint adapter for a compiler-owned window buffer.

    Exists-probe buffers (:class:`~repro.dsms.windows.RangeWindowBuffer` /
    ``RowsWindowBuffer``) live inside compiled closures with no back-ref
    from the engine; the compiler registers one of these adapters so the
    buffer's live tuples cross checkpoints.
    """

    def __init__(self, engine: Any, buffer: Any) -> None:
        self.engine = engine
        self.buffer = buffer

    def snapshot_state(self) -> dict[str, Any]:
        return {
            "tuples": [pack_tuple(t) for t in self.buffer],
            "latest": getattr(self.buffer, "latest_ts", None),
        }

    def restore_state(self, blob: dict[str, Any]) -> None:
        unpack = tuple_unpacker(self.engine)
        buffer = self.buffer
        buffer.clear()
        for packed in blob["tuples"]:
            buffer._tuples.append(unpack(packed))
        if hasattr(buffer, "_latest"):
            buffer._latest = blob["latest"]


class UnsupportedState:
    """Placeholder component for operators without checkpoint support.

    Registered in place of a real snapshot/restore pair so an attempt to
    checkpoint a plan containing the operator fails loudly, naming it.
    """

    def __init__(self, label: str) -> None:
        self.label = label

    def snapshot_state(self) -> Any:
        raise CheckpointError(
            f"{self.label} does not support state checkpointing; run this "
            "query with fault_tolerance='fail_fast' (the default)"
        )

    def restore_state(self, blob: Any) -> None:
        raise CheckpointError(
            f"{self.label} does not support state restore"
        )


def capture_engine_state(engine: Any) -> dict[str, Any]:
    """Snapshot everything mutable about *engine* into plain data.

    The engine is left untouched — in particular the sequence counter is
    read through ``itertools.count.__reduce__`` rather than ``next()``,
    so capturing a checkpoint never shifts tuple numbering relative to a
    run that never checkpoints.
    """
    if engine.histories:
        raise CheckpointError(
            "engines with enabled snapshot histories cannot be "
            "checkpointed yet; drop enable_history() or use "
            "fault_tolerance='fail_fast'"
        )
    streams_state: dict[str, Any] = {}
    for stream in engine.streams:
        streams_state[stream.name.lower()] = {
            "last_ts": stream.last_ts,
            "count": stream.count,
            "max_seen": stream._max_seen,
            "reorder": [pack_tuple(t) for t in stream._reorder_buffer],
        }
    tables_state: dict[str, Any] = {}
    for table in engine.tables:
        tables_state[table.name.lower()] = {
            "rows": list(table._rows),
            "indexes": [list(columns) for columns in table._indexes],
        }
    # itertools.count pickles as (count, (next_value,)): read the position
    # without consuming it.
    sequencer_pos = engine.streams._sequencer.__reduce__()[1][0]
    return {
        "version": CHECKPOINT_VERSION,
        "clock_now": engine.clock._now,
        "sequencer": sequencer_pos,
        "streams": streams_state,
        "tables": tables_state,
        "components": [
            component.snapshot_state() for component in engine.checkpointables
        ],
    }


def restore_engine_state(engine: Any, state: dict[str, Any]) -> None:
    """Apply a :func:`capture_engine_state` blob to a freshly built engine.

    *engine* must have been rebuilt from the same spec (same DDL, same
    queries, same flags) that produced the checkpoint; mismatches are
    detected where cheap (component count, stream/table names) and raise
    :class:`CheckpointError`.
    """
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {state.get('version')!r} does not match "
            f"this engine's {CHECKPOINT_VERSION}"
        )
    components = state["components"]
    if len(components) != len(engine.checkpointables):
        raise CheckpointError(
            f"checkpoint carries {len(components)} component states but "
            f"the rebuilt engine registered {len(engine.checkpointables)}; "
            "the spec the worker was rebuilt from does not match"
        )
    # Clock first: component restores may re-arm timers against restored
    # virtual time.
    engine.clock._now = state["clock_now"]
    # One shared counter resumed at the captured position; every stream
    # re-binds to it and drops its cached ingester closure (the closure
    # captured the old counter object).
    sequencer = itertools.count(state["sequencer"])
    engine.streams._sequencer = sequencer
    unpack = tuple_unpacker(engine)
    for key, blob in state["streams"].items():
        if key not in engine.streams:
            raise CheckpointError(
                f"checkpoint carries state for stream {key!r}, which the "
                "rebuilt engine does not declare"
            )
        stream = engine.streams.get(key)
        stream.last_ts = blob["last_ts"]
        stream.count = blob["count"]
        stream._max_seen = blob["max_seen"]
        stream._reorder_buffer = [unpack(p) for p in blob["reorder"]]
    for stream in engine.streams:
        stream._sequencer = sequencer
        stream._ingester = None
    for key, blob in state["tables"].items():
        if key not in engine.tables:
            raise CheckpointError(
                f"checkpoint carries state for table {key!r}, which the "
                "rebuilt engine does not declare"
            )
        table = engine.tables.get(key)
        table._rows = [tuple(row) for row in blob["rows"]]
        for columns in blob["indexes"]:
            table.create_index(*columns)
    for component, blob in zip(engine.checkpointables, components):
        component.restore_state(blob)
