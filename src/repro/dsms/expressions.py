"""Expression AST and evaluator.

ESL-EV predicates and select-list items compile into these nodes.  Evaluation
follows SQL three-valued logic: any comparison involving NULL (Python
``None``) yields NULL, ``AND``/``OR`` use Kleene logic, and a WHERE clause
treats NULL as false.

Evaluation happens against an :class:`Env`, which binds stream aliases to
tuples.  A column reference ``r1.tag_id`` looks up alias ``r1``; a bare
``tag_id`` searches all bound tuples and must be unambiguous.

These nodes are deliberately plain (no metaclass tricks): each has an
``eval(env)`` method and a ``references()`` helper used by the optimizer for
predicate pushdown.

Besides the tree-walking ``eval(env)``, every node supports
``compile(ctx) -> Callable[[Env], Any]``: lowering to nested Python
closures.  The compiled form is semantically identical (same three-valued
logic, same errors) but skips per-eval dispatch, folds constants, and —
when the :class:`CompileContext` knows an alias's schema — turns
``alias.field`` into a single positional list index instead of a schema
lookup.  Nodes without a specialized lowering fall back to their ``eval``
bound method, so ``compile`` never changes behaviour, only speed.
"""

from __future__ import annotations

import operator as _operator
import re

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import EslRuntimeError, EslSemanticError, UnknownFunctionError
from .schema import Schema
from .tuples import Tuple


class Env:
    """Alias -> tuple bindings for one evaluation.

    Also carries the function registry (scalar built-ins + UDFs) and an
    optional parent, so correlated sub-queries can see outer bindings.
    """

    __slots__ = ("bindings", "functions", "parent")

    def __init__(
        self,
        bindings: Mapping[str, Tuple] | None = None,
        functions: Mapping[str, Callable[..., Any]] | None = None,
        parent: "Env | None" = None,
    ) -> None:
        self.bindings: dict[str, Tuple] = dict(bindings or {})
        self.functions = functions if functions is not None else {}
        self.parent = parent

    def child(self, bindings: Mapping[str, Tuple]) -> "Env":
        """A nested scope sharing this env's functions."""
        return Env(bindings, self.functions, parent=self)

    def bind(self, alias: str, tup: Tuple) -> None:
        self.bindings[alias.lower()] = tup

    def lookup_alias(self, alias: str) -> Tuple:
        key = alias.lower()
        env: Env | None = self
        while env is not None:
            if key in env.bindings:
                return env.bindings[key]
            env = env.parent
        raise EslRuntimeError(f"alias {alias!r} is not bound")

    def lookup_column(self, alias: str | None, field: str) -> Any:
        if alias is not None:
            return self.lookup_alias(alias)[field]
        # Bare column: search this scope, then parents.
        env: Env | None = self
        while env is not None:
            matches = [t for t in env.bindings.values() if field in t]
            if len(matches) == 1:
                return matches[0][field]
            if len(matches) > 1:
                raise EslRuntimeError(
                    f"ambiguous column {field!r}: bound in multiple streams"
                )
            env = env.parent
        raise EslRuntimeError(f"unbound column {field!r}")

    def lookup_function(self, name: str) -> Callable[..., Any]:
        env: Env | None = self
        while env is not None:
            fn = env.functions.get(name.lower())
            if fn is not None:
                return fn
            env = env.parent
        raise UnknownFunctionError(f"unknown function {name!r}")


EvalFn = Callable[[Env], Any]


class CompileContext:
    """Static information available while lowering expressions to closures.

    ``functions`` should be the engine's *live* UDF mapping
    (:meth:`UdfRegistry.as_mapping`) so re-registered functions are picked
    up per call, exactly as interpreted evaluation does.  ``schemas`` maps
    alias -> :class:`Schema` for aliases whose layout is known at compile
    time; those column references lower to positional access.
    """

    __slots__ = ("functions", "schemas")

    def __init__(
        self,
        functions: Mapping[str, Callable[..., Any]] | None = None,
        schemas: Mapping[str, Schema] | None = None,
    ) -> None:
        self.functions: Mapping[str, Callable[..., Any]] = (
            functions if functions is not None else {}
        )
        self.schemas: dict[str, Schema] = {
            alias.lower(): schema for alias, schema in (schemas or {}).items()
        }

    def schema_for(self, alias: str) -> Schema | None:
        return self.schemas.get(alias.lower())


class _ConstFn:
    """A compiled closure whose result is known at compile time.

    Doubles as the constant-folding marker: combinators check
    ``isinstance(fn, _ConstFn)`` to fold eagerly.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __call__(self, env: Env) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"_ConstFn({self.value!r})"


class Expression:
    """Base class for all expression nodes."""

    __slots__ = ()

    def eval(self, env: Env) -> Any:
        raise NotImplementedError

    def compile(self, ctx: CompileContext) -> EvalFn:
        """Lower to a ``Callable[[Env], Any]`` equivalent to :meth:`eval`.

        The default lowering is the ``eval`` bound method itself, so nodes
        without a specialized ``compile`` still work — just uncompiled.
        """
        return self.eval

    def references(self) -> Iterator[tuple[str | None, str]]:
        """Yield (alias, field) pairs this expression reads."""
        return iter(())

    def children(self) -> Iterable["Expression"]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Depth-first traversal including self."""
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, env: Env) -> Any:
        return self.value

    def compile(self, ctx: CompileContext) -> EvalFn:
        return _ConstFn(self.value)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


class Column(Expression):
    """A column reference, optionally alias-qualified: ``r1.tag_id``."""

    __slots__ = ("alias", "field")

    def __init__(self, field: str, alias: str | None = None) -> None:
        self.alias = alias
        self.field = field

    def eval(self, env: Env) -> Any:
        return env.lookup_column(self.alias, self.field)

    def compile(self, ctx: CompileContext) -> EvalFn:
        alias, field = self.alias, self.field
        if alias is None:
            # Bare columns need the dynamic multi-binding search.
            return self.eval
        key = alias.lower()
        schema = ctx.schema_for(key)
        if schema is not None and field in schema:
            position = schema.position(field)

            def positional(
                env: Env,
                _key: str = key,
                _pos: int = position,
                _schema: Schema = schema,
            ) -> Any:
                # Nearest-scope resolution, same as lookup_alias: check each
                # env up the parent chain so correlated sub-query closures
                # (outer alias in a parent scope) stay on the fast path.
                scope: Env | None = env
                while scope is not None:
                    bound = scope.bindings.get(_key)
                    if bound is not None:
                        if type(bound) is Tuple and bound.schema is _schema:
                            return bound.values[_pos]
                        break  # star-run list or re-declared schema
                    scope = scope.parent
                # Fall back to the interpreted lookup (same binding, named
                # access, full error handling).
                return env.lookup_column(alias, field)

            return positional

        def dynamic(env: Env) -> Any:
            return env.lookup_column(alias, field)

        return dynamic

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield (self.alias, self.field)

    def __repr__(self) -> str:
        if self.alias:
            return f"Column({self.alias}.{self.field})"
        return f"Column({self.field})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and self.alias == other.alias
            and self.field == other.field
        )

    def __hash__(self) -> int:
        return hash(("Column", self.alias, self.field))


class TimestampRef(Expression):
    """The event timestamp of an alias's current tuple (``r1.__ts__``)."""

    __slots__ = ("alias",)

    def __init__(self, alias: str) -> None:
        self.alias = alias

    def eval(self, env: Env) -> Any:
        return env.lookup_alias(self.alias).ts

    def compile(self, ctx: CompileContext) -> EvalFn:
        alias = self.alias
        key = alias.lower()

        def timestamp(env: Env) -> Any:
            bound = env.bindings.get(key)
            if type(bound) is Tuple:
                return bound.ts
            return env.lookup_alias(alias).ts

        return timestamp

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield (self.alias, "__ts__")

    def __repr__(self) -> str:
        return f"TimestampRef({self.alias})"


def _is_null(value: Any) -> bool:
    return value is None


def _compare(op: str, left: Any, right: Any) -> bool | None:
    if _is_null(left) or _is_null(right):
        return None
    try:
        if op == "=":
            return left == right
        if op in ("<>", "!="):
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise EslRuntimeError(
            f"cannot compare {left!r} {op} {right!r}"
        ) from exc
    raise EslRuntimeError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if _is_null(left) or _is_null(right):
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQL: division by zero -> NULL in stream context
            return left / right
        if op == "%":
            if right == 0:
                return None
            return left % right
        if op == "||":
            return str(left) + str(right)
    except TypeError as exc:
        raise EslRuntimeError(f"cannot apply {left!r} {op} {right!r}") from exc
    raise EslRuntimeError(f"unknown arithmetic operator {op!r}")


# Raw Python operators behind each comparison; the compiled closures wrap
# these with the NULL-in/NULL-out and TypeError conventions of _compare.
_CMP_FUNCS: dict[str, Callable[[Any, Any], bool]] = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_ARITH_FUNCS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
}


def _compile_comparison(op: str, left: EvalFn, right: EvalFn) -> EvalFn:
    base = _CMP_FUNCS[op]

    def compare(env: Env) -> bool | None:
        lhs = left(env)
        rhs = right(env)
        if lhs is None or rhs is None:
            return None
        try:
            return base(lhs, rhs)
        except TypeError as exc:
            raise EslRuntimeError(f"cannot compare {lhs!r} {op} {rhs!r}") from exc

    return compare


def _compile_arithmetic(op: str, left: EvalFn, right: EvalFn) -> EvalFn:
    base = _ARITH_FUNCS.get(op)
    if base is not None:

        def arith(env: Env) -> Any:
            lhs = left(env)
            rhs = right(env)
            if lhs is None or rhs is None:
                return None
            try:
                return base(lhs, rhs)
            except TypeError as exc:
                raise EslRuntimeError(f"cannot apply {lhs!r} {op} {rhs!r}") from exc

        return arith

    # Division/modulo (zero -> NULL) and || keep the shared helper.
    def general(env: Env) -> Any:
        return _arith(op, left(env), right(env))

    return general


class BinaryOp(Expression):
    """Arithmetic, comparison, or string concatenation."""

    COMPARISONS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
    ARITHMETIC = frozenset({"+", "-", "*", "/", "%", "||"})

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in self.COMPARISONS and op not in self.ARITHMETIC:
            raise EslSemanticError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env: Env) -> Any:
        left = self.left.eval(env)
        right = self.right.eval(env)
        if self.op in self.COMPARISONS:
            return _compare(self.op, left, right)
        return _arith(self.op, left, right)

    def compile(self, ctx: CompileContext) -> EvalFn:
        left = self.left.compile(ctx)
        right = self.right.compile(ctx)
        op = self.op
        comparison = op in self.COMPARISONS
        if isinstance(left, _ConstFn) and isinstance(right, _ConstFn):
            apply = _compare if comparison else _arith
            try:
                return _ConstFn(apply(op, left.value, right.value))
            except EslRuntimeError:
                pass  # defer the error to evaluation time, like eval() does
        if comparison:
            return _compile_comparison(op, left, right)
        return _compile_arithmetic(op, left, right)

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.left.references()
        yield from self.right.references()

    def children(self) -> Iterable[Expression]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    """Kleene-logic conjunction over two or more operands."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Expression) -> None:
        self.operands = operands

    def eval(self, env: Env) -> bool | None:
        saw_null = False
        for operand in self.operands:
            value = operand.eval(env)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def compile(self, ctx: CompileContext) -> EvalFn:
        fns: list[EvalFn] = []
        saw_const_null = False
        for operand in self.operands:
            fn = operand.compile(ctx)
            if isinstance(fn, _ConstFn):
                if fn.value is False:
                    # Note eval() short-circuits on the first False, so a
                    # constant False makes later operands unreachable *after
                    # the ones already collected* — but since those earlier
                    # closures may themselves raise, only fold when False is
                    # the sole survivor so far.
                    if not fns:
                        return _ConstFn(False)
                    fns.append(fn)
                elif fn.value is None:
                    saw_const_null = True
                # constant True contributes nothing; drop it
                continue
            fns.append(fn)
        if not fns:
            return _ConstFn(None if saw_const_null else True)

        if not saw_const_null and len(fns) == 1:
            sole = fns[0]

            def single(env: Env) -> bool | None:
                value = sole(env)
                if value is False:
                    return False
                return None if value is None else True

            return single

        def conjunction(env: Env) -> bool | None:
            saw_null = saw_const_null
            for fn in fns:
                value = fn(env)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True

        return conjunction

    def references(self) -> Iterator[tuple[str | None, str]]:
        for operand in self.operands:
            yield from operand.references()

    def children(self) -> Iterable[Expression]:
        return self.operands

    def __repr__(self) -> str:
        return "And(" + ", ".join(map(repr, self.operands)) + ")"


class Or(Expression):
    """Kleene-logic disjunction."""

    __slots__ = ("operands",)

    def __init__(self, *operands: Expression) -> None:
        self.operands = operands

    def eval(self, env: Env) -> bool | None:
        saw_null = False
        for operand in self.operands:
            value = operand.eval(env)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def compile(self, ctx: CompileContext) -> EvalFn:
        fns: list[EvalFn] = []
        saw_const_null = False
        for operand in self.operands:
            fn = operand.compile(ctx)
            if isinstance(fn, _ConstFn):
                if fn.value is True:
                    if not fns:
                        return _ConstFn(True)
                    fns.append(fn)
                elif fn.value is None:
                    saw_const_null = True
                # constant False contributes nothing; drop it
                continue
            fns.append(fn)
        if not fns:
            return _ConstFn(None if saw_const_null else False)

        def disjunction(env: Env) -> bool | None:
            saw_null = saw_const_null
            for fn in fns:
                value = fn(env)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return disjunction

    def references(self) -> Iterator[tuple[str | None, str]]:
        for operand in self.operands:
            yield from operand.references()

    def children(self) -> Iterable[Expression]:
        return self.operands

    def __repr__(self) -> str:
        return "Or(" + ", ".join(map(repr, self.operands)) + ")"


class Not(Expression):
    """Kleene-logic negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def eval(self, env: Env) -> bool | None:
        value = self.operand.eval(env)
        if value is None:
            return None
        return not value

    def compile(self, ctx: CompileContext) -> EvalFn:
        fn = self.operand.compile(ctx)
        if isinstance(fn, _ConstFn):
            return _ConstFn(None if fn.value is None else not fn.value)

        def negation(env: Env) -> bool | None:
            value = fn(env)
            if value is None:
                return None
            return not value

        return negation

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.operand.references()

    def children(self) -> Iterable[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


class Negate(Expression):
    """Arithmetic unary minus."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def eval(self, env: Env) -> Any:
        value = self.operand.eval(env)
        return None if value is None else -value

    def compile(self, ctx: CompileContext) -> EvalFn:
        fn = self.operand.compile(ctx)
        if isinstance(fn, _ConstFn):
            try:
                return _ConstFn(None if fn.value is None else -fn.value)
            except TypeError:
                pass  # defer the error to evaluation time

        def negate(env: Env) -> Any:
            value = fn(env)
            return None if value is None else -value

        return negate

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.operand.references()

    def children(self) -> Iterable[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Negate({self.operand!r})"


class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` (set negate=True)."""

    __slots__ = ("operand", "negate")

    def __init__(self, operand: Expression, negate: bool = False) -> None:
        self.operand = operand
        self.negate = negate

    def eval(self, env: Env) -> bool:
        result = self.operand.eval(env) is None
        return not result if self.negate else result

    def compile(self, ctx: CompileContext) -> EvalFn:
        fn = self.operand.compile(ctx)
        if isinstance(fn, _ConstFn):
            result = fn.value is None
            return _ConstFn(not result if self.negate else result)
        if self.negate:
            return lambda env: fn(env) is not None
        return lambda env: fn(env) is None

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.operand.references()

    def children(self) -> Iterable[Expression]:
        return (self.operand,)

    def __repr__(self) -> str:
        op = "IS NOT NULL" if self.negate else "IS NULL"
        return f"IsNull({self.operand!r} {op})"


class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive both ends, per SQL)."""

    __slots__ = ("operand", "low", "high", "negate")

    def __init__(
        self,
        operand: Expression,
        low: Expression,
        high: Expression,
        negate: bool = False,
    ) -> None:
        self.operand = operand
        self.low = low
        self.high = high
        self.negate = negate

    def eval(self, env: Env) -> bool | None:
        value = self.operand.eval(env)
        low = self.low.eval(env)
        high = self.high.eval(env)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return not result if self.negate else result

    def compile(self, ctx: CompileContext) -> EvalFn:
        operand = self.operand.compile(ctx)
        low = self.low.compile(ctx)
        high = self.high.compile(ctx)
        negate = self.negate

        def between(env: Env) -> bool | None:
            value = operand(env)
            lo = low(env)
            hi = high(env)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return not result if negate else result

        return between

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.operand.references()
        yield from self.low.references()
        yield from self.high.references()

    def children(self) -> Iterable[Expression]:
        return (self.operand, self.low, self.high)

    def __repr__(self) -> str:
        word = "NOT BETWEEN" if self.negate else "BETWEEN"
        return f"Between({self.operand!r} {word} {self.low!r} AND {self.high!r})"


class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    __slots__ = ("operand", "options", "negate")

    def __init__(
        self, operand: Expression, options: Sequence[Expression], negate: bool = False
    ) -> None:
        self.operand = operand
        self.options = tuple(options)
        self.negate = negate

    def eval(self, env: Env) -> bool | None:
        value = self.operand.eval(env)
        if value is None:
            return None
        saw_null = False
        for option in self.options:
            candidate = option.eval(env)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if self.negate else True
        if saw_null:
            return None
        return True if self.negate else False

    def compile(self, ctx: CompileContext) -> EvalFn:
        operand = self.operand.compile(ctx)
        option_fns = [option.compile(ctx) for option in self.options]
        negate = self.negate

        def membership(env: Env) -> bool | None:
            value = operand(env)
            if value is None:
                return None
            saw_null = False
            for fn in option_fns:
                candidate = fn(env)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return False if negate else True
            if saw_null:
                return None
            return True if negate else False

        return membership

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.operand.references()
        for option in self.options:
            yield from option.references()

    def children(self) -> Iterable[Expression]:
        return (self.operand, *self.options)

    def __repr__(self) -> str:
        word = "NOT IN" if self.negate else "IN"
        return f"InList({self.operand!r} {word} {list(self.options)!r})"


# Module-level LIKE pattern memo: every lowering tier (eval, closure,
# vector, native) funnels through Like._regex, so identical patterns —
# common when the same EPC prefix appears in many registered queries —
# compile exactly once per process rather than once per Like node.
_LIKE_REGEX_MEMO: dict[str, Any] = {}


class Like(Expression):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (used for EPC prefixes)."""

    __slots__ = ("operand", "pattern", "negate", "_compiled")

    def __init__(
        self, operand: Expression, pattern: Expression, negate: bool = False
    ) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negate = negate
        self._compiled: tuple[str, Any] | None = None

    @staticmethod
    def _regex(pattern: str) -> Any:
        compiled = _LIKE_REGEX_MEMO.get(pattern)
        if compiled is None:
            compiled = _LIKE_REGEX_MEMO[pattern] = re.compile(
                "".join(
                    ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
                    for ch in pattern
                )
                + r"\Z",
                re.DOTALL,
            )
        return compiled

    def eval(self, env: Env) -> bool | None:
        value = self.operand.eval(env)
        pattern = self.pattern.eval(env)
        if value is None or pattern is None:
            return None
        if self._compiled is None or self._compiled[0] != pattern:
            self._compiled = (pattern, self._regex(pattern))
        result = self._compiled[1].match(str(value)) is not None
        return not result if self.negate else result

    def compile(self, ctx: CompileContext) -> EvalFn:
        operand = self.operand.compile(ctx)
        pattern_fn = self.pattern.compile(ctx)
        negate = self.negate
        if isinstance(pattern_fn, _ConstFn) and pattern_fn.value is not None:
            regex = self._regex(pattern_fn.value)

            def match_const(env: Env) -> bool | None:
                value = operand(env)
                if value is None:
                    return None
                result = regex.match(str(value)) is not None
                return not result if negate else result

            return match_const

        cache: list[tuple[str, Any] | None] = [None]

        def match(env: Env) -> bool | None:
            value = operand(env)
            pattern = pattern_fn(env)
            if value is None or pattern is None:
                return None
            cached = cache[0]
            if cached is None or cached[0] != pattern:
                cached = cache[0] = (pattern, self._regex(pattern))
            result = cached[1].match(str(value)) is not None
            return not result if negate else result

        return match

    def references(self) -> Iterator[tuple[str | None, str]]:
        yield from self.operand.references()
        yield from self.pattern.references()

    def children(self) -> Iterable[Expression]:
        return (self.operand, self.pattern)

    def __repr__(self) -> str:
        word = "NOT LIKE" if self.negate else "LIKE"
        return f"Like({self.operand!r} {word} {self.pattern!r})"


class FunctionCall(Expression):
    """A scalar function or UDF call: looked up in the Env's registry."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]) -> None:
        self.name = name
        self.args = tuple(args)

    def eval(self, env: Env) -> Any:
        fn = env.lookup_function(self.name)
        values = [arg.eval(env) for arg in self.args]
        return fn(*values)

    def compile(self, ctx: CompileContext) -> EvalFn:
        arg_fns = [arg.compile(ctx) for arg in self.args]
        key = self.name.lower()
        # ctx.functions is the engine's live registry mapping: look the
        # callable up per call so a later re-registration is honoured, just
        # as interpreted lookup_function would.
        functions = ctx.functions

        def call(env: Env) -> Any:
            target = functions.get(key)
            if target is None:
                target = env.lookup_function(key)
            return target(*[fn(env) for fn in arg_fns])

        return call

    def references(self) -> Iterator[tuple[str | None, str]]:
        for arg in self.args:
            yield from arg.references()

    def children(self) -> Iterable[Expression]:
        return self.args

    def __repr__(self) -> str:
        return f"FunctionCall({self.name}, {list(self.args)!r})"


class Case(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    __slots__ = ("branches", "default")

    def __init__(
        self,
        branches: Sequence[tuple[Expression, Expression]],
        default: Expression | None = None,
    ) -> None:
        self.branches = tuple(branches)
        self.default = default

    def eval(self, env: Env) -> Any:
        for condition, value in self.branches:
            if condition.eval(env) is True:
                return value.eval(env)
        if self.default is not None:
            return self.default.eval(env)
        return None

    def compile(self, ctx: CompileContext) -> EvalFn:
        branch_fns = [
            (condition.compile(ctx), value.compile(ctx))
            for condition, value in self.branches
        ]
        default_fn = None if self.default is None else self.default.compile(ctx)

        def case(env: Env) -> Any:
            for condition, value in branch_fns:
                if condition(env) is True:
                    return value(env)
            if default_fn is not None:
                return default_fn(env)
            return None

        return case

    def references(self) -> Iterator[tuple[str | None, str]]:
        for condition, value in self.branches:
            yield from condition.references()
            yield from value.references()
        if self.default is not None:
            yield from self.default.references()

    def children(self) -> Iterable[Expression]:
        out: list[Expression] = []
        for condition, value in self.branches:
            out.append(condition)
            out.append(value)
        if self.default is not None:
            out.append(self.default)
        return out

    def __repr__(self) -> str:
        return f"Case({len(self.branches)} branches)"


class SubqueryPredicate(Expression):
    """``EXISTS`` / ``NOT EXISTS`` over a compiled sub-query.

    The sub-query itself is compiled to a callable by the query compiler;
    this node just invokes it with the current Env so correlated references
    resolve against outer bindings.
    """

    __slots__ = ("probe", "negate", "description")

    def __init__(
        self,
        probe: Callable[[Env], bool],
        negate: bool = False,
        description: str = "subquery",
    ) -> None:
        self.probe = probe
        self.negate = negate
        self.description = description

    def eval(self, env: Env) -> bool:
        result = self.probe(env)
        return not result if self.negate else result

    def compile(self, ctx: CompileContext) -> EvalFn:
        probe = self.probe
        if self.negate:
            return lambda env: not probe(env)
        return probe

    def __repr__(self) -> str:
        word = "NOT EXISTS" if self.negate else "EXISTS"
        return f"SubqueryPredicate({word} {self.description})"


def truthy(value: Any) -> bool:
    """SQL WHERE-clause semantics: NULL counts as false."""
    return value is True


def conjoin(terms: Sequence[Expression]) -> Expression:
    """Combine predicate terms into a single expression (TRUE when empty)."""
    if not terms:
        return Literal(True)
    if len(terms) == 1:
        return terms[0]
    return And(*terms)


# ---------------------------------------------------------------------------
# Admission constraints (predicate-indexed query routing)
# ---------------------------------------------------------------------------
#
# The shared multi-query registry (:mod:`repro.dsms.registry`) indexes
# registered plans by the hoistable part of their admission predicates: the
# single-alias ``column = literal`` / ``IN (literals)`` / range conjuncts a
# tuple can be tested against *before* the plan's own callbacks run.  An
# :class:`AdmissionConstraint` is the index key material for one alias —
# one field plus an equality value set and/or literal ranges.  The routing
# contract mirrors the vector-mask contract above: a constraint may
# over-admit (the plan re-checks every delivered tuple) but must never
# reject a tuple the plan's own predicate would accept, so extraction is
# deliberately conservative — anything it cannot prove indexable simply
# contributes no constraint.


class AdmissionConstraint:
    """One alias's indexable admission predicate on a single field.

    ``values`` is a frozenset of literals the field may equal (None when
    the constraint has no equality component — not "all values"), and
    ``ranges`` holds ``(lo, hi, lo_incl, hi_incl)`` literal intervals with
    None for an open end.  :meth:`admits` decides non-None field values;
    NULL handling (strict WHERE vs lenient SEQ admission) is the router's
    job, not the constraint's.
    """

    __slots__ = ("field", "values", "ranges")

    def __init__(
        self,
        field: str,
        values: frozenset | None = None,
        ranges: Sequence[tuple] = (),
    ) -> None:
        self.field = field
        self.values = values
        self.ranges = tuple(ranges)

    @property
    def empty(self) -> bool:
        """True when no value can ever satisfy the constraint."""
        return not self.ranges and self.values is not None and not self.values

    def admits(self, value: Any) -> bool:
        """Whether a non-None *value* may satisfy the indexed conjuncts.

        Incomparable/unhashable values admit (over-admission is safe; the
        plan's own predicate decides, with its own error semantics).
        """
        try:
            if self.values is not None and value in self.values:
                return True
        except TypeError:
            return True
        for lo, hi, lo_incl, hi_incl in self.ranges:
            try:
                if lo is not None and (
                    value < lo or (not lo_incl and value == lo)
                ):
                    continue
                if hi is not None and (
                    value > hi or (not hi_incl and value == hi)
                ):
                    continue
            except TypeError:
                return True
            return True
        return False

    def intersect(self, other: "AdmissionConstraint") -> "AdmissionConstraint":
        """Conjunction with *other* (same field).

        Exact where representable; otherwise returns ``self`` unchanged,
        which over-admits and stays sound.
        """
        if self.values is not None and other.values is not None:
            return AdmissionConstraint(self.field, self.values & other.values)
        if self.values is not None:
            kept = frozenset(v for v in self.values if other.admits(v))
            return AdmissionConstraint(self.field, kept)
        if other.values is not None:
            kept = frozenset(v for v in other.values if self.admits(v))
            return AdmissionConstraint(self.field, kept)
        if len(self.ranges) == 1 and len(other.ranges) == 1:
            merged = _intersect_ranges(self.ranges[0], other.ranges[0])
            if merged is None:
                return AdmissionConstraint(self.field, frozenset())
            return AdmissionConstraint(self.field, None, (merged,))
        return self

    def union(self, other: "AdmissionConstraint") -> "AdmissionConstraint | None":
        """Disjunction with *other*, or None when fields differ.

        Used when several operator aliases read the same stream: the
        stream-level gate must admit a tuple any alias would admit.
        """
        if self.field.lower() != other.field.lower():
            return None
        values: frozenset | None = None
        if self.values is not None or other.values is not None:
            values = (self.values or frozenset()) | (other.values or frozenset())
        return AdmissionConstraint(
            self.field, values, self.ranges + other.ranges
        )

    def __repr__(self) -> str:
        parts = []
        if self.values is not None:
            parts.append(f"{len(self.values)} values")
        if self.ranges:
            parts.append(f"{len(self.ranges)} ranges")
        return f"AdmissionConstraint({self.field}: {', '.join(parts) or 'empty'})"


def _intersect_ranges(a: tuple, b: tuple) -> tuple | None:
    """Intersect two literal intervals; None when provably empty."""
    lo, lo_incl = a[0], a[2]
    try:
        # Tighter lower bound wins; equal bounds intersect inclusivity.
        if lo is None or (b[0] is not None and b[0] > lo):
            lo, lo_incl = b[0], b[2]
        elif b[0] is not None and b[0] == lo:
            lo_incl = lo_incl and b[2]
        hi, hi_incl = a[1], a[3]
        if hi is None or (b[1] is not None and b[1] < hi):
            hi, hi_incl = b[1], b[3]
        elif b[1] is not None and b[1] == hi:
            hi_incl = hi_incl and b[3]
        if lo is not None and hi is not None:
            if lo > hi or (lo == hi and not (lo_incl and hi_incl)):
                return None
    except TypeError:
        return a  # incomparable bound types: keep one side (over-admits)
    return (lo, hi, lo_incl, hi_incl)


def _constraint_column(
    expr: Expression, alias_key: str, allow_bare: bool
) -> Column | None:
    """*expr* as a Column owned by the target alias, else None."""
    if type(expr) is not Column:
        return None
    if expr.alias is None:
        return expr if allow_bare else None
    return expr if expr.alias.lower() == alias_key else None


_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _term_admission_constraint(
    term: Expression, alias_key: str, allow_bare: bool
) -> AdmissionConstraint | None:
    """The indexable constraint one conjunct imposes, or None."""
    if isinstance(term, BinaryOp) and term.op in ("=", "<", "<=", ">", ">="):
        op = term.op
        column = _constraint_column(term.left, alias_key, allow_bare)
        literal = term.right
        if column is None:
            column = _constraint_column(term.right, alias_key, allow_bare)
            literal = term.left
            op = _FLIPPED_OPS.get(op, op)
        if column is None or not isinstance(literal, Literal):
            return None
        value = literal.value
        if value is None:
            return None  # comparisons to NULL never index
        if op == "=":
            try:
                return AdmissionConstraint(column.field, frozenset((value,)))
            except TypeError:
                return None
        bounds = {
            "<": (None, value, True, False),
            "<=": (None, value, True, True),
            ">": (value, None, False, True),
            ">=": (value, None, True, True),
        }
        return AdmissionConstraint(column.field, None, (bounds[op],))
    if isinstance(term, InList) and not term.negate:
        column = _constraint_column(term.operand, alias_key, allow_bare)
        if column is None:
            return None
        values = []
        for option in term.options:
            if not isinstance(option, Literal) or option.value is None:
                return None  # NULL options make a failed IN lenient-pass
            values.append(option.value)
        try:
            return AdmissionConstraint(column.field, frozenset(values))
        except TypeError:
            return None
    if isinstance(term, Between) and not term.negate:
        column = _constraint_column(term.operand, alias_key, allow_bare)
        if column is None:
            return None
        low, high = term.low, term.high
        if (
            not isinstance(low, Literal) or low.value is None
            or not isinstance(high, Literal) or high.value is None
        ):
            return None
        return AdmissionConstraint(
            column.field, None, ((low.value, high.value, True, True),)
        )
    return None


def admission_constraint(
    terms: Iterable[Expression], alias: str, allow_bare: bool = False
) -> AdmissionConstraint | None:
    """Fold guard *terms* into one alias's best indexable constraint.

    *terms* should already be restricted to conjuncts whose column
    references all belong to *alias* (bare references allowed only with
    *allow_bare* — the single-source case where they can only mean the
    stream).  Conjuncts on the same field intersect exactly; when several
    fields are constrained the equality-bearing one wins (hash lookup
    beats range scan).  Returns None when nothing indexable was found —
    the plan then routes through the residual scan list.
    """
    alias_key = alias.lower()
    per_field: dict[str, AdmissionConstraint] = {}
    for term in terms:
        constraint = _term_admission_constraint(term, alias_key, allow_bare)
        if constraint is None:
            continue
        key = constraint.field.lower()
        existing = per_field.get(key)
        per_field[key] = (
            constraint if existing is None else existing.intersect(constraint)
        )
    best: AdmissionConstraint | None = None
    for constraint in per_field.values():
        if constraint.values is not None:
            if best is None or best.values is None:
                best = constraint
        elif best is None:
            best = constraint
    return best


# ---------------------------------------------------------------------------
# Vectorized lowering (column-batch admission)
# ---------------------------------------------------------------------------
#
# A second lowering tier over the same expression IR: where ``compile()``
# produces ``Env -> value`` closures evaluated once per tuple,
# ``compile_vector()`` produces ``(columns, timestamps, n) -> list`` closures
# evaluated once per :class:`~repro.dsms.columns.ColumnBatch`, returning the
# per-row Kleene values (True/False/None, or arbitrary values for arithmetic
# sub-expressions).  The admission paths turn those values into a
# materialization mask, so a 512-row batch costs a handful of list
# comprehensions instead of 512 Env constructions.
#
# Only *pure, time-independent, single-alias* expressions lower: literals,
# column/timestamp references against the target schema, comparisons,
# arithmetic, Kleene AND/OR/NOT, IS NULL, BETWEEN, IN over constant option
# lists, and LIKE with a constant pattern.  Function calls (UDFs may be
# stateful or re-registered), CASE, and subquery probes (state-dependent:
# re-evaluation order matters) return None — the caller keeps the scalar
# path for those.  Purity is what makes whole-batch evaluation safe: every
# consumer re-checks survivors with the scalar predicate, so a vector mask
# only has to promise it never *drops* a row the scalar path would admit.
# On that contract, a closure that raises mid-batch is simply abandoned
# (the caller falls back to delivering every row) and per-row error
# semantics — lenient admission, errors surfacing at the offending tuple —
# are preserved exactly by the scalar re-check.

#: ``(columns, timestamps, n) -> [value, ...]`` — one value per batch row.
VectorFn = Callable[[Sequence[Sequence[Any]], Sequence[float], int], list]


class _VConst:
    """Constant-folding marker for the vector tier (mirrors _ConstFn)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def _vector_rows(item: Any, cols: Any, tss: Any, n: int) -> list:
    """Materialize an operand as a per-row list, broadcasting constants."""
    if type(item) is _VConst:
        return [item.value] * n
    return item(cols, tss, n)


def _lower_vector(  # noqa: PLR0911, PLR0912 - one dispatch, many node kinds
    expr: Expression, schema: Schema, alias: str | None,
    lower: "Callable[[Expression, Schema, str | None], Any] | None" = None,
) -> Any:
    """Lower *expr* to a :data:`VectorFn` or :class:`_VConst`, else None.

    *alias* is the lower-cased binding name of the target stream's tuple;
    bare column references (no alias) also resolve against *schema*, which
    is correct in the single-binding admission/filter contexts this tier
    serves.

    *lower* is the recursion hook: every sub-expression is lowered through
    it (default: this function).  :func:`compile_pairing_vector` passes a
    hook that intercepts references to *other* aliases — unloweraable
    here, constant-per-anchor there — and vetoes bare columns, reusing
    every operator lowering below unchanged.
    """
    if lower is None:
        lower = _lower_vector
    kind = type(expr)
    if kind is Literal:
        return _VConst(expr.value)
    if kind is Column:
        ref_alias = expr.alias.lower() if expr.alias is not None else None
        if ref_alias is not None and ref_alias != alias:
            return None
        if expr.field not in schema:
            return None
        position = schema.position(expr.field)

        def column(cols: Any, tss: Any, n: int, _pos: int = position) -> list:
            return cols[_pos]

        return column
    if kind is TimestampRef:
        if expr.alias.lower() != alias:
            return None

        def timestamp(cols: Any, tss: Any, n: int) -> list:
            return tss if type(tss) is list else list(tss)

        return timestamp
    if kind is BinaryOp:
        left = lower(expr.left, schema, alias)
        if left is None:
            return None
        right = lower(expr.right, schema, alias)
        if right is None:
            return None
        op = expr.op
        cmp_base = _CMP_FUNCS.get(op)
        if type(left) is _VConst and type(right) is _VConst:
            try:
                if cmp_base is not None:
                    return _VConst(_compare(op, left.value, right.value))
                return _VConst(_arith(op, left.value, right.value))
            except EslRuntimeError:
                return None  # defer the error to the scalar path
        if cmp_base is not None:
            if type(right) is _VConst:
                rv = right.value
                if rv is None:
                    return _VConst(None)

                def compare_vc(cols: Any, tss: Any, n: int) -> list:
                    return [
                        None if v is None else cmp_base(v, rv)
                        for v in left(cols, tss, n)
                    ]

                return compare_vc
            if type(left) is _VConst:
                lv = left.value
                if lv is None:
                    return _VConst(None)

                def compare_cv(cols: Any, tss: Any, n: int) -> list:
                    return [
                        None if v is None else cmp_base(lv, v)
                        for v in right(cols, tss, n)
                    ]

                return compare_cv

            def compare_vv(cols: Any, tss: Any, n: int) -> list:
                return [
                    None if a is None or b is None else cmp_base(a, b)
                    for a, b in zip(left(cols, tss, n), right(cols, tss, n))
                ]

            return compare_vv
        arith_base = _ARITH_FUNCS.get(op)
        if arith_base is not None:
            if type(right) is _VConst:
                rv = right.value
                if rv is None:
                    return _VConst(None)

                def arith_vc(cols: Any, tss: Any, n: int) -> list:
                    return [
                        None if v is None else arith_base(v, rv)
                        for v in left(cols, tss, n)
                    ]

                return arith_vc

            def arith_gen(cols: Any, tss: Any, n: int) -> list:
                lvs = _vector_rows(left, cols, tss, n)
                rvs = _vector_rows(right, cols, tss, n)
                return [
                    None if a is None or b is None else arith_base(a, b)
                    for a, b in zip(lvs, rvs)
                ]

            return arith_gen

        def arith_slow(cols: Any, tss: Any, n: int) -> list:
            # Division/modulo (zero -> NULL) and || keep the shared helper.
            lvs = _vector_rows(left, cols, tss, n)
            rvs = _vector_rows(right, cols, tss, n)
            return [_arith(op, a, b) for a, b in zip(lvs, rvs)]

        return arith_slow
    if kind is And or kind is Or:
        items = []
        for operand in expr.operands:
            item = lower(operand, schema, alias)
            if item is None:
                return None
            items.append(item)
        if all(type(item) is _VConst for item in items):
            values = [item.value for item in items]
            if kind is And:
                if any(value is False for value in values):
                    return _VConst(False)
                return _VConst(
                    None if any(value is None for value in values) else True
                )
            if any(value is True for value in values):
                return _VConst(True)
            return _VConst(
                None if any(value is None for value in values) else False
            )
        if kind is And:
            return _vector_conjunction(items)
        return _vector_disjunction(items)
    if kind is Not:
        item = lower(expr.operand, schema, alias)
        if item is None:
            return None
        if type(item) is _VConst:
            value = item.value
            return _VConst(None if value is None else not value)

        def negation(cols: Any, tss: Any, n: int) -> list:
            return [
                None if v is None else not v for v in item(cols, tss, n)
            ]

        return negation
    if kind is Negate:
        item = lower(expr.operand, schema, alias)
        if item is None:
            return None
        if type(item) is _VConst:
            try:
                value = item.value
                return _VConst(None if value is None else -value)
            except TypeError:
                return None  # defer the error to the scalar path

        def negate(cols: Any, tss: Any, n: int) -> list:
            return [None if v is None else -v for v in item(cols, tss, n)]

        return negate
    if kind is IsNull:
        item = lower(expr.operand, schema, alias)
        if item is None:
            return None
        invert = expr.negate
        if type(item) is _VConst:
            result = item.value is None
            return _VConst(not result if invert else result)
        if invert:
            return lambda cols, tss, n: [
                v is not None for v in item(cols, tss, n)
            ]
        return lambda cols, tss, n: [v is None for v in item(cols, tss, n)]
    if kind is Between:
        operand = lower(expr.operand, schema, alias)
        low = lower(expr.low, schema, alias)
        high = lower(expr.high, schema, alias)
        if operand is None or low is None or high is None:
            return None
        invert = expr.negate

        def between(cols: Any, tss: Any, n: int) -> list:
            vals = _vector_rows(operand, cols, tss, n)
            lows = _vector_rows(low, cols, tss, n)
            highs = _vector_rows(high, cols, tss, n)
            out = []
            append = out.append
            for v, lo, hi in zip(vals, lows, highs):
                if v is None or lo is None or hi is None:
                    append(None)
                else:
                    result = lo <= v <= hi
                    append(not result if invert else result)
            return out

        return between
    if kind is InList:
        operand = lower(expr.operand, schema, alias)
        if operand is None:
            return None
        options = []
        for option in expr.options:
            item = lower(option, schema, alias)
            if type(item) is not _VConst:
                return None  # dynamic options keep the scalar path
            options.append(item.value)
        saw_null = any(option is None for option in options)
        # A tuple scan uses == exactly like the scalar candidate loop.
        table = tuple(option for option in options if option is not None)
        invert = expr.negate
        if type(operand) is _VConst:
            value = operand.value
            if value is None:
                return _VConst(None)
            if value in table:
                return _VConst(False if invert else True)
            return _VConst(None if saw_null else invert)

        def membership(cols: Any, tss: Any, n: int) -> list:
            out = []
            append = out.append
            for v in operand(cols, tss, n):
                if v is None:
                    append(None)
                elif v in table:
                    append(False if invert else True)
                else:
                    append(None if saw_null else invert)
            return out

        return membership
    if kind is Like:
        operand = lower(expr.operand, schema, alias)
        if operand is None:
            return None
        pattern = lower(expr.pattern, schema, alias)
        if type(pattern) is not _VConst or pattern.value is None:
            return None  # dynamic patterns keep the scalar regex cache
        match = Like._regex(pattern.value).match
        invert = expr.negate
        if type(operand) is _VConst:
            value = operand.value
            if value is None:
                return _VConst(None)
            result = match(str(value)) is not None
            return _VConst(not result if invert else result)

        if invert:
            return lambda cols, tss, n: [
                None if v is None else match(str(v)) is None
                for v in operand(cols, tss, n)
            ]
        return lambda cols, tss, n: [
            None if v is None else match(str(v)) is not None
            for v in operand(cols, tss, n)
        ]
    # FunctionCall, Case, SubqueryPredicate, and anything unknown: not
    # vectorizable (side effects, state, or re-evaluation hazards).
    return None


def _vector_conjunction(items: list) -> VectorFn:
    """Kleene AND over lowered operands with selection-mask short-circuit.

    Operands are evaluated left to right over the still-undecided rows
    only: a row decided False leaves the active set, and the remaining
    operands see columns gathered down to the active rows.  Error
    semantics match the scalar closure chain — operands run in order, so
    an operand that raises does so before any later operand is consulted.
    """

    def conjunction(cols: Any, tss: Any, n: int) -> list:
        result: list = [True] * n
        active = range(n)
        acols, atss = cols, tss
        last = len(items) - 1
        for index, item in enumerate(items):
            if not active:
                break
            if type(item) is _VConst:
                value = item.value
                if value is None:
                    for i in active:
                        result[i] = None
                elif value is False:
                    for i in active:
                        result[i] = False
                    active = ()
                continue
            vals = item(acols, atss, len(active))
            survivors = []
            keep = survivors.append
            for v, i in zip(vals, active):
                if v is False:
                    result[i] = False
                else:
                    if v is None:
                        result[i] = None
                    keep(i)
            if index != last and len(survivors) != len(active):
                active = survivors
                acols = [[c[i] for i in active] for c in cols]
                atss = [tss[i] for i in active]
            elif len(survivors) != len(active):
                active = survivors
        return result

    return conjunction


def _vector_disjunction(items: list) -> VectorFn:
    """Kleene OR, dual of :func:`_vector_conjunction` (True decides)."""

    def disjunction(cols: Any, tss: Any, n: int) -> list:
        result: list = [False] * n
        active = range(n)
        acols, atss = cols, tss
        last = len(items) - 1
        for index, item in enumerate(items):
            if not active:
                break
            if type(item) is _VConst:
                value = item.value
                if value is None:
                    for i in active:
                        result[i] = None
                elif value is True:
                    for i in active:
                        result[i] = True
                    active = ()
                continue
            vals = item(acols, atss, len(active))
            survivors = []
            keep = survivors.append
            for v, i in zip(vals, active):
                if v is True:
                    result[i] = True
                else:
                    if v is None:
                        result[i] = None
                    keep(i)
            if index != last and len(survivors) != len(active):
                active = survivors
                acols = [[c[i] for i in active] for c in cols]
                atss = [tss[i] for i in active]
            elif len(survivors) != len(active):
                active = survivors
        return result

    return disjunction


def compile_vector(
    expr: Expression, schema: Schema, alias: str | None = None
) -> VectorFn | None:
    """Lower *expr* to a whole-batch closure, or None if not vectorizable.

    The closure maps ``(columns, timestamps, n)`` — the column arrays of a
    :class:`~repro.dsms.columns.ColumnBatch` whose rows are bound to
    *alias* (lower-cased; bare references also resolve against *schema*)
    — to the per-row values :meth:`Expression.eval` would produce.  The
    caller derives its admission mask from those values (``is not False``
    for lenient guards, ``is True`` for WHERE clauses) and must treat any
    exception as "mask unavailable", falling back to full materialization.
    """
    lowered = _lower_vector(expr, schema, alias.lower() if alias else None)
    if lowered is None:
        return None
    if type(lowered) is _VConst:
        value = lowered.value

        def const(cols: Any, tss: Any, n: int) -> list:
            return [value] * n

        return const
    return lowered


# ---------------------------------------------------------------------------
# Pairing lowering (cross-alias conjuncts over partition-history mirrors)
# ---------------------------------------------------------------------------
#
# The third lowering tier: SEQ pairing guards compare the *arriving*
# tuples of one chain stage (the anchor side, already bound) against the
# candidate history of another stage (one column store).  Relative to the
# admission tier the only new ingredient is that sub-expressions over the
# bound aliases are constants *per mask evaluation* — so they compile
# through the scalar closure tier once and broadcast, while candidate-side
# references lower to column reads exactly as admission does.  The same
# over-admit-never-under-admit contract applies: every mask survivor is
# re-checked by the scalar ``pairing()`` closure, so a raising mask is
# simply abandoned for that anchor.

#: Sentinel node kinds never safe inside a broadcast anchor cell: UDFs may
#: be stateful (call counts are observable), CASE/probes re-evaluate state.
_IMPURE_NODES = (FunctionCall, Case, SubqueryPredicate)


class _PairCell:
    """An anchor-side sub-expression broadcast over the candidate slice.

    Compiled once to a scalar closure; ``value`` is refreshed from the
    live Env bindings at every mask evaluation, then the cell behaves as
    a :data:`VectorFn` producing that value for all *n* candidate rows.
    """

    __slots__ = ("fn", "value")

    def __init__(self, fn: EvalFn) -> None:
        self.fn = fn
        self.value: Any = None

    def __call__(self, cols: Any, tss: Any, n: int) -> list:
        return [self.value] * n


def compile_pairing_vector(
    expr: Expression,
    schema: Schema,
    alias: str,
    ctx: CompileContext,
    bound_aliases: Iterable[str],
) -> Callable[[Env, Any, Any, int], list] | None:
    """Lower a cross-alias pairing conjunct to a broadcast-mask closure.

    *alias* names the candidate stage whose history mirror supplies the
    columns; *bound_aliases* are the chain stages already bound when this
    stage's candidates are scanned.  Returns ``(env, cols, tss, n) ->
    values`` (the per-row Kleene values the scalar term would produce) or
    None when the term cannot be lowered soundly:

    * a bare (unqualified) column reference — ambiguous across the
      multiple bindings of a pairing Env, unlike the single-binding
      admission context;
    * a reference to an alias that is neither the candidate nor provably
      bound at this stage;
    * an impure node (UDF call, CASE, sub-query probe) anywhere, on
      either side;
    * any node the admission vector tier already declines.

    Anchor-side sub-expressions (references only to bound aliases) become
    :class:`_PairCell` broadcasts compiled through the scalar closure
    tier; the rest reuses :func:`_lower_vector`'s operator lowerings via
    its recursion hook.
    """
    cand = alias.lower()
    bound = {name.lower() for name in bound_aliases}
    cells: list[_PairCell] = []

    def hook(node: Expression, lschema: Schema, lalias: str | None) -> Any:
        refs = list(node.references())
        if refs:
            ref_aliases = {
                ref_alias.lower() if ref_alias is not None else None
                for ref_alias, __ in refs
            }
            if None in ref_aliases:
                return None  # bare column: ambiguous across bindings
            if cand not in ref_aliases:
                if not ref_aliases <= bound:
                    return None  # references an alias not yet bound
                for sub in node.walk():
                    if isinstance(sub, _IMPURE_NODES):
                        return None
                cell = _PairCell(node.compile(ctx))
                cells.append(cell)
                return cell
            if not ref_aliases <= bound | {cand}:
                return None
        elif any(isinstance(sub, _IMPURE_NODES) for sub in node.walk()):
            return None  # e.g. a zero-argument UDF call
        return _lower_vector(node, lschema, lalias, hook)

    lowered = hook(expr, schema, cand)
    if lowered is None:
        return None
    if type(lowered) is _VConst:
        value = lowered.value

        def pair_const(env: Env, cols: Any, tss: Any, n: int) -> list:
            return [value] * n

        return pair_const
    frozen = tuple(cells)

    def pair(env: Env, cols: Any, tss: Any, n: int) -> list:
        for cell in frozen:
            cell.value = cell.fn(env)
        return lowered(cols, tss, n)

    return pair
