"""Aggregate functions: the shared protocol plus the SQL built-ins.

An aggregate is described by an :class:`Aggregate` object exposing the
classic three-phase protocol that ESL's user-defined aggregates borrow from
(INITIALIZE / ITERATE / TERMINATE).  Built-ins and UDAs go through exactly
the same code path in the engine, which is the point the paper makes about
ESL: arbitrarily complex aggregation is expressible without touching the
system.

All built-ins ignore NULL inputs, as SQL requires; ``COUNT(*)`` counts rows
regardless.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from .errors import UnknownAggregateError


class Aggregate:
    """Three-phase aggregate: initialize -> iterate* -> terminate."""

    def __init__(
        self,
        name: str,
        initialize: Callable[[], Any],
        iterate: Callable[[Any, Any], Any],
        terminate: Callable[[Any], Any],
        skip_nulls: bool = True,
    ) -> None:
        self.name = name
        self._initialize = initialize
        self._iterate = iterate
        self._terminate = terminate
        self.skip_nulls = skip_nulls

    def initialize(self) -> Any:
        return self._initialize()

    def iterate(self, state: Any, value: Any) -> Any:
        if value is None and self.skip_nulls:
            return state
        return self._iterate(state, value)

    def terminate(self, state: Any) -> Any:
        return self._terminate(state)

    def compute(self, values: Any) -> Any:
        """One-shot evaluation over an iterable (snapshot queries use this)."""
        state = self.initialize()
        for value in values:
            state = self.iterate(state, value)
        return self.terminate(state)

    def __repr__(self) -> str:
        return f"Aggregate({self.name})"


def _make_count() -> Aggregate:
    return Aggregate(
        "count",
        initialize=lambda: 0,
        iterate=lambda state, value: state + 1,
        terminate=lambda state: state,
    )


def _make_count_star() -> Aggregate:
    return Aggregate(
        "count(*)",
        initialize=lambda: 0,
        iterate=lambda state, value: state + 1,
        terminate=lambda state: state,
        skip_nulls=False,
    )


def _make_sum() -> Aggregate:
    return Aggregate(
        "sum",
        initialize=lambda: None,
        iterate=lambda state, value: value if state is None else state + value,
        terminate=lambda state: state,
    )


def _make_avg() -> Aggregate:
    return Aggregate(
        "avg",
        initialize=lambda: (0, 0.0),
        iterate=lambda state, value: (state[0] + 1, state[1] + value),
        terminate=lambda state: state[1] / state[0] if state[0] else None,
    )


def _make_min() -> Aggregate:
    return Aggregate(
        "min",
        initialize=lambda: None,
        iterate=lambda state, value: value if state is None else min(state, value),
        terminate=lambda state: state,
    )


def _make_max() -> Aggregate:
    return Aggregate(
        "max",
        initialize=lambda: None,
        iterate=lambda state, value: value if state is None else max(state, value),
        terminate=lambda state: state,
    )


def _make_first() -> Aggregate:
    sentinel = object()
    return Aggregate(
        "first",
        initialize=lambda: sentinel,
        iterate=lambda state, value: value if state is sentinel else state,
        terminate=lambda state: None if state is sentinel else state,
        skip_nulls=False,
    )


def _make_last() -> Aggregate:
    sentinel = object()
    return Aggregate(
        "last",
        initialize=lambda: sentinel,
        iterate=lambda state, value: value,
        terminate=lambda state: None if state is sentinel else state,
        skip_nulls=False,
    )


def _stddev_terminate(state: tuple[int, float, float]) -> float | None:
    count, total, total_sq = state
    if count < 2:
        return None
    mean = total / count
    variance = (total_sq - count * mean * mean) / (count - 1)
    return math.sqrt(max(variance, 0.0))


def _make_stddev() -> Aggregate:
    return Aggregate(
        "stddev",
        initialize=lambda: (0, 0.0, 0.0),
        iterate=lambda state, value: (
            state[0] + 1,
            state[1] + value,
            state[2] + value * value,
        ),
        terminate=_stddev_terminate,
    )


def _make_count_distinct() -> Aggregate:
    return Aggregate(
        "count_distinct",
        initialize=lambda: set(),
        iterate=lambda state, value: (state.add(value), state)[1],
        terminate=lambda state: len(state),
    )


def _make_median() -> Aggregate:
    def terminate(state: list[Any]) -> Any:
        if not state:
            return None
        ordered = sorted(state)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2

    return Aggregate(
        "median",
        initialize=lambda: [],
        iterate=lambda state, value: (state.append(value), state)[1],
        terminate=terminate,
    )


#: Factory functions for every built-in aggregate.  Factories (rather than
#: shared instances) keep UDA-style stateful implementations safe.
BUILTIN_AGGREGATES: Mapping[str, Callable[[], Aggregate]] = {
    "count": _make_count,
    "count(*)": _make_count_star,
    "sum": _make_sum,
    "avg": _make_avg,
    "min": _make_min,
    "max": _make_max,
    "first": _make_first,
    "last": _make_last,
    "stddev": _make_stddev,
    "count_distinct": _make_count_distinct,
    "median": _make_median,
}


class AggregateRegistry:
    """Engine-local aggregate catalog: built-ins plus registered UDAs."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Aggregate]] = dict(
            BUILTIN_AGGREGATES
        )

    def register(self, name: str, factory: Callable[[], Aggregate]) -> None:
        self._factories[name.lower()] = factory

    def create(self, name: str) -> Aggregate:
        factory = self._factories.get(name.lower())
        if factory is None:
            known = ", ".join(sorted(self._factories))
            raise UnknownAggregateError(
                f"unknown aggregate {name!r}; registered: {known}"
            )
        return factory()

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._factories
