"""Single-stream transducers.

The paper describes Example 1 as "a single-stream transducer in a DSMS...
a continuous query that takes in a tuple, and produces tuples into another
data stream."  This module provides that building block directly, for
applications that want to express transformations in Python rather than in
ESL-EV text (the compiled language queries are themselves built from these
pieces).

A transducer is a function ``Tuple -> iterable of Tuples`` wired between an
input stream and an output stream.  Stateful transducers are ordinary
closures or objects with ``__call__``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .errors import SchemaError
from .streams import Stream
from .tuples import Tuple

TransducerFn = Callable[[Tuple], Iterable[Tuple]]


class Transducer:
    """Wires a per-tuple function between an input and an output stream."""

    def __init__(
        self,
        source: Stream,
        sink: Stream,
        fn: TransducerFn,
        name: str = "",
    ) -> None:
        self.source = source
        self.sink = sink
        self.fn = fn
        self.name = name or f"{source.name}->{sink.name}"
        self.in_count = 0
        self.out_count = 0
        self._unsubscribe = source.subscribe(self._on_tuple)

    def _on_tuple(self, tup: Tuple) -> None:
        self.in_count += 1
        for out in self.fn(tup):
            if out.schema != self.sink.schema:
                raise SchemaError(
                    f"transducer {self.name!r} produced schema {out.schema!r}, "
                    f"sink expects {self.sink.schema!r}"
                )
            self.sink.push(out)
            self.out_count += 1

    def stop(self) -> None:
        self._unsubscribe()

    @property
    def selectivity(self) -> float:
        """Output/input ratio so far (1.0 when nothing has arrived)."""
        if not self.in_count:
            return 1.0
        return self.out_count / self.in_count

    def __repr__(self) -> str:
        return (
            f"Transducer({self.name!r}, in={self.in_count}, out={self.out_count})"
        )


def map_transducer(
    source: Stream, sink: Stream, fn: Callable[[Tuple], Tuple]
) -> Transducer:
    """A 1:1 transducer from a plain mapping function."""
    return Transducer(source, sink, lambda tup: (fn(tup),))


def filter_transducer(
    source: Stream, sink: Stream, predicate: Callable[[Tuple], bool]
) -> Transducer:
    """A filtering transducer passing tuples through unchanged.

    Source and sink must share a schema.
    """
    if source.schema != sink.schema:
        raise SchemaError(
            f"filter transducer needs matching schemas, got {source.schema!r} "
            f"vs {sink.schema!r}"
        )
    return Transducer(source, sink, lambda tup: (tup,) if predicate(tup) else ())
