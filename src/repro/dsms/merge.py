"""Deterministic merge of sharded engine outputs.

A :class:`~repro.dsms.sharding.ShardedEngine` runs N independent
:class:`~repro.dsms.engine.Engine` shards.  Each shard emits result rows in
its own local order; to present callers with the *single* result stream a
one-engine run would have produced, every emission is stamped and the
per-shard runs are k-way merged.

Merge discipline
----------------

Every emitted row is stamped ``(ts, g, shard, local)`` where

* ``ts`` is the emission timestamp (for timer-driven EXCEPTION_SEQ
  violations this is the timer *deadline* — the clock fires callbacks with
  the deadline, not the arrival time that made it due);
* ``g`` is the global input-record index that was current on the shard when
  the row was drained (the router counts every pushed record once, across
  all streams and shards);
* ``shard`` is the shard index;
* ``local`` is a per-shard, per-sink emission counter.

Within one shard a run is already sorted by this key: the shard clock only
moves forward, tuple-driven emissions carry the triggering input's
timestamp, timer-driven emissions carry deadlines that are due at or before
the current clock, and ``g``/``local`` are monotone by construction.  The
merge is therefore a streaming :func:`heapq.merge` over already-sorted runs.

Why this reproduces single-engine order: a single engine's collector list is
ordered by emission time, which is non-decreasing in ``ts`` (clock
discipline) and, within equal ``ts``, by triggering input record (``g``) —
timers due at a record's timestamp fire *before* the record is delivered,
and timer outputs carry ``ts`` = deadline <= record ts.  Sorting the union
of shard runs by ``(ts, g, shard, local)`` hence reconstructs that order
exactly, up to cross-shard ties in the full ``(ts, g)`` pair — which cannot
occur for tuple-driven outputs (one input record triggers output on exactly
one shard) and are measure-zero for timer outputs on float-timestamped
workloads (they need two timers armed for the *same* deadline from anchors
on different shards).  See ``docs/PERFORMANCE.md`` for the full argument.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, Sequence

# A stamped emission: (ts, g, shard, local, values).  Plain tuples keep the
# records picklable (parallel executor workers ship them back to the
# router) and directly comparable — (shard, local) is unique per shard, so
# heap comparisons never reach the values payload.
StampedRow = tuple[float, int, int, int, tuple[Any, ...]]


class StampedSink:
    """Stamps new rows appearing on one sink of one shard.

    The sink's backing list is whatever the shard engine already appends
    result tuples to (a :class:`~repro.dsms.engine.Collector`'s ``results``).
    ``drain(g)`` is called after every ingest/advance step; it stamps any
    rows that appeared since the previous drain with the current global
    record index.  Emission order within the backing list is preserved via
    the ``local`` counter.
    """

    __slots__ = ("sink_id", "shard", "_backing", "_cursor", "_local", "rows")

    def __init__(self, sink_id: str, shard: int, backing: list) -> None:
        self.sink_id = sink_id
        self.shard = shard
        self._backing = backing
        self._cursor = 0
        self._local = 0
        self.rows: list[StampedRow] = []

    def drain(self, g: int) -> None:
        backing = self._backing
        cursor = self._cursor
        if len(backing) == cursor:
            return
        shard = self.shard
        local = self._local
        append = self.rows.append
        for tup in backing[cursor:]:
            append((tup.ts, g, shard, local, tup.values))
            local += 1
        self._cursor = len(backing)
        self._local = local

    def take(self) -> list[StampedRow]:
        """Return and clear the stamped rows accumulated so far."""
        out = self.rows
        self.rows = []
        return out


class RunCollector:
    """Accumulates per-(sink, shard) stamped runs on the router side.

    The pipe transport's reader threads append output runs concurrently —
    one thread per shard — so the backing lists are laid out per shard and
    pre-registered up front: after :meth:`register`, ``absorb`` only ever
    appends to the one slot its shard owns, making the structure safe
    without a lock (list.append is atomic, and no two threads share a
    slot).  ``runs_for`` is called from the router thread only after a
    drain barrier, when every reader is quiescent.
    """

    __slots__ = ("_runs",)

    def __init__(self) -> None:
        self._runs: dict[str, list[list[StampedRow]]] = {}

    def register(self, sink_id: str, n_shards: int) -> None:
        self._runs[sink_id] = [[] for _ in range(n_shards)]

    def sink_ids(self) -> list[str]:
        return list(self._runs)

    def absorb(self, shard: int, outputs: "dict[str, list[StampedRow]]") -> None:
        """Append *outputs* (one shard's drained runs, in emission order)."""
        for sink_id, rows in outputs.items():
            self._runs[sink_id][shard].extend(rows)

    def runs_for(self, sink_id: str) -> list[list[StampedRow]]:
        """The per-shard sorted runs accumulated for *sink_id* so far."""
        return self._runs[sink_id]

    def merged_for(self, sink_id: str) -> list[StampedRow]:
        """K-way merge of *sink_id*'s runs, in single-engine order."""
        return list(merge_runs(self.runs_for(sink_id)))


def merge_runs(runs: Sequence[Sequence[StampedRow]]) -> Iterator[StampedRow]:
    """K-way merge of per-shard stamped runs into one deterministic stream.

    Each run must be internally sorted by ``(ts, g, shard, local)`` — true
    by construction for runs produced by :class:`StampedSink` (see module
    docstring).  The output is globally sorted by the same key.
    """
    return heapq.merge(*runs)


def merged_values(runs: Sequence[Sequence[StampedRow]]) -> list[tuple[float, tuple]]:
    """Merge runs and project to ``(ts, values)`` pairs, in final order."""
    return [(row[0], row[4]) for row in merge_runs(runs)]
