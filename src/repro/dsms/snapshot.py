"""Ad-hoc snapshot queries.

The paper (section 2.1, "Ad-hoc Queries") calls out queries like *"the
current location of the patient"* — answered from live stream state without
persisting readings to a database.  A :class:`SnapshotView` subscribes to a
stream, maintains a bounded window of recent tuples, and answers one-shot
SELECT-style questions against that window at any moment.

This is the DSMS-side primitive; the ESL-EV front end compiles ad-hoc
``SELECT ... FROM <stream> OVER (...)`` text onto it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .aggregates import AggregateRegistry
from .streams import Stream
from .tuples import Tuple
from .windows import RangeWindowBuffer, WindowSpec


class SnapshotView:
    """A continuously-maintained window supporting ad-hoc queries."""

    def __init__(
        self,
        stream: Stream,
        window: WindowSpec | float | None = None,
        aggregates: AggregateRegistry | None = None,
    ) -> None:
        """Args:
            stream: the stream to watch.
            window: retention — a :class:`WindowSpec`, a duration in
                seconds, or None for unbounded retention.
            aggregates: registry used by :meth:`aggregate`; a private one is
                created when omitted.
        """
        self.stream = stream
        if isinstance(window, WindowSpec):
            self._buffer = window.make_buffer()
        elif window is None:
            self._buffer = RangeWindowBuffer(None)
        else:
            self._buffer = RangeWindowBuffer(float(window))
        self._aggregates = aggregates or AggregateRegistry()
        self._unsubscribe = stream.subscribe(self._buffer.append)

    def stop(self) -> None:
        self._unsubscribe()

    # -- queries ---------------------------------------------------------

    def current(self) -> list[Tuple]:
        """All tuples currently inside the window, oldest first."""
        return list(self._buffer)

    def select(
        self,
        where: Callable[[Tuple], bool] | None = None,
        columns: Sequence[str] | None = None,
    ) -> list[dict[str, Any]]:
        """SELECT columns FROM window WHERE predicate — as dicts."""
        out: list[dict[str, Any]] = []
        for tup in self._buffer:
            if where is not None and not where(tup):
                continue
            if columns is None:
                out.append(tup.as_dict())
            else:
                out.append({name: tup[name] for name in columns})
        return out

    def latest_by(self, key_field: str) -> dict[Any, Tuple]:
        """Most recent tuple per key — e.g. current location per tag_id.

        This is exactly the paper's patient-tracking snapshot: the freshest
        reading for each tracked entity, straight from stream state.
        """
        latest: dict[Any, Tuple] = {}
        for tup in self._buffer:  # oldest-first, so later wins
            latest[tup[key_field]] = tup
        return latest

    def aggregate(
        self,
        name: str,
        column: str | None = None,
        where: Callable[[Tuple], bool] | None = None,
    ) -> Any:
        """Run an aggregate over the window: ``view.aggregate('count')``."""
        agg = self._aggregates.create(name if column is not None else "count(*)")
        if column is not None:
            agg = self._aggregates.create(name)
        values: Iterable[Any]
        tuples = (
            tup for tup in self._buffer if where is None or where(tup)
        )
        if column is None:
            values = (1 for _ in tuples)
        else:
            values = (tup[column] for tup in tuples)
        return agg.compute(values)

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return f"SnapshotView({self.stream.name!r}, {len(self)} tuples held)"
