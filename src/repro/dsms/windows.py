"""Sliding-window specifications and buffers.

Two buffer families implement the SQL:2003-style windows ESL-EV uses:

* :class:`RangeWindowBuffer` — time-based (``RANGE 1 SECONDS PRECEDING``),
  retaining every tuple whose timestamp is within a duration of the newest
  observed time.
* :class:`RowsWindowBuffer` — count-based (``ROWS 10 PRECEDING``), retaining
  the last N tuples.

Both support *symmetric* queries (``PRECEDING AND FOLLOWING``, paper
section 3.2) through :meth:`tuples_between`, provided the caller retains
tuples long enough — the engine's cross-sub-query operator does this with
timers.

Durations in ESL-EV text (``30 MINUTES``) normalize to seconds via
:func:`duration_seconds`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from operator import attrgetter
from typing import Iterator, Mapping

from .errors import WindowError
from .tuples import Tuple

_TS = attrgetter("ts")

#: Unit name (singular, lowercase) -> seconds.  The parser strips plurals.
TIME_UNITS: Mapping[str, float] = {
    "millisecond": 0.001,
    "second": 1.0,
    "minute": 60.0,
    "hour": 3600.0,
    "day": 86400.0,
}


def duration_seconds(amount: float, unit: str) -> float:
    """Normalize ``(30, 'MINUTES')`` to seconds.

    Accepts singular or plural unit names, case-insensitively.
    """
    name = unit.strip().lower()
    if name.endswith("s") and name not in TIME_UNITS:
        name = name[:-1]
    if name not in TIME_UNITS:
        known = ", ".join(sorted(TIME_UNITS))
        raise WindowError(f"unknown time unit {unit!r}; expected one of {known}")
    if amount < 0:
        raise WindowError(f"negative duration: {amount} {unit}")
    return float(amount) * TIME_UNITS[name]


class WindowSpec:
    """A parsed window clause.

    Attributes:
        kind: ``"range"`` (time) or ``"rows"`` (count).
        preceding: seconds (range) or rows (rows) looking backwards; None
            means unbounded.
        following: seconds looking forwards (0 for ordinary windows; positive
            only for the paper's PRECEDING AND FOLLOWING extension).
        include_current: whether the probing tuple itself is inside the
            window.  Example 1's duplicate filter excludes it (a tuple is not
            its own duplicate).
    """

    __slots__ = ("kind", "preceding", "following", "include_current")

    def __init__(
        self,
        kind: str = "range",
        preceding: float | None = None,
        following: float = 0.0,
        include_current: bool = False,
    ) -> None:
        if kind not in ("range", "rows"):
            raise WindowError(f"unknown window kind {kind!r}")
        if kind == "rows" and following:
            raise WindowError("ROWS windows cannot have a FOLLOWING part")
        self.kind = kind
        self.preceding = preceding
        self.following = float(following)
        self.include_current = include_current

    @property
    def symmetric(self) -> bool:
        """True for PRECEDING AND FOLLOWING windows."""
        return self.following > 0

    def make_buffer(self) -> "RangeWindowBuffer | RowsWindowBuffer":
        """Build the matching buffer.  Symmetric windows need range buffers
        that retain ``preceding + following`` seconds behind the newest
        tuple so both sides of any anchor stay queryable."""
        if self.kind == "rows":
            if self.preceding is None:
                raise WindowError("ROWS window requires a row count")
            return RowsWindowBuffer(int(self.preceding))
        if self.preceding is None:
            return RangeWindowBuffer(None)
        return RangeWindowBuffer(self.preceding + self.following)

    def __repr__(self) -> str:
        if self.kind == "rows":
            return f"WindowSpec(ROWS {self.preceding:g} PRECEDING)"
        parts = []
        if self.preceding is None:
            parts.append("UNBOUNDED PRECEDING")
        else:
            parts.append(f"RANGE {self.preceding:g}s PRECEDING")
        if self.following:
            parts.append(f"AND {self.following:g}s FOLLOWING")
        return f"WindowSpec({' '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowSpec):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.preceding == other.preceding
            and self.following == other.following
            and self.include_current == other.include_current
        )


class RangeWindowBuffer:
    """Time-based window: keeps tuples within *duration* of the newest time.

    Tuples must be appended in timestamp order (the stream contract
    guarantees this), which makes the storage a sorted array: eviction and
    the window queries locate their timestamp boundaries with ``bisect``
    instead of scanning from the left.  Storage is a list with a lazy head
    offset — eviction advances the head pointer and the dead prefix is
    compacted away only once it dominates, so ``evict`` is O(log n)
    amortized instead of one ``popleft`` per dropped tuple.

    ``duration=None`` means unbounded retention.
    """

    __slots__ = ("duration", "_tuples", "_head", "_latest")

    #: Dead-prefix compaction threshold (elements); below this the copy is
    #: cheaper to skip.
    COMPACT_MIN = 32

    def __init__(self, duration: float | None) -> None:
        if duration is not None and duration < 0:
            raise WindowError(f"negative window duration: {duration}")
        self.duration = duration
        self._tuples: list[Tuple] = []
        self._head = 0
        self._latest: float | None = None

    def append(self, tup: Tuple) -> None:
        """Add *tup* and evict everything that fell out of the window."""
        self._tuples.append(tup)
        self._latest = tup.ts
        self.evict(tup.ts)

    def evict(self, now: float) -> int:
        """Drop tuples older than ``now - duration``; returns drop count."""
        if self.duration is None:
            return 0
        cutoff = now - self.duration
        tuples = self._tuples
        head = self._head
        keep = bisect_left(tuples, cutoff, lo=head, hi=len(tuples), key=_TS)
        dropped = keep - head
        if dropped:
            self._head = keep
            if keep >= self.COMPACT_MIN and keep * 2 >= len(tuples):
                del tuples[:keep]
                self._head = 0
        return dropped

    def tuples_between(self, lo: float, hi: float) -> Iterator[Tuple]:
        """Tuples with ``lo <= ts <= hi`` in arrival order.

        Only sound if the buffer still retains everything at or after *lo*;
        callers working with symmetric windows size the buffer accordingly.
        """
        tuples = self._tuples
        start = bisect_left(tuples, lo, lo=self._head, hi=len(tuples), key=_TS)
        for index in range(start, len(tuples)):
            tup = tuples[index]
            if tup.ts > hi:
                break
            yield tup

    def tuples_preceding(
        self, anchor: Tuple, duration: float, include_anchor: bool = False
    ) -> Iterator[Tuple]:
        """Tuples within *duration* before *anchor* (Example 1 semantics).

        Excludes tuples arriving after the anchor; ``include_anchor``
        controls whether the anchor tuple itself (matched by identity) is
        yielded.
        """
        lo = anchor.ts - duration
        tuples = self._tuples
        start = bisect_left(tuples, lo, lo=self._head, hi=len(tuples), key=_TS)
        for index in range(start, len(tuples)):
            tup = tuples[index]
            if (tup.ts, tup.seq) > (anchor.ts, anchor.seq):
                break
            if tup is anchor and not include_anchor:
                continue
            yield tup

    def __iter__(self) -> Iterator[Tuple]:
        tuples = self._tuples
        return iter(tuples[self._head:] if self._head else tuples)

    def __len__(self) -> int:
        return len(self._tuples) - self._head

    @property
    def latest_ts(self) -> float | None:
        return self._latest

    def clear(self) -> None:
        self._tuples.clear()
        self._head = 0

    def __repr__(self) -> str:
        span = "unbounded" if self.duration is None else f"{self.duration:g}s"
        return f"RangeWindowBuffer({span}, {len(self)} tuples)"


class RowsWindowBuffer:
    """Count-based window: keeps the most recent *capacity* tuples."""

    __slots__ = ("capacity", "_tuples")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise WindowError(f"negative window capacity: {capacity}")
        self.capacity = capacity
        self._tuples: deque[Tuple] = deque(maxlen=capacity if capacity else 1)
        if capacity == 0:
            self._tuples = deque(maxlen=0)

    def append(self, tup: Tuple) -> None:
        self._tuples.append(tup)

    def evict(self, now: float) -> int:
        return 0  # deque maxlen handles eviction on append

    def tuples_preceding(
        self, anchor: Tuple, duration: float | None = None, include_anchor: bool = False
    ) -> Iterator[Tuple]:
        for tup in self._tuples:
            if (tup.ts, tup.seq) > (anchor.ts, anchor.seq):
                break
            if tup is anchor and not include_anchor:
                continue
            yield tup

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def clear(self) -> None:
        self._tuples.clear()

    def __repr__(self) -> str:
        return f"RowsWindowBuffer({self.capacity}, {len(self)} tuples)"
