"""Shared multi-query execution: registry, predicate routing, plan dedup.

One :class:`~repro.dsms.engine.Engine` normally runs one compiled plan; a
production deployment runs thousands of concurrent continuous queries over
the same RFID streams.  :class:`QueryRegistry` makes N registered queries
cost far less than N engines, three ways:

* **Shared ingestion.**  Every query compiles into the one engine, so
  stream admission, schema decode, clock advancement, and columnar batch
  handling run once per tuple/batch for the whole registry, not once per
  query.

* **Predicate-indexed routing.**  Each compiled plan's stream callbacks
  are relocated behind a per-stream :class:`StreamRouter`.  Plans whose
  admission predicates hoist to literal equality/range constraints on one
  field (the SASE predicate-index idea, reusing the same single-alias
  conjunct analysis as the shard-routing key hoist) enter a hash/interval
  index; an incoming tuple is dispatched only to candidate plans, plus a
  residual scan list for everything unindexable.  Routing may over-admit
  — every plan re-checks delivered tuples with its own compiled
  predicate — but never under-admits, the same contract the vectorized
  admission masks follow.

* **Sub-plan dedup.**  Statements are fingerprinted structurally; N
  registrations of an identical query share one compiled plan (one SEQ
  operator, one NFA state set) and fan out per-subscriber at the emit
  stage through a :class:`FanoutCollector`.

Subscribers register/cancel at runtime (the SesameStream subscription
model): :meth:`QueryRegistry.register` returns a :class:`Subscription`
whose answers arrive on its own sink, and :meth:`Subscription.cancel` is
an idempotent detach that frees all per-query state.

Routing soundness notes (why gating a tuple away from a plan is exact):

* Filter plans evaluate WHERE strictly per tuple with no cross-tuple
  state, so dropping a tuple that provably fails an indexed conjunct
  cannot change any other output row.  NULL field values fail strict
  comparisons, so a strict gate drops them.
* Temporal SEQ plans are gated only when compiled guards are active
  (``compile_expressions``), the pairing mode is not CONSECUTIVE (where
  non-matching arrivals interrupt runs), and no argument is starred: on
  those plans the operator's own admission check drops exactly the same
  tuples before *any* state mutation, so upstream gating is
  output-identical.  SEQ admission is lenient — a NULL comparison passes
  — so temporal gates deliver NULL-valued rows.
* Everything else (EXCEPTION_SEQ/CLEVEL, CONSECUTIVE, starred args,
  EXISTS probes, aggregates with window buffers, interpreted engines)
  routes through the residual list and sees every tuple, exactly as if
  directly subscribed.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Mapping, Sequence

from .engine import Collector, Engine, QueryHandle
from .errors import EslSemanticError
from .expressions import AdmissionConstraint, admission_constraint
from .streams import Stream
from .tuples import Tuple

__all__ = [
    "FanoutCollector",
    "QueryRegistry",
    "StreamRouter",
    "Subscription",
    "fingerprint_statement",
]


# ---------------------------------------------------------------------------
# Statement fingerprinting (sub-plan dedup keys)
# ---------------------------------------------------------------------------


def _fp_expr(expr: Any) -> Any:
    """A hashable structural fingerprint of an expression tree.

    Node reprs are not uniformly complete (``Case``, ``ExistsPredicate``
    elide children), so the fingerprint recurses explicitly over the node
    kinds that carry semantics and falls back to ``(repr, children)`` for
    anything else.  Alias/field case is preserved: resolution is
    case-insensitive but output column naming is not, so case-variant
    twins must not dedupe into one schema.
    """
    from ..core.language.ast_nodes import (
        ExistsPredicate,
        PreviousRef,
        SeqPredicate,
        StarAggregate,
    )
    from .expressions import (
        And,
        Between,
        BinaryOp,
        Case,
        Column,
        FunctionCall,
        InList,
        IsNull,
        Like,
        Literal,
        Negate,
        Not,
        Or,
    )

    if expr is None:
        return None
    if isinstance(expr, Literal):
        return ("lit", type(expr.value).__name__, expr.value)
    if isinstance(expr, Column):
        return ("col", expr.alias, expr.field)
    if isinstance(expr, BinaryOp):
        return ("bin", expr.op, _fp_expr(expr.left), _fp_expr(expr.right))
    if isinstance(expr, (And, Or)):
        return (
            type(expr).__name__.lower(),
            tuple(_fp_expr(op) for op in expr.operands),
        )
    if isinstance(expr, (Not, Negate)):
        return (type(expr).__name__.lower(), _fp_expr(expr.operand))
    if isinstance(expr, IsNull):
        return ("isnull", expr.negate, _fp_expr(expr.operand))
    if isinstance(expr, Between):
        return (
            "between", expr.negate, _fp_expr(expr.operand),
            _fp_expr(expr.low), _fp_expr(expr.high),
        )
    if isinstance(expr, InList):
        return (
            "in", expr.negate, _fp_expr(expr.operand),
            tuple(_fp_expr(option) for option in expr.options),
        )
    if isinstance(expr, Like):
        return (
            "like", expr.negate, _fp_expr(expr.operand),
            _fp_expr(expr.pattern),
        )
    if isinstance(expr, FunctionCall):
        return (
            "fn", expr.name.lower(),
            tuple(_fp_expr(arg) for arg in expr.args),
        )
    if isinstance(expr, Case):
        return (
            "case",
            tuple(
                (_fp_expr(cond), _fp_expr(value))
                for cond, value in expr.branches
            ),
            _fp_expr(expr.default),
        )
    if isinstance(expr, SeqPredicate):
        return (
            "seq", expr.op_name, expr.mode, repr(expr.window),
            tuple((arg.name, arg.starred) for arg in expr.args),
        )
    if isinstance(expr, ExistsPredicate):
        return ("exists", expr.negate, fingerprint_statement(expr.query))
    if isinstance(expr, StarAggregate):
        return ("stagg", expr.func, expr.alias, expr.field)
    if isinstance(expr, PreviousRef):
        return ("prev", expr.alias, expr.field)
    return (
        "node", type(expr).__name__, repr(expr),
        tuple(_fp_expr(child) for child in expr.children()),
    )


def fingerprint_statement(statement: Any) -> Any:
    """A hashable dedup key for a parsed SELECT statement.

    Structurally identical statements (same select list, sources,
    windows, WHERE conjuncts, grouping) share a key and therefore one
    compiled plan.  Statements the fingerprint cannot hash fall back to
    an identity key, which disables dedup for them but never mis-shares.
    """
    fp = (
        "select",
        statement.select_star,
        tuple(
            (_fp_expr(item.expr), item.alias)
            for item in statement.select_items
        ),
        tuple(
            (item.name.lower(), item.alias, repr(item.window))
            for item in statement.from_items
        ),
        _fp_expr(statement.where),
        tuple(_fp_expr(expr) for expr in statement.group_by),
        _fp_expr(statement.having),
        statement.insert_into,
    )
    try:
        hash(fp)
    except TypeError:
        return ("identity", id(statement))
    return fp


# ---------------------------------------------------------------------------
# Subscriptions and the fan-out collector
# ---------------------------------------------------------------------------


class Subscription:
    """A registered query's per-subscriber handle.

    Answers arrive on :attr:`on_answer` when given, else accumulate in
    :attr:`results` (list of result Tuples, same shape as
    ``QueryHandle.results``).  :meth:`cancel` detaches idempotently.
    """

    __slots__ = (
        "id", "text", "on_answer", "results", "active", "plan",
        "_owner", "_extra",
    )

    def __init__(
        self,
        owner: Any,
        sub_id: int,
        text: str,
        on_answer: Callable[[Tuple], None] | None,
    ) -> None:
        self.id = sub_id
        self.text = text
        self.on_answer = on_answer
        self.results: list[Tuple] = []
        self.active = True
        self.plan: "SharedPlan | None" = None
        self._owner = owner
        self._extra: Any = None  # naive mode parks the per-query engine here

    def __call__(self, tup: Tuple) -> None:
        """The sink the fan-out collector delivers to."""
        if self.on_answer is not None:
            self.on_answer(tup)
        else:
            self.results.append(tup)

    def rows(self) -> list[dict[str, Any]]:
        """Accumulated answers as plain dicts."""
        return [tup.as_dict() for tup in self.results]

    def clear(self) -> None:
        self.results.clear()

    def cancel(self) -> None:
        """Detach from the registry.  Safe to call repeatedly."""
        self._owner.cancel(self)

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"Subscription(#{self.id}, {state}, {len(self.results)} answers)"


class FanoutCollector(Collector):
    """A collector that fans results out to subscriber sinks.

    Registered continuous queries must not accumulate answers in an
    unbounded list, so the registry parks one of these on the engine
    (:meth:`Engine.make_collector`) before compiling: the plan's emit
    path then delivers each result tuple to every live sink — the
    dedup fan-out point.
    """

    def __init__(self, name: str = "fanout") -> None:
        super().__init__(name)
        self._sinks: tuple[Callable[[Tuple], None], ...] = ()

    def __call__(self, tup: Tuple) -> None:
        for sink in self._sinks:
            sink(tup)

    def add_sink(self, sink: Callable[[Tuple], None]) -> None:
        self._sinks = self._sinks + (sink,)

    def discard_sink(self, sink: Callable[[Tuple], None]) -> None:
        self._sinks = tuple(s for s in self._sinks if s is not sink)

    @property
    def sink_count(self) -> int:
        return len(self._sinks)


# ---------------------------------------------------------------------------
# Per-stream predicate-indexed routing
# ---------------------------------------------------------------------------


class _PlanEntry:
    """One plan's relocated callbacks on one stream, plus its gate."""

    __slots__ = ("plan", "callbacks", "constraint", "lenient", "hooks")

    def __init__(
        self,
        plan: "SharedPlan",
        callbacks: Sequence[Callable[[Tuple], None]],
        constraint: AdmissionConstraint | None,
        lenient: bool,
    ) -> None:
        self.plan = plan
        self.callbacks = tuple(callbacks)
        self.constraint = constraint
        self.lenient = lenient
        # The callbacks' own vectorized-admission hooks, when all are
        # present (residual entries fold them into the router's batch
        # mask; gated entries use the gate itself).
        hooks = [
            getattr(callback, "vector_admission", None)
            for callback in self.callbacks
        ]
        self.hooks = tuple(hooks) if all(hooks) else None

    def deliver(self, tup: Tuple) -> None:
        for callback in self.callbacks:
            callback(tup)


class _FieldIndex:
    """The router's index for one gated field of one stream."""

    __slots__ = ("field", "position", "eq", "lenient", "scan")

    def __init__(self, field: str, position: int) -> None:
        self.field = field
        self.position = position
        self.eq: dict[Any, list[_PlanEntry]] = {}
        self.lenient: list[_PlanEntry] = []  # eq-only entries passing NULL
        self.scan: list[_PlanEntry] = []     # entries with range components

    @property
    def empty(self) -> bool:
        return not self.eq and not self.lenient and not self.scan


class StreamRouter:
    """The single subscriber a routed stream fans out through.

    Holds the predicate index: per-field equality buckets and range scan
    lists for gated entries, plus the residual list for plans whose
    predicates did not hoist.  Dispatch visits only candidate entries —
    the per-tuple cost is one hash lookup per indexed field plus the
    residual scan, independent of how many equality-routed plans are
    registered.
    """

    def __init__(self, stream: Stream) -> None:
        self.stream = stream
        self.residual: list[_PlanEntry] = []
        self._fields: dict[str, _FieldIndex] = {}
        self._field_list: tuple[_FieldIndex, ...] = ()
        self._vector_ready = True
        self.dispatched = 0
        self.delivered = 0
        self._unsubscribe: Callable[[], None] | None = stream.subscribe(self)

    # -- registration -----------------------------------------------------

    def _position_of(self, field: str) -> int | None:
        schema = self.stream.schema
        if field in schema:
            return schema.position(field)
        key = field.lower()
        for position, name in enumerate(schema.names):
            if name.lower() == key:
                return position
        return None

    def add(
        self,
        plan: "SharedPlan",
        callbacks: Sequence[Callable[[Tuple], None]],
        constraint: AdmissionConstraint | None,
        lenient: bool,
    ) -> _PlanEntry:
        entry = _PlanEntry(plan, callbacks, constraint, lenient)
        position = (
            self._position_of(constraint.field)
            if constraint is not None
            else None
        )
        if constraint is None or position is None:
            entry.constraint = None
            self.residual.append(entry)
        else:
            index = self._fields.get(constraint.field.lower())
            if index is None:
                index = _FieldIndex(constraint.field, position)
                self._fields[constraint.field.lower()] = index
                self._field_list = tuple(self._fields.values())
            if constraint.ranges:
                index.scan.append(entry)
            else:
                for value in constraint.values or ():
                    index.eq.setdefault(value, []).append(entry)
                if lenient:
                    index.lenient.append(entry)
        self._refresh_vector_ready()
        return entry

    def remove(self, entry: _PlanEntry) -> None:
        constraint = entry.constraint
        if constraint is None:
            if entry in self.residual:
                self.residual.remove(entry)
        else:
            index = self._fields.get(constraint.field.lower())
            if index is not None:
                if entry in index.scan:
                    index.scan.remove(entry)
                for value in constraint.values or ():
                    bucket = index.eq.get(value)
                    if bucket and entry in bucket:
                        bucket.remove(entry)
                        if not bucket:
                            del index.eq[value]
                if entry in index.lenient:
                    index.lenient.remove(entry)
                if index.empty:
                    del self._fields[constraint.field.lower()]
                    self._field_list = tuple(self._fields.values())
        self._refresh_vector_ready()

    @property
    def empty(self) -> bool:
        return not self.residual and not self._fields

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- dispatch ---------------------------------------------------------

    def __call__(self, tup: Tuple) -> None:
        self.dispatched += 1
        delivered = self.delivered
        values = tup.values
        for index in self._field_list:
            value = values[index.position]
            if value is None:
                for entry in index.lenient:
                    delivered += 1
                    entry.deliver(tup)
            else:
                bucket = index.eq.get(value)
                if bucket:
                    for entry in bucket:
                        delivered += 1
                        entry.deliver(tup)
            for entry in index.scan:
                if value is None:
                    if entry.lenient:
                        delivered += 1
                        entry.deliver(tup)
                elif entry.constraint.admits(value):
                    delivered += 1
                    entry.deliver(tup)
        for entry in self.residual:
            delivered += 1
            entry.deliver(tup)
        self.delivered = delivered

    # -- columnar admission ----------------------------------------------

    def vector_admission(
        self, cols: Sequence[Sequence[Any]], tss: Sequence[float], n: int
    ) -> list | None:
        """The union materialization mask across all routed plans.

        Gated entries contribute index membership per row; residual
        entries contribute their callbacks' own admission masks.  Any
        entry that cannot mask makes the whole batch materialize — the
        scalar dispatch then re-gates exactly.
        """
        if not self._vector_ready:
            return None
        mask = [False] * n
        for entry in self.residual:
            for hook in entry.hooks:
                sub_mask = hook(cols, tss, n)
                if sub_mask is None:
                    return None
                for i in range(n):
                    if sub_mask[i]:
                        mask[i] = True
        try:
            for index in self._field_list:
                column = cols[index.position]
                eq = index.eq
                has_lenient = bool(index.lenient)
                for i in range(n):
                    if mask[i]:
                        continue
                    value = column[i]
                    if value is None:
                        if has_lenient:
                            mask[i] = True
                    elif eq and value in eq:
                        mask[i] = True
                for entry in index.scan:
                    constraint = entry.constraint
                    lenient = entry.lenient
                    for i in range(n):
                        if mask[i]:
                            continue
                        value = column[i]
                        if value is None:
                            if lenient:
                                mask[i] = True
                        elif constraint.admits(value):
                            mask[i] = True
        except TypeError:
            return None  # unhashable batch values: materialize everything
        return mask

    def _refresh_vector_ready(self) -> None:
        self._vector_ready = all(
            entry.hooks is not None for entry in self.residual
        )

    # -- introspection ----------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "stream": self.stream.name,
            "fields": [
                {
                    "field": index.field,
                    "eq_keys": len(index.eq),
                    "eq_entries": sum(len(b) for b in index.eq.values()),
                    "range_entries": len(index.scan),
                    "lenient_entries": len(index.lenient),
                }
                for index in self._field_list
            ],
            "residual": len(self.residual),
            "dispatched": self.dispatched,
            "delivered": self.delivered,
        }

    def __repr__(self) -> str:
        return (
            f"StreamRouter({self.stream.name!r}, "
            f"fields={len(self._fields)}, residual={len(self.residual)})"
        )


# ---------------------------------------------------------------------------
# Shared plans and the registry
# ---------------------------------------------------------------------------


class SharedPlan:
    """One compiled plan shared by every structurally identical query."""

    __slots__ = ("fingerprint", "text", "handle", "collector", "entries", "sinks")

    def __init__(
        self,
        fingerprint: Any,
        text: str,
        handle: QueryHandle,
        collector: FanoutCollector,
        entries: Sequence[tuple[StreamRouter, _PlanEntry]],
    ) -> None:
        self.fingerprint = fingerprint
        self.text = text
        self.handle = handle
        self.collector = collector
        self.entries = list(entries)
        self.sinks: list[Subscription] = []

    def __repr__(self) -> str:
        return (
            f"SharedPlan({self.handle.name!r}, "
            f"{len(self.sinks)} subscribers)"
        )


class QueryRegistry:
    """Register/cancel continuous queries sharing one engine.

    See the module docstring for the execution model.  The registry owns
    no ingestion API — push tuples at the engine (or through
    :class:`~repro.dsms.multi_engine.MultiQueryEngine`, which wraps both).
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.closed = False
        self._plans: dict[Any, SharedPlan] = {}
        self._routers: dict[str, StreamRouter] = {}
        self._counter = itertools.count(1)
        self._plan_counter = itertools.count(1)

    # -- registration -----------------------------------------------------

    def register(
        self,
        text: str,
        on_answer: Callable[[Tuple], None] | None = None,
        name: str | None = None,
    ) -> Subscription:
        """Compile (or share) *text* and subscribe a sink to its answers.

        *text* must be a single SELECT without INSERT INTO — registered
        queries deliver to per-subscriber sinks, not shared tables or
        derived streams.  Returns a live :class:`Subscription`.
        """
        if self.closed:
            raise EslSemanticError("query registry is closed")
        statement = _parse_select(text)
        fingerprint = fingerprint_statement(statement)
        plan = self._plans.get(fingerprint)
        if plan is None:
            plan = self._compile_plan(statement, text, fingerprint, name)
            self._plans[fingerprint] = plan
        subscription = Subscription(self, next(self._counter), text, on_answer)
        subscription.plan = plan
        plan.sinks.append(subscription)
        plan.collector.add_sink(subscription)
        return subscription

    def _compile_plan(
        self, statement: Any, text: str, fingerprint: Any, name: str | None
    ) -> SharedPlan:
        engine = self.engine
        before = {
            stream.name: stream.subscriber_count for stream in engine.streams
        }
        collector = FanoutCollector()
        engine._pending_collector = collector
        try:
            handle = engine.query(
                text, name=name or f"mq{next(self._plan_counter)}"
            )
        finally:
            engine._pending_collector = None
        gates, lenient = _plan_gates(engine, statement)
        entries: list[tuple[StreamRouter, _PlanEntry]] = []
        plan = SharedPlan(fingerprint, text, handle, collector, ())
        for stream in engine.streams:
            taken = stream.take_subscribers(before.get(stream.name, 0))
            if not taken:
                continue
            router = self._routers.get(stream.name.lower())
            if router is None:
                router = StreamRouter(stream)
                self._routers[stream.name.lower()] = router
            entry = router.add(
                plan, taken, gates.get(stream.name.lower()), lenient
            )
            entries.append((router, entry))
        plan.entries = entries
        return plan

    # -- cancellation -----------------------------------------------------

    def cancel(self, subscription: Subscription) -> None:
        """Detach *subscription*; tears the plan down after the last one.

        Idempotent: cancelling an already-cancelled subscription (or one
        belonging to a closed registry) is a no-op.
        """
        if not subscription.active:
            return
        subscription.active = False
        plan = subscription.plan
        if plan is None:
            return
        plan.collector.discard_sink(subscription)
        if subscription in plan.sinks:
            plan.sinks.remove(subscription)
        if plan.sinks:
            return
        self._teardown_plan(plan)

    def _teardown_plan(self, plan: SharedPlan) -> None:
        self._plans.pop(plan.fingerprint, None)
        for router, entry in plan.entries:
            router.remove(entry)
            if router.empty:
                router.close()
                self._routers.pop(router.stream.name.lower(), None)
        plan.entries = []
        # stop() cancels operator timers and is already idempotent; the
        # stream unsubscribes inside it are no-ops for moved callbacks.
        plan.handle.stop()
        try:
            self.engine.queries.remove(plan.handle)
        except ValueError:
            pass

    def close(self) -> None:
        """Cancel every subscription and release all routers.  Idempotent."""
        if self.closed:
            return
        for plan in list(self._plans.values()):
            for subscription in list(plan.sinks):
                self.cancel(subscription)
        self.closed = True

    def __enter__(self) -> "QueryRegistry":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- introspection ----------------------------------------------------

    @property
    def subscription_count(self) -> int:
        return sum(len(plan.sinks) for plan in self._plans.values())

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    def plans(self) -> Iterator[SharedPlan]:
        return iter(self._plans.values())

    def routers(self) -> Iterator[StreamRouter]:
        return iter(self._routers.values())

    def state_size(self) -> int:
        """Total operator state held across all shared plans (O(plans))."""
        total = 0
        for plan in self._plans.values():
            operator = getattr(plan.handle, "operator", None)
            if operator is not None:
                total += operator.state_size
        return total

    def stats(self) -> dict[str, Any]:
        indexed = residual = 0
        for router in self._routers.values():
            residual += len(router.residual)
            for index in router._field_list:
                indexed += len(index.scan) + len(index.lenient)
                seen = set()
                for bucket in index.eq.values():
                    for entry in bucket:
                        seen.add(id(entry))
                indexed += len(seen - {id(e) for e in index.lenient})
        return {
            "subscriptions": self.subscription_count,
            "shared_plans": self.plan_count,
            "streams_routed": len(self._routers),
            "indexed_entries": indexed,
            "residual_entries": residual,
            "tuples_routed": sum(
                router.dispatched for router in self._routers.values()
            ),
            "deliveries": sum(
                router.delivered for router in self._routers.values()
            ),
            "state_size": self.state_size(),
        }

    def __repr__(self) -> str:
        return (
            f"QueryRegistry(plans={self.plan_count}, "
            f"subscriptions={self.subscription_count}, "
            f"routers={len(self._routers)})"
        )


# ---------------------------------------------------------------------------
# Gate derivation
# ---------------------------------------------------------------------------


def _parse_select(text: str) -> Any:
    """Parse *text* as exactly one sink-less SELECT, or raise."""
    from ..core.language.ast_nodes import SelectStatement
    from ..core.language.parser import parse_program

    statements = parse_program(text)
    if len(statements) != 1 or not isinstance(statements[0], SelectStatement):
        raise EslSemanticError(
            "registered queries must be a single SELECT statement; run DDL "
            "through the engine (or MultiQueryEngine catalog methods) first"
        )
    statement = statements[0]
    if statement.insert_into is not None:
        raise EslSemanticError(
            "registered queries deliver answers to subscriber sinks; "
            "INSERT INTO is not supported — subscribe instead"
        )
    return statement


def _single_alias_terms(
    terms: Sequence[Any], alias: str, allow_bare: bool
) -> list[Any]:
    """Conjuncts whose column references all belong to *alias*."""
    alias_key = alias.lower()
    out = []
    for term in terms:
        ok = True
        any_ref = False
        for ref_alias, _field in term.references():
            any_ref = True
            if ref_alias is None:
                if not allow_bare:
                    ok = False
                    break
            elif ref_alias.lower() != alias_key:
                ok = False
                break
        if ok and any_ref:
            out.append(term)
    return out


def _plan_gates(
    engine: Engine, statement: Any
) -> tuple[Mapping[str, AdmissionConstraint], bool]:
    """Derive per-stream routing gates for one analyzed statement.

    Returns ``({stream_name_lower: constraint}, lenient)``.  Streams
    absent from the mapping route residually.  Gating is conservative:
    any shape whose upstream drop is not provably output-identical gets
    no gate (see the module docstring's soundness notes).
    """
    from ..core.language.analyzer import analyze
    from ..core.operators.base import PairingMode

    analysis = analyze(statement, engine)
    if analysis.exists_terms:
        return {}, False
    if analysis.kind == "filter":
        streams = [s for s in analysis.sources if s.is_stream]
        if len(streams) != 1:
            return {}, False
        source = streams[0]
        tables = [s for s in analysis.sources if s.is_table]
        allow_bare = not tables
        terms = _single_alias_terms(
            analysis.guard_terms, source.alias, allow_bare
        )
        constraint = admission_constraint(terms, source.alias, allow_bare)
        if constraint is None:
            return {}, False
        return {source.name.lower(): constraint}, False
    if analysis.kind != "temporal":
        return {}, False
    # Temporal plans: SEQ only, compiled guards, non-CONSECUTIVE, star-free.
    if analysis.clevel is not None or not engine.compile_expressions:
        return {}, True
    predicate = analysis.temporal
    if predicate is None or predicate.op_name != "SEQ":
        return {}, True
    try:
        mode = (
            PairingMode.parse(predicate.mode)
            if predicate.mode is not None
            else PairingMode.UNRESTRICTED
        )
    except Exception:  # noqa: BLE001 - unknown mode: compiler will reject
        return {}, True
    if mode is PairingMode.CONSECUTIVE:
        return {}, True
    if any(arg.starred for arg in predicate.args):
        return {}, True
    arg_aliases = {arg.name.lower() for arg in predicate.args}
    alias_streams: dict[str, str] = {}
    for source in analysis.sources:
        if source.is_stream and source.alias.lower() in arg_aliases:
            alias_streams[source.alias.lower()] = source.name.lower()
    gates: dict[str, AdmissionConstraint] = {}
    dead: set[str] = set()
    for alias in arg_aliases:
        stream_key = alias_streams.get(alias)
        if stream_key is None:
            return {}, True  # alias without a stream source: stay residual
        if stream_key in dead:
            continue
        terms = _single_alias_terms(analysis.guard_terms, alias, False)
        constraint = admission_constraint(terms, alias, False)
        if constraint is None:
            # One unconstrained alias makes its whole stream unindexable
            # (the stream-level gate is the union over its aliases).
            gates.pop(stream_key, None)
            dead.add(stream_key)
            continue
        existing = gates.get(stream_key)
        if existing is None:
            gates[stream_key] = constraint
        else:
            merged = existing.union(constraint)
            if merged is None:
                gates.pop(stream_key, None)
                dead.add(stream_key)
            else:
                gates[stream_key] = merged
    return gates, True
