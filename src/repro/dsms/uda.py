"""User-defined aggregates (UDAs), ESL style.

ESL lets end users define aggregates *in SQL itself* with three blocks —
INITIALIZE, ITERATE, TERMINATE — each operating on a small in-memory state
table.  The paper (section 2.1) leans on this to argue that arbitrarily
complex aggregation stays inside the query language.

This module gives two ways to define a UDA:

* :func:`uda_from_callables` — wrap three Python callables (the common path
  for library users).
* :class:`SqlUda` — an interpreter for the ESL textual form, where each
  block is a tiny sequence of assignments over a named state; the ESL-EV
  parser produces these from ``CREATE AGGREGATE`` statements.

Both produce ordinary :class:`~repro.dsms.aggregates.Aggregate` factories,
so UDAs and built-ins are indistinguishable to the engine.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from .aggregates import Aggregate
from .errors import EslSemanticError
from .expressions import Env, Expression


def uda_from_callables(
    name: str,
    initialize: Callable[[], Any],
    iterate: Callable[[Any, Any], Any],
    terminate: Callable[[Any], Any],
    skip_nulls: bool = True,
) -> Callable[[], Aggregate]:
    """Build an aggregate factory from plain Python callables.

    >>> geometric_range = uda_from_callables(
    ...     'vrange',
    ...     initialize=lambda: (None, None),
    ...     iterate=lambda s, v: (v if s[0] is None else min(s[0], v),
    ...                           v if s[1] is None else max(s[1], v)),
    ...     terminate=lambda s: None if s[0] is None else s[1] - s[0])
    """

    def factory() -> Aggregate:
        return Aggregate(name, initialize, iterate, terminate, skip_nulls)

    return factory


class StateAssignment:
    """One ``var := expression`` step inside a UDA block.

    Expressions may reference the incoming value as the pseudo-column
    ``value`` and prior state variables by name.
    """

    __slots__ = ("target", "expression")

    def __init__(self, target: str, expression: Expression) -> None:
        self.target = target
        self.expression = expression

    def __repr__(self) -> str:
        return f"StateAssignment({self.target} := {self.expression!r})"


class _StateTuple:
    """Adapter exposing a state dict (plus the current value) as a tuple-like
    object so ordinary :class:`Expression` nodes can read it."""

    __slots__ = ("state",)

    def __init__(self, state: dict[str, Any]) -> None:
        self.state = state

    def __getitem__(self, name: str) -> Any:
        if name not in self.state:
            raise EslSemanticError(f"UDA references unknown state var {name!r}")
        return self.state[name]

    def __contains__(self, name: object) -> bool:
        return name in self.state

    @property
    def ts(self) -> float:
        return 0.0


class SqlUda:
    """An ESL-style UDA interpreted from assignment blocks.

    Example — average, the canonical ESL demo::

        SqlUda('myavg',
               initialize=[('cnt', Literal(0)), ('total', Literal(0))],
               iterate=[('cnt', cnt + 1), ('total', total + value)],
               terminate=total / cnt)
    """

    def __init__(
        self,
        name: str,
        initialize: Sequence[tuple[str, Expression]],
        iterate: Sequence[tuple[str, Expression]],
        terminate: Expression,
        functions: Mapping[str, Callable[..., Any]] | None = None,
        param: str = "value",
    ) -> None:
        self.name = name
        self.param = param
        self.initialize_block = [StateAssignment(t, e) for t, e in initialize]
        self.iterate_block = [StateAssignment(t, e) for t, e in iterate]
        self.terminate_expr = terminate
        self._functions = dict(functions or {})

    def _env_for(self, state: dict[str, Any]) -> Env:
        env = Env(functions=self._functions)
        env.bindings["__state__"] = _StateTuple(state)  # type: ignore[assignment]
        return env

    def _run_block(
        self, block: Sequence[StateAssignment], state: dict[str, Any]
    ) -> dict[str, Any]:
        env = self._env_for(state)
        for assignment in block:
            state[assignment.target] = assignment.expression.eval(env)
        return state

    def factory(self) -> Callable[[], Aggregate]:
        """Return an Aggregate factory executing the interpreted blocks."""

        param = self.param

        def initialize() -> None:
            # ESL semantics: the INITIALIZE block runs when the *first* value
            # arrives (it may reference the value), so the pre-input state is
            # a None sentinel.
            return None

        def iterate(state: dict[str, Any] | None, value: Any) -> dict[str, Any]:
            block = self.initialize_block if state is None else self.iterate_block
            if state is None:
                state = {}
            state[param] = value
            self._run_block(block, state)
            state.pop(param, None)
            return state

        def terminate(state: dict[str, Any] | None) -> Any:
            if state is None:
                return None  # no input rows: SQL aggregates yield NULL
            state = dict(state)
            state.setdefault(param, None)
            env = self._env_for(state)
            return self.terminate_expr.eval(env)

        uda_name = self.name

        def make() -> Aggregate:
            return Aggregate(uda_name, initialize, iterate, terminate)

        return make

    def __repr__(self) -> str:
        return (
            f"SqlUda({self.name}, init={len(self.initialize_block)} steps, "
            f"iter={len(self.iterate_block)} steps)"
        )
