"""Persistent in-memory tables.

The paper's stream–DB spanning queries (Example 2: location tracking) need a
database table that continuous queries can read (context retrieval,
correlated NOT EXISTS) and write (INSERT from a stream).  :class:`Table` is
a small row store with optional hash indexes; it is deliberately not a full
DBMS — it stands in for the persistent database the ESL system attaches to,
preserving the query semantics the paper exercises.

Rows are plain tuples validated against the table's schema.  Secondary hash
indexes accelerate the equality probes the paper's queries use
(``WHERE tagid = tid AND location = loc``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import SchemaError, UnknownTableError
from .schema import Schema
from .tuples import Tuple


class Table:
    """A schema'd, indexable, in-memory row store."""

    def __init__(self, name: str, schema: Schema | str) -> None:
        self.name = name
        self.schema = Schema.parse(schema) if isinstance(schema, str) else schema
        self._rows: list[tuple[Any, ...]] = []
        self._indexes: dict[tuple[str, ...], dict[tuple[Any, ...], list[int]]] = {}
        self._dirty_indexes = False

    # -- writes ---------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> None:
        """Append one row after schema validation."""
        self.schema.validate(values)
        row = tuple(values)
        position = len(self._rows)
        self._rows.append(row)
        for columns, index in self._indexes.items():
            index[self._key_of(row, columns)].append(position)

    def insert_dict(self, mapping: Mapping[str, Any]) -> None:
        """Append a row given as ``{column: value}``; missing columns are NULL."""
        extra = set(mapping) - set(self.schema.names)
        if extra:
            raise SchemaError(f"unknown columns {sorted(extra)} for {self.name!r}")
        self.insert([mapping.get(name) for name in self.schema.names])

    def insert_tuple(self, tup: Tuple) -> None:
        """Append a stream tuple's values (schemas must align by name)."""
        self.insert([tup.get(name) for name in self.schema.names])

    def delete_where(self, predicate: Callable[[tuple[Any, ...]], bool]) -> int:
        """Remove rows matching *predicate*; rebuilds indexes.  Returns count."""
        before = len(self._rows)
        self._rows = [row for row in self._rows if not predicate(row)]
        removed = before - len(self._rows)
        if removed:
            self._rebuild_indexes()
        return removed

    def update_where(
        self,
        predicate: Callable[[tuple[Any, ...]], bool],
        updates: Mapping[str, Any],
    ) -> int:
        """Set *updates* on every row matching *predicate*.  Returns count."""
        positions = {self.schema.position(name): value for name, value in updates.items()}
        changed = 0
        for i, row in enumerate(self._rows):
            if predicate(row):
                new_row = list(row)
                for pos, value in positions.items():
                    new_row[pos] = value
                self._rows[i] = tuple(new_row)
                changed += 1
        if changed:
            self._rebuild_indexes()
        return changed

    def clear(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # -- indexes --------------------------------------------------------

    def create_index(self, *columns: str) -> None:
        """Build (or rebuild) a hash index on *columns*."""
        key = tuple(columns)
        for column in key:
            self.schema.position(column)  # validates
        index: dict[tuple[Any, ...], list[int]] = defaultdict(list)
        for position, row in enumerate(self._rows):
            index[self._key_of(row, key)].append(position)
        self._indexes[key] = index

    def _key_of(self, row: tuple[Any, ...], columns: tuple[str, ...]) -> tuple[Any, ...]:
        return tuple(row[self.schema.position(column)] for column in columns)

    def _rebuild_indexes(self) -> None:
        for columns in list(self._indexes):
            self.create_index(*columns)

    # -- reads ----------------------------------------------------------

    def rows(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def scan(self) -> Iterator[dict[str, Any]]:
        """Rows as dicts (convenient for assertions and reports)."""
        names = self.schema.names
        for row in self._rows:
            yield dict(zip(names, row))

    def lookup(self, **criteria: Any) -> Iterator[dict[str, Any]]:
        """Equality lookup; uses a matching index when one exists.

        ``table.lookup(tagid='t1', location='dock')`` yields matching rows
        as dicts.
        """
        key = tuple(sorted(criteria))
        index = self._indexes.get(key)
        names = self.schema.names
        if index is not None:
            wanted = tuple(criteria[column] for column in key)
            for position in index.get(wanted, ()):
                yield dict(zip(names, self._rows[position]))
            return
        positions = {self.schema.position(c): v for c, v in criteria.items()}
        for row in self._rows:
            if all(row[pos] == value for pos, value in positions.items()):
                yield dict(zip(names, row))

    def exists(self, **criteria: Any) -> bool:
        """True when at least one row matches the equality criteria."""
        return next(self.lookup(**criteria), None) is not None

    def as_tuples(self, ts: float = 0.0) -> Iterator[Tuple]:
        """Rows as stream tuples (for table scans inside queries)."""
        for row in self._rows:
            yield Tuple(self.schema, row, ts, self.name)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows)"


class TableRegistry:
    """Name -> :class:`Table` catalog (case-insensitive)."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create(self, name: str, schema: Schema | str | Iterable[str]) -> Table:
        key = name.lower()
        if key in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        if not isinstance(schema, (Schema, str)):
            schema = Schema(schema)
        table = Table(name, schema)  # type: ignore[arg-type]
        self._tables[key] = table
        return table

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise UnknownTableError(
                f"unknown table {name!r}; registered: {known}"
            ) from None

    def drop(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
