"""Streams and the stream registry.

A :class:`Stream` is a named, schema'd, append-only sequence of tuples.
Downstream consumers (continuous queries, operators, application callbacks)
subscribe to a stream; pushing a tuple fans it out to every subscriber in
subscription order.

Streams enforce the timestamp-ordered contract from the paper's data model:
a push with a timestamp earlier than the last accepted tuple raises
:class:`OutOfOrderError` unless the stream was created with
``allow_out_of_order=True`` (in which case tuples are buffered and released
in order using a small reordering buffer — the common fix for jittery RFID
readers).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .errors import OutOfOrderError, SchemaError, UnknownStreamError
from .schema import Schema
from .tuples import Tuple

Subscriber = Callable[[Tuple], None]


class Stream:
    """A named append-only data stream.

    Attributes:
        name: the stream's registry name.
        schema: its :class:`Schema`.
        last_ts: timestamp of the most recently emitted tuple (None if none).
        count: total tuples emitted so far.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
    ) -> None:
        self.name = name
        self.schema = schema
        self.last_ts: float | None = None
        self.count = 0
        self._subscribers: list[Subscriber] = []
        self._allow_ooo = allow_out_of_order
        self._reorder_slack = reorder_slack
        self._reorder_buffer: list[Tuple] = []
        self._max_seen: float | None = None  # newest ts observed (pre-reorder)

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Register *callback* for every future tuple; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def push(self, tup: Tuple) -> None:
        """Emit *tup* to all subscribers, enforcing timestamp order."""
        if tup.schema != self.schema:
            raise SchemaError(
                f"tuple schema {tup.schema!r} does not match stream "
                f"{self.name!r} schema {self.schema!r}"
            )
        if not self._allow_ooo:
            if self.last_ts is not None and tup.ts < self.last_ts:
                raise OutOfOrderError(
                    f"stream {self.name!r}: tuple at ts={tup.ts:g} after "
                    f"ts={self.last_ts:g}"
                )
            self._deliver(tup)
            return
        if self._max_seen is not None and tup.ts < self._max_seen - self._reorder_slack:
            # Too late even for the reorder buffer: drop, as ALE-style
            # middleware does with stale reads.
            return
        self._max_seen = tup.ts if self._max_seen is None else max(
            self._max_seen, tup.ts
        )
        heapq.heappush(self._reorder_buffer, tup)
        self._release(self._max_seen - self._reorder_slack)

    def flush(self) -> None:
        """Release everything held in the reorder buffer (end of stream)."""
        while self._reorder_buffer:
            self._deliver(heapq.heappop(self._reorder_buffer))

    def _release(self, watermark: float) -> None:
        while self._reorder_buffer and self._reorder_buffer[0].ts <= watermark:
            self._deliver(heapq.heappop(self._reorder_buffer))

    def _deliver(self, tup: Tuple) -> None:
        if self.last_ts is not None and tup.ts < self.last_ts:
            tup = tup.with_ts(self.last_ts)  # clamp residual disorder
        if not tup.stream:
            tup.stream = self.name
        self.last_ts = tup.ts
        self.count += 1
        for callback in tuple(self._subscribers):
            callback(tup)

    def push_row(self, values: Sequence[Any], ts: float) -> Tuple:
        """Convenience: build a tuple from positional values and push it."""
        tup = Tuple(self.schema, values, ts, self.name)
        self.push(tup)
        return tup

    def push_dict(self, mapping: Mapping[str, Any], ts: float) -> Tuple:
        """Convenience: build a tuple from a field mapping and push it."""
        tup = Tuple.from_mapping(self.schema, mapping, ts, self.name)
        self.push(tup)
        return tup

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, {len(self.schema)} cols, {self.count} tuples)"


class StreamRegistry:
    """Name -> :class:`Stream` catalog with case-insensitive lookup."""

    def __init__(self) -> None:
        self._streams: dict[str, Stream] = {}

    def create(
        self,
        name: str,
        schema: Schema | str | Iterable[str],
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
    ) -> Stream:
        """Create and register a stream.  Raises if the name is taken."""
        key = name.lower()
        if key in self._streams:
            raise SchemaError(f"stream {name!r} already exists")
        if isinstance(schema, str):
            schema = Schema.parse(schema)
        elif not isinstance(schema, Schema):
            schema = Schema(schema)
        stream = Stream(name, schema, allow_out_of_order, reorder_slack)
        self._streams[key] = stream
        return stream

    def get(self, name: str) -> Stream:
        try:
            return self._streams[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._streams)) or "<none>"
            raise UnknownStreamError(
                f"unknown stream {name!r}; registered: {known}"
            ) from None

    def drop(self, name: str) -> None:
        self._streams.pop(name.lower(), None)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._streams

    def __iter__(self) -> Iterator[Stream]:
        return iter(self._streams.values())

    def __len__(self) -> int:
        return len(self._streams)
