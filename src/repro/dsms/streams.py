"""Streams and the stream registry.

A :class:`Stream` is a named, schema'd, append-only sequence of tuples.
Downstream consumers (continuous queries, operators, application callbacks)
subscribe to a stream; pushing a tuple fans it out to every subscriber in
subscription order.

Streams enforce the timestamp-ordered contract from the paper's data model:
a push with a timestamp earlier than the last accepted tuple raises
:class:`OutOfOrderError` unless the stream was created with
``allow_out_of_order=True`` (in which case tuples are buffered and released
in order using a small reordering buffer — the common fix for jittery RFID
readers).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Mapping as _MappingABC
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .columns import ColumnBatch
from .errors import OutOfOrderError, SchemaError, UnknownStreamError
from .schema import Schema
from .tuples import Tuple

Subscriber = Callable[[Tuple], None]


class Stream:
    """A named append-only data stream.

    Attributes:
        name: the stream's registry name.
        schema: its :class:`Schema`.
        last_ts: timestamp of the most recently emitted tuple (None if none).
        count: total tuples emitted so far.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
        sequencer: Iterator[int] | None = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.last_ts: float | None = None
        self.count = 0
        self._subscribers: list[Subscriber] = []
        self._fanout: tuple[Subscriber, ...] = ()
        self._allow_ooo = allow_out_of_order
        self._reorder_slack = reorder_slack
        self._reorder_buffer: list[Tuple] = []
        self._max_seen: float | None = None  # newest ts observed (pre-reorder)
        self._ingester: Callable[[Any, float], Tuple] | None = None
        # Shared per-registry counter: every tuple this stream builds or
        # first delivers is stamped from it, so (ts, seq) ordering is
        # consistent across all streams of one engine and independent of
        # any other engine in the process.
        self._sequencer = sequencer

    def subscribe(self, callback: Subscriber) -> Callable[[], None]:
        """Register *callback* for every future tuple; returns an unsubscriber."""
        self._subscribers.append(callback)
        # _fanout is the delivery snapshot: rebuilt on (un)subscribe so the
        # per-tuple loops need no defensive copy.  An in-flight delivery
        # keeps iterating the tuple it started with, which is exactly the
        # copy-then-iterate semantics this replaces.
        self._fanout = tuple(self._subscribers)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass
            self._fanout = tuple(self._subscribers)

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def take_subscribers(self, start: int) -> list[Subscriber]:
        """Remove and return every subscriber registered at or after *start*.

        The shared multi-query registry (:mod:`repro.dsms.registry`) uses
        this to relocate a freshly compiled plan's callbacks behind its
        predicate-indexed router: it snapshots :attr:`subscriber_count`
        before compiling, then takes the appended tail.  Relative order of
        the taken callbacks is preserved, so a router that replays them in
        sequence delivers exactly what direct subscription would have.
        The unsubscribers previously returned by :meth:`subscribe` remain
        valid no-ops for taken callbacks.
        """
        taken = self._subscribers[start:]
        if taken:
            del self._subscribers[start:]
            self._fanout = tuple(self._subscribers)
        return taken

    def push(self, tup: Tuple) -> None:
        """Emit *tup* to all subscribers, enforcing timestamp order."""
        if tup.schema is not self.schema and tup.schema != self.schema:
            raise SchemaError(
                f"tuple schema {tup.schema!r} does not match stream "
                f"{self.name!r} schema {self.schema!r}"
            )
        if not self._allow_ooo:
            if self.last_ts is not None and tup.ts < self.last_ts:
                raise OutOfOrderError(
                    f"stream {self.name!r}: tuple at ts={tup.ts:g} after "
                    f"ts={self.last_ts:g}",
                    stream=self.name, ts=tup.ts, last_ts=self.last_ts,
                )
            self._deliver(tup)
            return
        if self._max_seen is not None and tup.ts < self._max_seen - self._reorder_slack:
            # Too late even for the reorder buffer: drop, as ALE-style
            # middleware does with stale reads.
            return
        self._max_seen = tup.ts if self._max_seen is None else max(
            self._max_seen, tup.ts
        )
        heapq.heappush(self._reorder_buffer, tup)
        self._release(self._max_seen - self._reorder_slack)

    def flush(self) -> None:
        """Release everything held in the reorder buffer (end of stream)."""
        while self._reorder_buffer:
            self._deliver(heapq.heappop(self._reorder_buffer))

    def _release(self, watermark: float) -> None:
        while self._reorder_buffer and self._reorder_buffer[0].ts <= watermark:
            self._deliver(heapq.heappop(self._reorder_buffer))

    def _deliver(self, tup: Tuple) -> None:
        if self.last_ts is not None and tup.ts < self.last_ts:
            tup = tup.with_ts(self.last_ts)  # clamp residual disorder
            if self._sequencer is not None and tup.stream:
                # The copy is unseen by subscribers; renumber it so the
                # clamped delivery stays monotone in (ts, seq).
                tup.seq = next(self._sequencer)
        if not tup.stream:
            # First delivery of a standalone-built tuple: claim it for this
            # engine (name + engine-scoped sequence number).  Tuples that
            # were already delivered elsewhere (pass-through pipelines) keep
            # their stamp — re-numbering would corrupt sort keys in any
            # history that already holds them.
            tup.stream = self.name
            if self._sequencer is not None:
                tup.seq = next(self._sequencer)
        self.last_ts = tup.ts
        self.count += 1
        for callback in self._fanout:
            callback(tup)

    def _next_seq(self) -> int | None:
        return None if self._sequencer is None else next(self._sequencer)

    def push_row(self, values: Sequence[Any], ts: float) -> Tuple:
        """Convenience: build a tuple from positional values and push it."""
        tup = Tuple(self.schema, values, ts, self.name, self._next_seq())
        self.push(tup)
        return tup

    def push_dict(self, mapping: Mapping[str, Any], ts: float) -> Tuple:
        """Convenience: build a tuple from a field mapping and push it."""
        tup = Tuple.from_mapping(self.schema, mapping, ts, self.name, self._next_seq())
        self.push(tup)
        return tup

    def ingest(self, values: Mapping[str, Any] | Sequence[Any], ts: float) -> Tuple:
        """Fused build-and-deliver for batch ingestion.

        Semantically identical to :meth:`push_dict` / :meth:`push_row`
        followed by :meth:`push`; see :meth:`batch_ingester` for the fused
        hot path this delegates to.
        """
        ingester = self._ingester
        if ingester is None:
            ingester = self.batch_ingester()
        return ingester(values, ts)

    def batch_ingester(self) -> Callable[[Any, float], Tuple]:
        """A cached fused pusher for the engine's batch-ingestion paths.

        Collapses the ``push_dict``/``push_row`` → ``push`` → ``_deliver``
        chain into one closure with the per-stream constants (schema,
        sequencer, subscriber list) bound once: the tuple is built from
        this stream's own schema (so the schema match holds by
        construction) and, on in-order streams, delivered without
        re-entering :meth:`push`'s clamp/claim logic — the order check here
        already excludes the clamp case, and the stream stamp is set at
        construction.  Out-of-order streams take the full reorder-buffer
        path.
        """
        ingester = self._ingester
        if ingester is not None:
            return ingester

        schema = self.schema
        names = schema.names
        n_cols = len(schema)
        # The schema/column-index lookups are resolved here, once per
        # stream, not per row: the field-name set for mapping validation
        # (inlined ``covers`` — a keys-view <= frozenset compare with no
        # method call) and the name tuple driving positional extraction.
        field_set = frozenset(names)
        name = self.name
        sequencer = self._sequencer
        subscribers = self._subscribers
        reorder = self._allow_ooo
        push = self.push
        new = Tuple.__new__

        def ingest(values: Any, ts: float) -> Tuple:
            if type(values) is dict or isinstance(values, _MappingABC):
                try:
                    known = values.keys() <= field_set
                except TypeError:
                    known = all(key in field_set for key in values.keys())
                if not known:
                    extra = set(values) - field_set
                    raise SchemaError(
                        f"unknown fields {sorted(extra)} for {schema!r}"
                    )
                row = tuple(map(values.get, names))
            else:
                row = tuple(values)
                if len(row) != n_cols:
                    raise SchemaError(
                        f"tuple has {len(row)} values for {n_cols}-column "
                        f"schema {schema!r}"
                    )
            if sequencer is None:
                tup = Tuple(schema, row, ts, name)
            else:
                # Invariants Tuple.__init__ enforces (tuple-typed values,
                # arity, float ts) are established above, so slot
                # assignment is safe.
                tup = new(Tuple)
                tup.schema = schema
                tup.values = row
                tup.ts = ts = float(ts)
                tup.stream = name
                tup.seq = next(sequencer)
            if reorder:
                push(tup)
                return tup
            last = self.last_ts
            if last is not None and tup.ts < last:
                raise OutOfOrderError(
                    f"stream {name!r}: tuple at ts={tup.ts:g} after "
                    f"ts={last:g}",
                    stream=name, ts=tup.ts, last_ts=last,
                )
            self.last_ts = tup.ts
            self.count += 1
            for callback in self._fanout:
                callback(tup)
            return tup

        self._ingester = ingest
        return ingest

    # -- columnar ingestion ---------------------------------------------

    def column_mask(self, batch: "ColumnBatch") -> list | None:
        """The batch's materialization mask, or None to materialize all.

        Each subscriber callback may expose a ``vector_admission``
        attribute — a ``(columns, timestamps, n) -> [bool] | None``
        closure promising that rows it masks False can never contribute
        to that subscriber's output (it re-checks survivors itself).  The
        stream materializes the union: a row any subscriber might admit
        becomes a :class:`~repro.dsms.tuples.Tuple`.  If any subscriber
        lacks the hook (generic operators, collectors, application
        callbacks need every tuple) or a hook declines (returns None),
        the whole batch materializes — the scalar-equivalent fallback.
        """
        fanout = self._fanout
        if not fanout:
            return None
        cols = batch.columns
        tss = batch.timestamps
        n = len(batch)
        combined: list | None = None
        for callback in fanout:
            hook = getattr(callback, "vector_admission", None)
            if hook is None:
                return None
            mask = hook(cols, tss, n)
            if mask is None:
                return None
            if combined is None:
                combined = list(mask)
            else:
                for index, admit in enumerate(mask):
                    if admit:
                        combined[index] = True
        return combined

    def push_columns(
        self,
        batch: "ColumnBatch",
        advance: Callable[[float], Any] | None = None,
        vectorized: bool = True,
        on_row: Callable[[int], Any] | None = None,
    ) -> int:
        """Deliver a :class:`~repro.dsms.columns.ColumnBatch`.

        Semantically identical to pushing the batch's rows one at a time
        (*advance* — normally the engine clock's ``advance_if_due`` — is
        called with every row's timestamp before that row is delivered,
        preserving the timer-before-tuple discipline, and dropped rows
        still advance the clock), but when *vectorized* is true the
        subscriber admission masks are evaluated over whole columns and
        only surviving rows are materialized into Tuples.  Bookkeeping
        (``count``, ``last_ts``) covers every row, survivor or not.
        *on_row* is called with each row's index after that row completes
        (the sharded runtime drains per-row merge stamps through it).
        Returns the number of rows accepted.
        """
        schema = self.schema
        if batch.schema is not schema and batch.schema != schema:
            raise SchemaError(
                f"column batch schema {batch.schema!r} does not match stream "
                f"{self.name!r} schema {schema!r}"
            )
        n = len(batch)
        if not n:
            return 0
        if self._allow_ooo:
            # Reorder-buffered streams deliver through the heap; the
            # vectorized mask cannot apply before order is restored.
            ingest = self.batch_ingester()
            for i, (values, ts) in enumerate(batch.rows()):
                if advance is not None:
                    advance(ts)
                ingest(values, ts)
                if on_row is not None:
                    on_row(i)
            return n
        mask = self.column_mask(batch) if vectorized else None
        cols = batch.columns
        tss = batch.timestamps
        name = self.name
        sequencer = self._sequencer
        new = Tuple.__new__
        for i in range(n):
            ts = tss[i]
            if advance is not None:
                advance(ts)
            last = self.last_ts
            if last is not None and ts < last:
                raise OutOfOrderError(
                    f"stream {name!r}: tuple at ts={ts:g} after ts={last:g}",
                    stream=name, ts=ts, last_ts=last,
                )
            self.last_ts = ts
            self.count += 1
            if mask is None or mask[i]:
                row = tuple(column[i] for column in cols)
                if sequencer is None:
                    tup = Tuple(schema, row, ts, name)
                else:
                    # Survivor-only materialization: same trusted-slot
                    # construction as the scalar ingester (the batch's
                    # schema match and float timestamps are established).
                    tup = new(Tuple)
                    tup.schema = schema
                    tup.values = row
                    tup.ts = ts
                    tup.stream = name
                    tup.seq = next(sequencer)
                for callback in self._fanout:
                    callback(tup)
            if on_row is not None:
                on_row(i)
        return n

    def __repr__(self) -> str:
        return f"Stream({self.name!r}, {len(self.schema)} cols, {self.count} tuples)"


class StreamRegistry:
    """Name -> :class:`Stream` catalog with case-insensitive lookup.

    The registry owns the engine-scoped tuple sequence counter: all its
    streams stamp tuples from one shared count, so (ts, seq) ordering is
    total within an engine and never leaks between engines.
    """

    def __init__(self) -> None:
        self._streams: dict[str, Stream] = {}
        self._sequencer = itertools.count()

    def create(
        self,
        name: str,
        schema: Schema | str | Iterable[str],
        allow_out_of_order: bool = False,
        reorder_slack: float = 0.0,
    ) -> Stream:
        """Create and register a stream.  Raises if the name is taken."""
        key = name.lower()
        if key in self._streams:
            raise SchemaError(f"stream {name!r} already exists")
        if isinstance(schema, str):
            schema = Schema.parse(schema)
        elif not isinstance(schema, Schema):
            schema = Schema(schema)
        stream = Stream(
            name, schema, allow_out_of_order, reorder_slack, self._sequencer
        )
        self._streams[key] = stream
        return stream

    def get(self, name: str) -> Stream:
        try:
            return self._streams[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._streams)) or "<none>"
            raise UnknownStreamError(
                f"unknown stream {name!r}; registered: {known}"
            ) from None

    def drop(self, name: str) -> None:
        self._streams.pop(name.lower(), None)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._streams

    def __iter__(self) -> Iterator[Stream]:
        return iter(self._streams.values())

    def __len__(self) -> int:
        return len(self._streams)
