"""Built-in scalar functions.

These are the functions available in every :class:`~repro.dsms.engine.Engine`
without registration.  UDFs registered through :mod:`repro.dsms.udf` shadow
built-ins of the same name for that engine only.

All functions follow SQL NULL propagation: if any argument is None the
result is None (except ``coalesce`` and ``ifnull``, whose whole purpose is
NULL handling).
"""

from __future__ import annotations

import functools
import math
from typing import Any, Callable, Mapping


def _null_propagating(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap *fn* so any None argument short-circuits to None."""

    @functools.wraps(fn)
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


@_null_propagating
def _upper(value: Any) -> str:
    return str(value).upper()


@_null_propagating
def _lower(value: Any) -> str:
    return str(value).lower()


@_null_propagating
def _length(value: Any) -> int:
    return len(str(value))


@_null_propagating
def _substr(value: Any, start: int, length: int | None = None) -> str:
    # SQL substr is 1-based.
    text = str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


@_null_propagating
def _trim(value: Any) -> str:
    return str(value).strip()


@_null_propagating
def _concat(*parts: Any) -> str:
    return "".join(str(part) for part in parts)


@_null_propagating
def _abs(value: Any) -> Any:
    return abs(value)


@_null_propagating
def _round(value: Any, digits: int = 0) -> float:
    return round(float(value), int(digits))


@_null_propagating
def _floor(value: Any) -> int:
    return math.floor(value)


@_null_propagating
def _ceil(value: Any) -> int:
    return math.ceil(value)


@_null_propagating
def _mod(left: Any, right: Any) -> Any:
    if right == 0:
        return None
    return left % right


@_null_propagating
def _power(base: Any, exponent: Any) -> float:
    return float(base) ** float(exponent)


@_null_propagating
def _sqrt(value: Any) -> float:
    return math.sqrt(value)


@_null_propagating
def _cast_int(value: Any) -> int:
    return int(float(value))


@_null_propagating
def _cast_float(value: Any) -> float:
    return float(value)


@_null_propagating
def _cast_str(value: Any) -> str:
    return str(value)


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _ifnull(value: Any, default: Any) -> Any:
    return default if value is None else value


@_null_propagating
def _instr(haystack: Any, needle: Any) -> int:
    # 1-based position, 0 when absent (SQL convention).
    return str(haystack).find(str(needle)) + 1


@_null_propagating
def _replace(value: Any, old: Any, new: Any) -> str:
    return str(value).replace(str(old), str(new))


@_null_propagating
def _split_part(value: Any, sep: Any, index: Any) -> str | None:
    """1-based field extraction, e.g. split_part('20.17.5001', '.', 3) = '5001'."""
    parts = str(value).split(str(sep))
    position = int(index)
    if 1 <= position <= len(parts):
        return parts[position - 1]
    return None


@_null_propagating
def _extract_serial(epc: Any) -> int | None:
    """Paper Example 3's UDF: serial-number part of a dotted EPC, as int.

    EPCs are formatted ``company.product.serial``.  Returns None when the
    serial part is absent or non-numeric, so malformed tags fall out of
    WHERE clauses instead of crashing the query.
    """
    parts = str(epc).split(".")
    if len(parts) < 3:
        return None
    try:
        return int(parts[-1])
    except ValueError:
        return None


@_null_propagating
def _extract_company(epc: Any) -> str | None:
    parts = str(epc).split(".")
    return parts[0] if parts and parts[0] else None


@_null_propagating
def _extract_product(epc: Any) -> str | None:
    parts = str(epc).split(".")
    if len(parts) < 2:
        return None
    return parts[1]


#: Name -> implementation for every built-in scalar function.
BUILTINS: Mapping[str, Callable[..., Any]] = {
    "upper": _upper,
    "lower": _lower,
    "length": _length,
    "substr": _substr,
    "substring": _substr,
    "trim": _trim,
    "concat": _concat,
    "abs": _abs,
    "round": _round,
    "floor": _floor,
    "ceil": _ceil,
    "ceiling": _ceil,
    "mod": _mod,
    "power": _power,
    "sqrt": _sqrt,
    "int": _cast_int,
    "to_int": _cast_int,
    "float": _cast_float,
    "to_float": _cast_float,
    "str": _cast_str,
    "to_str": _cast_str,
    "coalesce": _coalesce,
    "ifnull": _ifnull,
    "instr": _instr,
    "replace": _replace,
    "split_part": _split_part,
    # The EPC helpers the paper's Example 3 assumes exist as UDFs; we ship
    # them as built-ins so the verbatim paper query runs out of the box.
    "extract_serial": _extract_serial,
    "extract_company": _extract_company,
    "extract_product": _extract_product,
}


def default_functions() -> dict[str, Callable[..., Any]]:
    """A fresh mutable copy of the built-in registry for an engine."""
    return dict(BUILTINS)
