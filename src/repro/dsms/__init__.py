"""The DSMS substrate: streams, windows, tables, UDAs/UDFs, and the engine.

This package is the ESL-like data stream management system that the paper's
ESL-EV extensions (:mod:`repro.core`) are built on.  Applications usually
only need :class:`Engine`:

    from repro.dsms import Engine

    engine = Engine()
    engine.create_stream('readings', 'reader_id str, tag_id str, read_time float')
    handle = engine.query("SELECT * FROM readings WHERE tag_id LIKE '20.%'")
"""

from .aggregates import Aggregate, AggregateRegistry, BUILTIN_AGGREGATES
from .clock import Timer, VirtualClock
from .engine import Collector, Engine, QueryHandle
from .errors import (
    ClockError,
    EpcFormatError,
    EslError,
    EslRuntimeError,
    EslSemanticError,
    EslSyntaxError,
    OutOfOrderError,
    SchemaError,
    UnknownAggregateError,
    UnknownFunctionError,
    UnknownStreamError,
    UnknownTableError,
    WindowError,
)
from .merge import StampedSink, merge_runs
from .multi_engine import MultiQueryEngine
from .registry import (
    FanoutCollector,
    QueryRegistry,
    StreamRouter,
    Subscription,
)
from .schema import Field, FieldType, Schema
from .sharding import ShardedEngine, ShardedQueryHandle, shard_of
from .snapshot import SnapshotView
from .streams import Stream, StreamRegistry
from .table import Table, TableRegistry
from .transducer import Transducer, filter_transducer, map_transducer
from .tuples import Tuple
from .uda import SqlUda, uda_from_callables
from .udf import UdfRegistry
from .windows import (
    RangeWindowBuffer,
    RowsWindowBuffer,
    WindowSpec,
    duration_seconds,
)

__all__ = [
    "Aggregate",
    "AggregateRegistry",
    "BUILTIN_AGGREGATES",
    "ClockError",
    "Collector",
    "Engine",
    "EpcFormatError",
    "EslError",
    "EslRuntimeError",
    "EslSemanticError",
    "EslSyntaxError",
    "FanoutCollector",
    "Field",
    "FieldType",
    "MultiQueryEngine",
    "OutOfOrderError",
    "QueryHandle",
    "QueryRegistry",
    "RangeWindowBuffer",
    "RowsWindowBuffer",
    "Schema",
    "SchemaError",
    "ShardedEngine",
    "ShardedQueryHandle",
    "SnapshotView",
    "StampedSink",
    "SqlUda",
    "Stream",
    "StreamRegistry",
    "StreamRouter",
    "Subscription",
    "Table",
    "TableRegistry",
    "Timer",
    "Transducer",
    "Tuple",
    "UdfRegistry",
    "UnknownAggregateError",
    "UnknownFunctionError",
    "UnknownStreamError",
    "UnknownTableError",
    "VirtualClock",
    "WindowError",
    "WindowSpec",
    "duration_seconds",
    "filter_transducer",
    "map_transducer",
    "merge_runs",
    "shard_of",
    "uda_from_callables",
]
