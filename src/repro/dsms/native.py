"""Native predicate tier: runtime compilation, caching, ctypes dispatch.

:mod:`repro.dsms.native_codegen` lowers expression IR to C source; this
module turns that source into running machine code and exposes it
through the exact mask-hook protocol the vectorized tier established
(``(columns, timestamps, n) -> mask | None``), so every existing mask
consumer — :meth:`Stream.column_mask`, the multi-query
``StreamRouter`` — composes native kernels without change.

The pipeline per predicate:

1. :func:`native_admission_mask` lowers the predicate's terms with
   :func:`~repro.dsms.native_codegen.lower_kernel`; unlowerable nodes
   return None and the caller falls back to the vectorized tier.
2. The translation unit is compiled with the platform C compiler
   (``cc``/``gcc``/``clang``, override with ``REPRO_NATIVE_CC``,
   disable entirely with ``REPRO_NATIVE_DISABLE=1``) into a shared
   object cached on disk under a content hash of the C source
   (``~/.cache/repro-native/<sha256>.so``, override the directory with
   ``REPRO_NATIVE_CACHE``).  A second engine compiling the same
   predicate reuses the cached object without invoking the compiler; a
   cache entry that fails to load (truncated, corrupted, wrong
   architecture) is discarded and rebuilt from source.
3. Per batch, the mask closure converts column lists into fixed-width
   buffers (``array('q')``/``array('d')`` fast paths, a null side-array
   when a column holds ``None``, interned int32 ids plus a shared
   dictionary blob for strings) and calls the kernel through ctypes.
   Any value the C ABI cannot hold — an int beyond int64, an embedded
   NUL, an unexpected type — abandons that *batch*'s native mask
   (returns None) and the vectorized/scalar fallback takes over; the
   kernel stays armed for the next batch.

One deliberate precision note: FLOAT-typed columns are converted with
``array('d')``, so an int value beyond 2**53 stored in a FLOAT column
rounds exactly as it already does crossing the shard wire (the framed
codec packs FLOAT columns as doubles); INT columns keep full int64
precision with in-kernel overflow taint.

All counters live on a per-engine :class:`NativeState`, surfaced by
``Engine.execution_tier()`` and the bench metadata.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from array import array
from pathlib import Path
from typing import Any, Callable, Sequence

from .expressions import Expression
from .native_codegen import (
    KernelSpec,
    PairKernelSpec,
    lower_kernel,
    lower_pairing_kernel,
    translation_unit,
)
from .schema import Schema
from .tuples import Tuple

#: Environment knobs (all read at call time, so tests can flip them).
CACHE_ENV = "REPRO_NATIVE_CACHE"
CC_ENV = "REPRO_NATIVE_CC"
DISABLE_ENV = "REPRO_NATIVE_DISABLE"

_CC_CANDIDATES = ("cc", "gcc", "clang")

#: Memoized compiler discovery: None = not probed yet, (path,) = result.
_compiler_memo: tuple[str | None] | None = None


def find_compiler() -> str | None:
    """Path of the platform C compiler, or None on a cc-less host.

    Honors ``REPRO_NATIVE_DISABLE`` (any non-empty value masks the
    compiler out — the CI fallback leg) and ``REPRO_NATIVE_CC`` (names
    the binary to use).  The probe result is memoized; tests that
    monkeypatch this function or flip the env vars see their change
    because every caller goes through the module attribute.
    """
    global _compiler_memo
    if os.environ.get(DISABLE_ENV):
        return None
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override)
    if _compiler_memo is None:
        found = None
        for name in _CC_CANDIDATES:
            found = shutil.which(name)
            if found:
                break
        _compiler_memo = (found,)
    return _compiler_memo[0]


def default_cache_dir() -> Path:
    """The on-disk .so cache directory (content-hash keyed)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-native").expanduser()


class NativeState:
    """Per-engine native-tier bookkeeping: counters + loaded kernels.

    Holding the loaded ``CDLL`` objects here pins their lifetime to the
    engine's, so a mask closure can never outlive its machine code.
    """

    def __init__(self, cache_dir: Path | str | None = None) -> None:
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir is not None
            else default_cache_dir()
        )
        self.kernels_built = 0      # compiled a fresh .so
        self.cache_hits = 0         # reused a cached .so
        self.compile_failures = 0   # cc rejected generated source
        self.lowering_fallbacks = 0  # predicate not lowerable to C
        self.runtime_fallbacks = 0  # a batch's values escaped the C ABI
        self.masked_batches = 0     # batches masked natively
        self.masked_rows = 0        # rows masked natively
        self.pairing_masked_windows = 0  # candidate windows masked natively
        self.pairing_masked_rows = 0     # candidate rows masked natively
        self._libs: list[ctypes.CDLL] = []

    @property
    def active_kernels(self) -> int:
        return len(self._libs)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (transport_stats()-style introspection)."""
        return {
            "active_kernels": self.active_kernels,
            "kernels_built": self.kernels_built,
            "cache_hits": self.cache_hits,
            "compile_failures": self.compile_failures,
            "lowering_fallbacks": self.lowering_fallbacks,
            "runtime_fallbacks": self.runtime_fallbacks,
            "masked_batches": self.masked_batches,
            "masked_rows": self.masked_rows,
            "pairing_masked_windows": self.pairing_masked_windows,
            "pairing_masked_rows": self.pairing_masked_rows,
        }


class _RnCol(ctypes.Structure):
    _fields_ = [("data", ctypes.c_void_p), ("nulls", ctypes.c_void_p)]


class _RnCols(ctypes.Structure):
    _fields_ = [
        ("cols", ctypes.POINTER(_RnCol)),
        ("ts", ctypes.c_void_p),
        ("dict", ctypes.c_void_p),
        ("dict_off", ctypes.c_void_p),
    ]


class _RnAnchor(ctypes.Structure):
    _fields_ = [
        ("ivals", ctypes.c_void_p),
        ("dvals", ctypes.c_void_p),
        ("sids", ctypes.c_void_p),
        ("flags", ctypes.c_void_p),
    ]


def source_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _compile_so(cc: str, source: str, so_path: Path) -> bool:
    """Compile *source* into *so_path* atomically; False on failure."""
    so_path.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=str(so_path.parent)) as tmp:
        c_path = os.path.join(tmp, "kernel.c")
        tmp_so = os.path.join(tmp, "kernel.so")
        with open(c_path, "w") as handle:
            handle.write(source)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        if proc.returncode != 0 or not os.path.exists(tmp_so):
            return False
        # Atomic publish: concurrent builders race benignly — both
        # write identical content under the content-hash name.
        os.replace(tmp_so, so_path)
    return True


def load_kernel(spec: KernelSpec, state: NativeState) -> Callable | None:
    """Compile (or cache-load) *spec* and return its ctypes entry point."""
    cc = find_compiler()
    if cc is None:
        return None
    source = translation_unit([spec])
    so_path = state.cache_dir / f"{source_hash(source)}.so"
    lib = None
    if so_path.exists():
        try:
            lib = ctypes.CDLL(str(so_path))
            state.cache_hits += 1
        except OSError:
            # Corrupted/foreign cache entry: rebuild it, never load it.
            try:
                so_path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            lib = None
    if lib is None:
        if not _compile_so(cc, source, so_path):
            state.compile_failures += 1
            return None
        try:
            lib = ctypes.CDLL(str(so_path))
        except OSError:  # pragma: no cover - loader rejects fresh build
            state.compile_failures += 1
            return None
        state.kernels_built += 1
    state._libs.append(lib)
    kern = getattr(lib, spec.name)
    if isinstance(spec, PairKernelSpec):
        kern.argtypes = [
            ctypes.POINTER(_RnCols),
            ctypes.c_int32,
            ctypes.POINTER(_RnAnchor),
            ctypes.POINTER(ctypes.c_uint8),
        ]
    else:
        kern.argtypes = [
            ctypes.POINTER(_RnCols),
            ctypes.c_int32,
            ctypes.POINTER(ctypes.c_uint8),
        ]
    kern.restype = ctypes.c_int
    return kern


# -- per-batch buffer conversion -------------------------------------------

_EMPTY = b"\x00"


def _int_buffer(col: Sequence[Any], n: int) -> tuple[array, bytearray | None]:
    try:
        return array("q", col), None
    except (TypeError, OverflowError):
        pass
    values = array("q", bytes(8 * n))
    nulls = bytearray(n)
    for index, value in enumerate(col):
        if value is None:
            nulls[index] = 1
        elif isinstance(value, int):  # bools included: True == 1 in Python
            values[index] = value  # OverflowError -> batch fallback
        else:
            raise TypeError(f"non-integer value {value!r} in INT column")
    return values, nulls


def _float_buffer(col: Sequence[Any], n: int) -> tuple[array, bytearray | None]:
    try:
        return array("d", col), None
    except TypeError:
        pass
    values = array("d", bytes(8 * n))
    nulls = bytearray(n)
    for index, value in enumerate(col):
        if value is None:
            nulls[index] = 1
        elif isinstance(value, (int, float)):
            values[index] = value
        else:
            raise TypeError(f"non-numeric value {value!r} in FLOAT column")
    return values, nulls


def _str_ids(
    col: Sequence[Any], interned: dict[str, int], strings: list[str]
) -> array:
    ids = array("i", bytes(4 * len(col)))
    for index, value in enumerate(col):
        if value is None:
            ids[index] = -1
            continue
        if not isinstance(value, str):
            raise TypeError(f"non-string value {value!r} in STR column")
        ident = interned.get(value)
        if ident is None:
            if "\x00" in value:
                raise ValueError("embedded NUL in string value")
            ident = interned[value] = len(strings)
            strings.append(value)
        ids[index] = ident
    return ids


def _addr(buf: array) -> int:
    return buf.buffer_info()[0]


def make_mask(
    kern: Callable, spec: KernelSpec, state: NativeState
) -> Callable[[Any, Any, int], Any]:
    """Wrap a loaded kernel as a ``(cols, tss, n) -> mask | None`` hook.

    The returned mask is a length-``n`` sequence of 0/1 (a bytearray);
    None means "this batch's values escaped the C ABI — use the next
    tier down".
    """
    slots = spec.slots
    uses_ts = spec.uses_ts
    uses_dict = spec.uses_dict

    def native_mask(cols: Any, tss: Any, n: int) -> Any:
        try:
            keepalive: list[Any] = []
            c_cols = (_RnCol * max(len(slots), 1))()
            interned: dict[str, int] = {}
            strings: list[str] = []
            for slot, (position, kind) in enumerate(slots):
                col = cols[position]
                nulls: Any = None
                if kind == "i":
                    values, nulls = _int_buffer(col, n)
                elif kind == "d":
                    values, nulls = _float_buffer(col, n)
                else:
                    values = _str_ids(col, interned, strings)
                keepalive.append(values)
                c_cols[slot].data = _addr(values)
                if nulls is not None:
                    c_nulls = (ctypes.c_ubyte * n).from_buffer(nulls)
                    keepalive.append((nulls, c_nulls))
                    c_cols[slot].nulls = ctypes.addressof(c_nulls)
                else:
                    c_cols[slot].nulls = None
            frame = _RnCols()
            frame.cols = c_cols
            if uses_ts:
                ts_buf = array("d", tss)
                keepalive.append(ts_buf)
                frame.ts = _addr(ts_buf)
            else:
                frame.ts = None
            if uses_dict and strings:
                blob = b"".join(
                    text.encode("utf-8") + _EMPTY for text in strings
                )
                offsets = array("i", bytes(4 * len(strings)))
                offset = 0
                for ident, text in enumerate(strings):
                    offsets[ident] = offset
                    offset += len(text.encode("utf-8")) + 1
                c_blob = ctypes.c_char_p(blob)
                keepalive.append((blob, c_blob, offsets))
                frame.dict = ctypes.cast(c_blob, ctypes.c_void_p)
                frame.dict_off = _addr(offsets)
            else:
                frame.dict = None
                frame.dict_off = None
            out = bytearray(n)
            c_out = (ctypes.c_uint8 * n).from_buffer(out)
            kern(ctypes.byref(frame), n, c_out)
            state.masked_batches += 1
            state.masked_rows += n
            return out
        except (TypeError, ValueError, OverflowError):
            state.runtime_fallbacks += 1
            return None

    return native_mask


_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_I53 = 1 << 53


def make_pairing_mask(
    kern: Callable,
    spec: PairKernelSpec,
    state: NativeState,
    outer_schemas: "dict[str, Schema]",
) -> Callable[[Any, Any, int], Any]:
    """Wrap a pairing kernel as a ``(bindings, store, n) -> mask | None`` hook.

    *bindings* is the live pairing Env's alias->Tuple mapping (the bound
    chain stages), *store* the candidate stage's
    :class:`~repro.dsms.columns.ColumnStore` mirror, *n* the prefix of
    the mirror to evaluate (enumeration bounds are always prefixes).
    None means this anchor's values escaped the C ABI — use the next
    tier down; the kernel stays armed for the next anchor.
    """
    extractors: list[tuple[str, int | None, str, Schema]] = []
    for alias_key, field, kind in spec.anchor_slots:
        schema = outer_schemas[alias_key]
        position = None if field is None else schema.position(field)
        extractors.append((alias_key, position, kind, schema))
    n_slots = len(spec.slots)
    uses_ts = spec.uses_ts
    uses_dict = spec.uses_dict
    n_anchors = len(extractors)

    def pairing_mask(bindings: Any, store: Any, n: int) -> Any:
        if not store.native_ok or n <= 0:
            return None
        try:
            ivals = array("q", bytes(8 * max(n_anchors, 1)))
            dvals = array("d", bytes(8 * max(n_anchors, 1)))
            sids = array("i", bytes(4 * max(n_anchors, 1)))
            flags = bytearray(max(n_anchors, 1))
            strings = store.strings
            for k, (alias_key, position, kind, expected) in enumerate(
                extractors
            ):
                tup = bindings[alias_key]
                if type(tup) is not Tuple or tup.schema is not expected:
                    return None  # re-declared schema: stay scalar
                if position is None:
                    dvals[k] = tup.ts
                    continue
                value = tup.values[position]
                if kind == "s":
                    if value is None:
                        sids[k] = -1
                    elif type(value) is str:
                        # May intern a new id; the table is append-only
                        # so candidate ids stay valid.
                        sids[k] = strings.intern(value)
                    else:
                        return None  # no UNKNOWN channel for string ids
                elif value is None:
                    flags[k] = 2
                elif kind == "i":
                    if isinstance(value, int) and (
                        _I64_MIN <= value <= _I64_MAX
                    ):
                        ivals[k] = value
                    else:
                        flags[k] = 3  # unrepresentable: verdict UNKNOWN
                else:  # "d"
                    if isinstance(value, (int, float)) and not (
                        isinstance(value, int) and abs(value) > _I53
                    ):
                        dvals[k] = value
                    else:
                        flags[k] = 3
            keepalive: list[Any] = []
            c_cols = (_RnCol * max(n_slots, 1))()
            for slot in range(n_slots):
                c_cols[slot].data = _addr(store.packed[slot])
                side = store.nulls[slot]
                c_cols[slot].nulls = (
                    _addr(side) if side is not None else None
                )
            frame = _RnCols()
            frame.cols = c_cols
            frame.ts = _addr(store.packed_ts) if uses_ts else None
            if uses_dict and len(strings.offsets):
                frame.dict = _addr(strings.blob)
                frame.dict_off = _addr(strings.offsets)
            else:
                frame.dict = None
                frame.dict_off = None
            anchor = _RnAnchor()
            anchor.ivals = _addr(ivals)
            anchor.dvals = _addr(dvals)
            anchor.sids = _addr(sids)
            c_flags = (ctypes.c_ubyte * len(flags)).from_buffer(flags)
            keepalive.append((flags, c_flags))
            anchor.flags = ctypes.addressof(c_flags)
            out = bytearray(n)
            c_out = (ctypes.c_uint8 * n).from_buffer(out)
            kern(ctypes.byref(frame), n, ctypes.byref(anchor), c_out)
            state.pairing_masked_windows += 1
            state.pairing_masked_rows += n
            return out
        except (
            TypeError, ValueError, OverflowError,
            KeyError, AttributeError, IndexError,
        ):
            state.runtime_fallbacks += 1
            return None

    return pairing_mask


def native_pairing_mask(
    terms: Sequence[Expression],
    schema: Schema,
    alias: str | None,
    outer_schemas: "dict[str, Schema]",
    state: NativeState,
) -> "tuple[Callable[[Any, Any, int], Any], PairKernelSpec] | None":
    """Build a native pairing mask hook for one chain stage, or None.

    Returns ``(mask_fn, spec)`` — the caller needs ``spec.slots`` to
    provision the partition mirrors' packed buffers.  None means this
    stage's pairing stays on the vectorized/scalar tiers (nothing
    lowerable, no compiler, or the compiler rejected the source); other
    stages of the same plan still go native independently.
    """
    if find_compiler() is None:
        return None
    spec = lower_pairing_kernel(
        terms, schema, alias, outer_schemas, name="pair_0"
    )
    if spec is None:
        state.lowering_fallbacks += 1
        return None
    kern = load_kernel(spec, state)
    if kern is None:
        return None
    return make_pairing_mask(kern, spec, state, outer_schemas), spec


def native_admission_mask(
    terms: Sequence[Expression],
    schema: Schema,
    alias: str | None,
    mode: str,
    state: NativeState,
) -> Callable[[Any, Any, int], Any] | None:
    """Build a native mask hook for the conjunction of *terms*, or None.

    None means this predicate stays on the vectorized/closure tiers —
    because a node is not lowerable, no compiler exists on this host,
    or the compiler rejected the generated source.  The decision is
    per-predicate: other predicates on the same plan still go native.
    """
    if find_compiler() is None:
        return None
    # One kernel per translation unit, under a *fixed* name: the .so is
    # keyed by a content hash of its source, so a deterministic name is
    # what lets two engines compiling the same predicate share one
    # cache entry.
    spec = lower_kernel(terms, schema, alias, mode, name="kern_0")
    if spec is None:
        state.lowering_fallbacks += 1
        return None
    kern = load_kernel(spec, state)
    if kern is None:
        return None
    return make_mask(kern, spec, state)
