"""Stream tuples.

A :class:`Tuple` is an immutable, schema-aware record with a timestamp and
the name of the stream it arrived on.  Values are stored positionally (the
schema provides name->position lookup), which keeps per-tuple overhead low —
important because benchmarks push hundreds of thousands of tuples through the
engine.

Tuples compare by (timestamp, sequence number) so that a heap of tuples pops
in arrival order even when timestamps tie; the engine assigns monotonically
increasing sequence numbers at ingestion.

Sequence numbering is *per engine*: each :class:`~repro.dsms.streams.StreamRegistry`
owns a counter, and every tuple delivered on one of its streams is stamped
from it (at construction for stream-built tuples, at first delivery for
standalone ones).  Tuples constructed standalone — outside any stream — fall
back to a module-level counter, which :func:`reset_global_sequence` rewinds
for tests that assert on raw sequence numbers.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Mapping, Sequence

from .errors import SchemaError
from .schema import Schema

_GLOBAL_SEQ = itertools.count()


def reset_global_sequence() -> None:
    """Rewind the fallback counter used by standalone-constructed tuples.

    Engine-delivered tuples are numbered by their engine's own counter and
    are unaffected; this only exists so tests building bare Tuples get
    reproducible sequence numbers.
    """
    global _GLOBAL_SEQ
    _GLOBAL_SEQ = itertools.count()


class Tuple:
    """One record on a data stream.

    Attributes:
        schema: the :class:`Schema` describing the fields.
        values: positional field values.
        ts: event timestamp (seconds, on the engine's virtual clock).
        stream: name of the source stream (set by the engine at ingestion;
            empty string for tuples constructed standalone).
        seq: global arrival sequence number used to break timestamp ties.
    """

    __slots__ = ("schema", "values", "ts", "stream", "seq")

    def __init__(
        self,
        schema: Schema,
        values: Sequence[Any],
        ts: float,
        stream: str = "",
        seq: int | None = None,
    ) -> None:
        self.schema = schema
        self.values = tuple(values)
        if len(self.values) != len(schema):
            raise SchemaError(
                f"tuple has {len(self.values)} values for {len(schema)}-column "
                f"schema {schema!r}"
            )
        self.ts = float(ts)
        self.stream = stream
        self.seq = next(_GLOBAL_SEQ) if seq is None else seq

    @classmethod
    def trusted(
        cls, schema: Schema, values: Sequence[Any], ts: float,
        stream: str = "",
    ) -> "Tuple":
        """Construct without width validation or timestamp coercion.

        For compiled emit paths whose projection plan already guarantees a
        schema-width value list and a float timestamp — and for the shard
        transport, which rebuilds result tuples from decoded frames whose
        width the codec has already checked.  Otherwise identical to the
        checked constructor (fresh sequence number; *stream* defaults to
        unset).
        """
        tup = cls.__new__(cls)
        tup.schema = schema
        tup.values = tuple(values)
        tup.ts = ts
        tup.stream = stream
        tup.seq = next(_GLOBAL_SEQ)
        return tup

    @classmethod
    def from_mapping(
        cls,
        schema: Schema,
        mapping: Mapping[str, Any],
        ts: float,
        stream: str = "",
        seq: int | None = None,
    ) -> "Tuple":
        """Build a tuple from a field-name mapping, filling gaps with None."""
        get = mapping.get
        values = [get(name) for name in schema.names]
        if not schema.covers(mapping.keys()):
            extra = set(mapping) - set(schema.names)
            raise SchemaError(f"unknown fields {sorted(extra)} for {schema!r}")
        return cls(schema, values, ts, stream, seq)

    def __getitem__(self, name: str) -> Any:
        return self.values[self.schema.position(name)]

    def get(self, name: str, default: Any = None) -> Any:
        if name in self.schema:
            return self.values[self.schema.position(name)]
        return default

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self.schema

    def as_dict(self) -> dict[str, Any]:
        """Return the tuple as a plain ``{field: value}`` dict."""
        return dict(zip(self.schema.names, self.values))

    def replace(self, **updates: Any) -> "Tuple":
        """Return a copy with some field values replaced."""
        values = list(self.values)
        for name, value in updates.items():
            values[self.schema.position(name)] = value
        return Tuple(self.schema, values, self.ts, self.stream)

    def with_ts(self, ts: float) -> "Tuple":
        """Return a copy carrying a different timestamp."""
        return Tuple(self.schema, self.values, ts, self.stream)

    def project(self, names: Sequence[str], schema: Schema | None = None) -> "Tuple":
        """Return a new tuple containing only *names* (ordered)."""
        out_schema = schema if schema is not None else self.schema.project(names)
        values = [self.values[self.schema.position(name)] for name in names]
        return Tuple(out_schema, values, self.ts, self.stream)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    # Ordering: by timestamp, ties broken by arrival sequence.  This is what
    # "joint tuple history" union ordering in the paper relies on.
    def __lt__(self, other: "Tuple") -> bool:
        ts = self.ts
        other_ts = other.ts
        if ts != other_ts:
            return ts < other_ts
        return self.seq < other.seq

    def __le__(self, other: "Tuple") -> bool:
        ts = self.ts
        other_ts = other.ts
        if ts != other_ts:
            return ts < other_ts
        return self.seq <= other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.values == other.values
            and self.ts == other.ts
            and self.stream == other.stream
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.values, self.ts, self.stream))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.schema.names, self.values)
        )
        source = f" @{self.stream}" if self.stream else ""
        return f"Tuple({pairs}, ts={self.ts:g}{source})"
