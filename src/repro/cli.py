"""Command-line interface: run ESL-EV scripts against CSV traces.

Usage::

    python -m repro --script queries.sql --trace readings.csv
    python -m repro --script queries.sql --trace readings.csv --explain
    python -m repro --demo containment        # run a packaged scenario

The script file contains ``;``-separated ESL-EV statements (DDL first,
then continuous queries).  The trace file is the CSV format of
:mod:`repro.rfid.traceio`.  Output rows from the *last* query in the
script are printed as CSV to stdout; ``--follow STREAM`` prints a derived
stream instead.

Named benchmarks run through the ``bench`` subcommand and write their
machine-readable report next to the working directory::

    python -m repro bench sharded_scaling --out . --reps 3
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Sequence

from .core.planner import describe_handle
from .dsms import Engine
from .rfid import scenarios, workloads
from .rfid.traceio import load_trace, replay

#: Named demos: (workload factory, scenario builder, feed kwargs)
DEMOS = {
    "dedup": (workloads.dedup_workload, scenarios.build_dedup, {}),
    "location": (workloads.location_workload, scenarios.build_location, {}),
    "epc": (workloads.epc_stream_workload, scenarios.build_epc_aggregation, {}),
    "containment": (workloads.packing_workload, scenarios.build_containment, {}),
    "workflow": (workloads.lab_workflow_workload, scenarios.build_lab_workflow, {}),
    "quality": (workloads.quality_check_workload, scenarios.build_quality_check, {}),
    "door": (workloads.door_workload, scenarios.build_door, {}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run ESL-EV stream queries against RFID traces.",
    )
    parser.add_argument("--script", help="ESL-EV statements (;-separated)")
    parser.add_argument("--trace", help="CSV trace file to replay")
    parser.add_argument(
        "--time-scale", type=float, default=1.0,
        help="timestamp scale factor for the replay (default 1.0)",
    )
    parser.add_argument(
        "--follow", metavar="STREAM",
        help="print tuples of this derived stream instead of the last "
             "query's rows",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the compiled plan of the last query and exit",
    )
    parser.add_argument(
        "--flush", action="store_true",
        help="fire pending timers at end of trace (timeouts, windows)",
    )
    parser.add_argument(
        "--demo", choices=sorted(DEMOS),
        help="run a packaged paper scenario on simulated data",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="workload seed for --demo",
    )
    return parser


def _print_rows(rows: Sequence[dict], out=None) -> None:
    out = out if out is not None else sys.stdout
    if not rows:
        print("(no output rows)", file=out)
        return
    writer = csv.writer(out)
    header = list(rows[0].keys())
    writer.writerow(header)
    for row in rows:
        writer.writerow([row.get(column, "") for column in header])


def run_script(args: argparse.Namespace) -> int:
    engine = Engine()
    with open(args.script) as handle:
        text = handle.read()
    query_handle = engine.query(text, name="cli")
    if args.explain:
        print(describe_handle(query_handle).render())
        return 0
    collector = None
    if args.follow:
        collector = engine.collect(args.follow)
    if args.trace:
        trace = load_trace(args.trace, engine)
        replay(engine, trace, time_scale=args.time_scale)
    if args.flush:
        engine.flush()
    if collector is not None:
        _print_rows(collector.rows())
    elif query_handle.output is None:
        _print_rows(query_handle.rows())
    else:
        print(
            f"query writes to {query_handle.output.name!r}; "
            f"use --follow {query_handle.output.name} to print it",
            file=sys.stderr,
        )
        return 1
    return 0


def run_demo(args: argparse.Namespace) -> int:
    factory, builder, feed_kwargs = DEMOS[args.demo]
    workload = factory(seed=args.seed) if args.seed is not None else factory()
    scenario = builder(workload)
    advance_to = None
    if isinstance(workload.truth, dict):
        advance_to = workload.truth.get("horizon")
    scenario.feed(advance_to=advance_to, **feed_kwargs)
    print(f"# scenario: {scenario.name}", file=sys.stderr)
    print(f"# trace records: {len(workload.trace)}", file=sys.stderr)
    rows = scenario.rows()
    _print_rows(rows)
    print(f"# output rows: {len(rows)}", file=sys.stderr)
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    from .bench import BENCH_RUNNERS

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run a named benchmark and write BENCH_<name>.json.",
    )
    parser.add_argument(
        "name", choices=sorted(BENCH_RUNNERS),
        help="benchmark to run",
    )
    parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the BENCH_<name>.json report (default: cwd)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="repetitions per configuration (default: REPRO_BENCH_REPS or 3)",
    )
    parser.add_argument(
        "--size", type=int, default=None,
        help="workload size knob (products/tags, runner-specific default)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "parallel", "futures"), default=None,
        help="sharded executor to measure (runner-specific default); "
             "'futures' is the legacy pool transport kept for ablation",
    )
    parser.add_argument(
        "--codec", choices=("framed", "pickle"), default=None,
        help="pipe-transport payload codec (parallel executor only)",
    )
    parser.add_argument(
        "--queries", default=None, metavar="N[,N...]",
        help="registered-query scales to measure (multi_query only), "
             "e.g. --queries 1000,10000",
    )
    return parser


def run_bench(argv: Sequence[str]) -> int:
    import inspect

    from .bench import BENCH_RUNNERS

    args = build_bench_parser().parse_args(argv)
    runner = BENCH_RUNNERS[args.name]
    kwargs: dict = {}
    if args.reps is not None:
        kwargs["reps"] = args.reps
    if args.size is not None:
        kwargs["n_products"] = args.size
    if args.executor is not None:
        kwargs["executor"] = args.executor
    if args.codec is not None:
        kwargs["codec"] = args.codec
    if args.queries is not None:
        kwargs["query_counts"] = tuple(
            int(part) for part in args.queries.split(",") if part
        )
    accepted = inspect.signature(runner).parameters
    if "n_products" in kwargs and "n_products" not in accepted and "n_rows" in accepted:
        kwargs["n_rows"] = kwargs.pop("n_products")  # row-sized workloads
    dropped = sorted(set(kwargs) - set(accepted))
    if dropped:
        print(
            f"# {args.name} ignores: {', '.join(dropped)}", file=sys.stderr
        )
        kwargs = {key: kwargs[key] for key in kwargs if key in accepted}
    report = runner(**kwargs)
    path = report.write(args.out)
    print(f"# wrote {path}", file=sys.stderr)
    for entry in report.experiments:
        if entry.get("kind") == "scaling_curve":
            for point in entry["curve"]:
                print(
                    f"{entry['label']}: shards={point['shards']} "
                    f"seconds={point['seconds']:.4f} "
                    f"speedup={point['speedup']:.2f}x",
                    file=sys.stderr,
                )
            continue
        line = (
            f"{entry['label']}: {entry['throughput_tuples_per_s']:,.0f} "
            "tuples/s"
        )
        latency = entry.get("latency_us")
        if latency:
            line += f" p99={latency['p99']:.0f}us"
        if entry.get("state_size") is not None:
            line += f" peak_state={entry['state_size']}"
        if "max_tick_touches" in entry:
            line += f" max_tick_touches={entry['max_tick_touches']}"
        if "speedup_vs_single" in entry:
            line += f" speedup={entry['speedup_vs_single']:.2f}x"
        if entry.get("cpu_limited"):
            line += " (cpu-limited)"
        print(line, file=sys.stderr)
    speedup = report.meta.get("speedup_indexed_vs_naive")
    if speedup:
        print(f"# indexed vs naive: {speedup:.2f}x", file=sys.stderr)
    transport = report.meta.get("speedup_framed_vs_futures")
    if transport:
        line = f"# pipe-framed vs futures-pickle: {transport:.2f}x"
        if report.meta.get("cpu_limited"):
            line += " (cpu-limited: arms share cores, read as parity check)"
        print(line, file=sys.stderr)
    shared = report.meta.get("speedup_shared_vs_naive")
    if shared:
        by_count = report.meta.get("speedup_shared_vs_naive_by_queries", {})
        detail = ", ".join(
            f"{count} queries: {value:.2f}x" for count, value in by_count.items()
        )
        print(
            f"# shared vs naive per-query engines: {shared:.2f}x"
            + (f" ({detail})" if detail else ""),
            file=sys.stderr,
        )
    vectorized = report.meta.get("speedup_vectorized_vs_scalar")
    if vectorized:
        by_sel = report.meta.get(
            "speedup_vectorized_vs_scalar_by_selectivity", {}
        )
        detail = ", ".join(
            f"{sel}: {value:.2f}x" for sel, value in by_sel.items()
        )
        print(
            f"# vectorized vs scalar: {vectorized:.2f}x"
            + (f" ({detail})" if detail else ""),
            file=sys.stderr,
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        return run_bench(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.demo:
        return run_demo(args)
    if not args.script:
        parser.error("either --script or --demo is required")
    return run_script(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
