"""EPC (Electronic Product Code) identities.

The paper's tag IDs are dotted EPCs of the form
``company.productcode.serialnumber`` (e.g. ``20.17.5001``), following the
EPCGlobal Tag Data Standard's General Identifier layout in decimal "URI
style".  This module provides parsing, validation, formatting, a GID-96
binary encoding (the 96-bit layout the standard defines: 8-bit header,
28-bit manager, 24-bit object class, 36-bit serial), and deterministic
generators used by the RFID workload simulators.

Real deployments read binary EPCs off tags and convert to the URI form in
middleware; our simulated readers emit the dotted decimal form directly, as
the paper's examples do.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..dsms.errors import EpcFormatError

#: GID-96 field widths (bits), per the EPC Tag Data Standard v1.1.
GID96_HEADER = 0x35
_MANAGER_BITS = 28
_CLASS_BITS = 24
_SERIAL_BITS = 36

MAX_MANAGER = (1 << _MANAGER_BITS) - 1
MAX_CLASS = (1 << _CLASS_BITS) - 1
MAX_SERIAL = (1 << _SERIAL_BITS) - 1


class EpcCode:
    """A parsed EPC: ``company.product.serial``.

    Instances are immutable and hashable, so they work as dict keys in the
    containment/ground-truth bookkeeping of the simulators.
    """

    __slots__ = ("company", "product", "serial")

    def __init__(self, company: int, product: int, serial: int) -> None:
        if not 0 <= company <= MAX_MANAGER:
            raise EpcFormatError(f"company {company} out of range 0..{MAX_MANAGER}")
        if not 0 <= product <= MAX_CLASS:
            raise EpcFormatError(f"product {product} out of range 0..{MAX_CLASS}")
        if not 0 <= serial <= MAX_SERIAL:
            raise EpcFormatError(f"serial {serial} out of range 0..{MAX_SERIAL}")
        self.company = company
        self.product = product
        self.serial = serial

    @classmethod
    def parse(cls, text: str) -> "EpcCode":
        """Parse ``"20.17.5001"`` into an :class:`EpcCode`."""
        parts = str(text).split(".")
        if len(parts) != 3:
            raise EpcFormatError(
                f"EPC must have 3 dotted parts (company.product.serial): {text!r}"
            )
        try:
            company, product, serial = (int(part) for part in parts)
        except ValueError:
            raise EpcFormatError(f"EPC parts must be integers: {text!r}") from None
        return cls(company, product, serial)

    @classmethod
    def from_gid96(cls, value: int) -> "EpcCode":
        """Decode a 96-bit GID integer."""
        if value < 0 or value >= (1 << 96):
            raise EpcFormatError(f"GID-96 value out of range: {value}")
        header = value >> 88
        if header != GID96_HEADER:
            raise EpcFormatError(
                f"not a GID-96 EPC: header {header:#04x} != {GID96_HEADER:#04x}"
            )
        serial = value & MAX_SERIAL
        product = (value >> _SERIAL_BITS) & MAX_CLASS
        company = (value >> (_SERIAL_BITS + _CLASS_BITS)) & MAX_MANAGER
        return cls(company, product, serial)

    def to_gid96(self) -> int:
        """Encode as a 96-bit GID integer."""
        return (
            (GID96_HEADER << 88)
            | (self.company << (_SERIAL_BITS + _CLASS_BITS))
            | (self.product << _SERIAL_BITS)
            | self.serial
        )

    def to_uri(self) -> str:
        """The EPC Tag URI form: ``urn:epc:id:gid:20.17.5001``."""
        return f"urn:epc:id:gid:{self.company}.{self.product}.{self.serial}"

    @classmethod
    def from_uri(cls, uri: str) -> "EpcCode":
        prefix = "urn:epc:id:gid:"
        if not uri.startswith(prefix):
            raise EpcFormatError(f"not a GID EPC URI: {uri!r}")
        return cls.parse(uri[len(prefix):])

    def __str__(self) -> str:
        return f"{self.company}.{self.product}.{self.serial}"

    def __repr__(self) -> str:
        return f"EpcCode({self.company}, {self.product}, {self.serial})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EpcCode):
            return (
                self.company == other.company
                and self.product == other.product
                and self.serial == other.serial
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.company, self.product, self.serial))

    def __lt__(self, other: "EpcCode") -> bool:
        return (self.company, self.product, self.serial) < (
            other.company,
            other.product,
            other.serial,
        )


def is_valid_epc(text: str) -> bool:
    """True when *text* parses as a dotted EPC."""
    try:
        EpcCode.parse(text)
    except EpcFormatError:
        return False
    return True


def generate_epcs(
    count: int,
    company: int | tuple[int, int] = 20,
    product: int | tuple[int, int] = (1, 99),
    serial: tuple[int, int] = (1, 99999),
    rng: random.Random | None = None,
    unique: bool = True,
) -> Iterator[EpcCode]:
    """Yield *count* random EPCs.

    *company* and *product* may be a fixed value or an inclusive range;
    *serial* is always a range.  With ``unique=True`` no EPC repeats (the
    generator raises if the space is too small).
    """
    rng = rng or random.Random(0)

    def pick(spec: int | tuple[int, int]) -> int:
        if isinstance(spec, tuple):
            return rng.randint(spec[0], spec[1])
        return spec

    seen: set[EpcCode] = set()
    attempts = 0
    produced = 0
    while produced < count:
        code = EpcCode(pick(company), pick(product), rng.randint(*serial))
        attempts += 1
        if unique:
            if code in seen:
                if attempts > 100 * count + 1000:
                    raise EpcFormatError(
                        "EPC space too small for the requested unique count"
                    )
                continue
            seen.add(code)
        yield code
        produced += 1
