"""ALE-style EPC patterns: ``20.*.[5000-9999]``.

The RFID Application Level Events (ALE) standard — and the paper's
Example 3 — group and aggregate tag readings by EPC patterns.  A pattern has
one segment per EPC part; each segment is:

* a literal integer (``20``) matching exactly that value,
* ``*`` matching anything, or
* an inclusive range ``[lo-hi]`` (``[5000-9999]``).

:class:`EpcPattern` compiles the textual form once and matches EPCs (parsed
or textual) quickly.  :func:`pattern_to_sql` emits the equivalent ESL-EV
WHERE fragment — the translation the paper demonstrates with LIKE +
``extract_serial`` — so tests can check the two formulations agree.
"""

from __future__ import annotations

from typing import Iterable

from ..dsms.errors import EpcFormatError
from .codes import EpcCode


class _Segment:
    """One compiled pattern segment."""

    __slots__ = ("kind", "value", "low", "high")

    def __init__(self, text: str) -> None:
        text = text.strip()
        if text == "*":
            self.kind = "star"
            self.value = self.low = self.high = 0
            return
        if text.startswith("[") and text.endswith("]"):
            body = text[1:-1]
            sep = body.find("-", 1)  # allow the first char to be a digit only
            if sep < 0:
                raise EpcFormatError(f"malformed range segment: {text!r}")
            try:
                self.low = int(body[:sep])
                self.high = int(body[sep + 1:])
            except ValueError:
                raise EpcFormatError(f"non-integer range bounds: {text!r}") from None
            if self.low > self.high:
                raise EpcFormatError(f"empty range {text!r} (low > high)")
            self.kind = "range"
            self.value = 0
            return
        try:
            self.value = int(text)
        except ValueError:
            raise EpcFormatError(f"malformed pattern segment: {text!r}") from None
        self.kind = "literal"
        self.low = self.high = self.value

    def matches(self, part: int) -> bool:
        if self.kind == "star":
            return True
        if self.kind == "literal":
            return part == self.value
        return self.low <= part <= self.high

    def __repr__(self) -> str:
        if self.kind == "star":
            return "*"
        if self.kind == "literal":
            return str(self.value)
        return f"[{self.low}-{self.high}]"


class EpcPattern:
    """A compiled three-segment EPC pattern."""

    __slots__ = ("text", "_segments")

    def __init__(self, text: str) -> None:
        parts = text.split(".")
        if len(parts) != 3:
            raise EpcFormatError(
                f"EPC pattern needs 3 dotted segments, got {len(parts)}: {text!r}"
            )
        self.text = text
        self._segments = tuple(_Segment(part) for part in parts)

    def matches(self, epc: EpcCode | str) -> bool:
        """True when *epc* (code or dotted text) matches this pattern.

        Malformed EPC text never matches (readers do produce garbage).
        """
        if isinstance(epc, str):
            try:
                epc = EpcCode.parse(epc)
            except EpcFormatError:
                return False
        company, product, serial = self._segments
        return (
            company.matches(epc.company)
            and product.matches(epc.product)
            and serial.matches(epc.serial)
        )

    def filter(self, epcs: Iterable[EpcCode | str]) -> Iterable[EpcCode | str]:
        """Lazily yield the inputs that match."""
        return (epc for epc in epcs if self.matches(epc))

    @property
    def segments(self) -> tuple[_Segment, _Segment, _Segment]:
        return self._segments  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"EpcPattern({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EpcPattern) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)


def pattern_to_sql(pattern: EpcPattern | str, column: str = "tid") -> str:
    """Translate a pattern into the paper's SQL predicate form.

    ``20.*.[5000-9999]`` becomes::

        tid LIKE '20.%.%' AND extract_serial(tid) >= 5000
                           AND extract_serial(tid) <= 9999

    Literal/range conditions per segment use ``extract_company`` /
    ``extract_product`` / ``extract_serial``.  The result is a WHERE-clause
    fragment parsable by the ESL-EV parser.
    """
    if isinstance(pattern, str):
        pattern = EpcPattern(pattern)
    company, product, serial = pattern.segments
    like_parts = [
        str(seg.value) if seg.kind == "literal" else "%"
        for seg in (company, product, serial)
    ]
    conditions = [f"{column} LIKE '{'.'.join(like_parts)}'"]
    extractors = ("extract_company", "extract_product", "extract_serial")
    for segment, extractor in zip((company, product, serial), extractors):
        if segment.kind == "range":
            # extract_company returns text; compare numerically via to_int.
            accessor = (
                f"to_int({extractor}({column}))"
                if extractor != "extract_serial"
                else f"{extractor}({column})"
            )
            conditions.append(f"{accessor} >= {segment.low}")
            conditions.append(f"{accessor} <= {segment.high}")
    return " AND ".join(conditions)
