"""EPC (Electronic Product Code) substrate: codes and ALE-style patterns."""

from .codes import EpcCode, generate_epcs, is_valid_epc, GID96_HEADER
from .patterns import EpcPattern, pattern_to_sql

__all__ = [
    "EpcCode",
    "EpcPattern",
    "GID96_HEADER",
    "generate_epcs",
    "is_valid_epc",
    "pattern_to_sql",
]
