"""repro — a reproduction of "RFID Data Processing with a Data Stream Query
Language" (Bai, Wang, Liu, Zaniolo, Liu; ICDE 2007).

The package implements ESL-EV: an SQL-based stream query language extended
with temporal event operators (SEQ, star sequences, EXCEPTION_SEQ,
CLEVEL_SEQ, tuple pairing modes, FOLLOWING and cross-sub-query windows),
on top of a self-contained DSMS substrate, an EPC/ALE layer, RFID workload
simulators, and the paper's two comparison baselines.

Quickstart::

    from repro import Engine

    engine = Engine()
    engine.create_stream('readings', 'reader_id str, tag_id str, read_time float')
    handle = engine.query(
        "SELECT count(tag_id) FROM readings WHERE tag_id LIKE '20.%'")
    engine.push('readings',
                {'reader_id': 'r1', 'tag_id': '20.1.5001', 'read_time': 0.0},
                ts=0.0)
    print(handle.rows())

See the ``examples/`` directory for the paper's full scenarios.
"""

from .dsms import (
    Aggregate,
    Collector,
    Engine,
    EslError,
    EslRuntimeError,
    EslSemanticError,
    EslSyntaxError,
    QueryHandle,
    Schema,
    ShardedEngine,
    ShardedQueryHandle,
    SnapshotView,
    Stream,
    Table,
    Tuple,
    VirtualClock,
    WindowSpec,
    uda_from_callables,
)
from .core.operators import (
    ExceptionReason,
    ExceptionSeqOperator,
    OperatorWindow,
    PairingMode,
    SeqArg,
    SeqMatch,
    SeqOperator,
    SequenceOutcome,
    StarSeqOperator,
    SymmetricExistsOperator,
    make_sequence_operator,
)
from .core.planner import describe_handle, optimization_report
from .epc import EpcCode, EpcPattern, pattern_to_sql

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "Collector",
    "Engine",
    "EpcCode",
    "EpcPattern",
    "EslError",
    "EslRuntimeError",
    "EslSemanticError",
    "EslSyntaxError",
    "ExceptionReason",
    "ExceptionSeqOperator",
    "OperatorWindow",
    "PairingMode",
    "QueryHandle",
    "Schema",
    "SeqArg",
    "SeqMatch",
    "SeqOperator",
    "SequenceOutcome",
    "ShardedEngine",
    "ShardedQueryHandle",
    "SnapshotView",
    "StarSeqOperator",
    "Stream",
    "SymmetricExistsOperator",
    "Table",
    "Tuple",
    "VirtualClock",
    "WindowSpec",
    "describe_handle",
    "make_sequence_operator",
    "optimization_report",
    "pattern_to_sql",
    "uda_from_callables",
    "__version__",
]
