"""An ALE-style reporting layer (EPCGlobal Application Level Events).

The paper motivates its language partly through the ALE standard's
requirements: "a common interface to process raw RFID events, including
data filtering, windows-based aggregation, and reporting", with EPC-pattern
based grouping (the ``20.*.[5000-9999]`` example).  This module implements
the relevant slice of ALE on top of the DSMS:

* an **event cycle** — a repeating, fixed-duration collection window over
  one or more reading streams (driven by engine timers, so cycles close on
  virtual time even with no arrivals);
* **filtering** by include/exclude EPC patterns;
* **report sets** — CURRENT (everything seen this cycle), ADDITIONS (new
  vs. previous cycle), DELETIONS (gone vs. previous cycle);
* **grouping/counting** by EPC pattern.

This demonstrates that the paper's target middleware interface is
expressible over the same substrate the ESL-EV queries run on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..dsms.engine import Engine
from ..dsms.tuples import Tuple
from ..epc.patterns import EpcPattern


class CycleReport:
    """One event-cycle report."""

    __slots__ = ("cycle_index", "start", "end", "current", "additions",
                 "deletions", "group_counts")

    def __init__(
        self,
        cycle_index: int,
        start: float,
        end: float,
        current: frozenset[str],
        additions: frozenset[str],
        deletions: frozenset[str],
        group_counts: dict[str, int],
    ) -> None:
        self.cycle_index = cycle_index
        self.start = start
        self.end = end
        self.current = current
        self.additions = additions
        self.deletions = deletions
        self.group_counts = group_counts

    @property
    def count(self) -> int:
        return len(self.current)

    def __repr__(self) -> str:
        return (
            f"CycleReport(#{self.cycle_index} [{self.start:g},{self.end:g}) "
            f"current={len(self.current)} +{len(self.additions)} "
            f"-{len(self.deletions)})"
        )


class EventCycle:
    """A repeating ALE event cycle over reading streams.

    Args:
        engine: the owning engine (provides streams and the clock).
        streams: stream names carrying readings.
        tag_field: which field holds the EPC text.
        duration: cycle length in (virtual) seconds.
        include: EPC patterns a tag must match (any of) to be reported;
            empty means match-all.
        exclude: EPC patterns that veto a tag.
        group_by: named patterns whose per-cycle tag counts are reported.
        on_report: optional callback per closed cycle.
        start: virtual time of the first cycle's start (default: now).
    """

    def __init__(
        self,
        engine: Engine,
        streams: Sequence[str],
        tag_field: str,
        duration: float,
        include: Iterable[EpcPattern | str] = (),
        exclude: Iterable[EpcPattern | str] = (),
        group_by: dict[str, EpcPattern | str] | None = None,
        on_report: Callable[[CycleReport], None] | None = None,
        start: float | None = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("cycle duration must be positive")
        self.engine = engine
        self.tag_field = tag_field
        self.duration = duration
        self.include = [
            p if isinstance(p, EpcPattern) else EpcPattern(p) for p in include
        ]
        self.exclude = [
            p if isinstance(p, EpcPattern) else EpcPattern(p) for p in exclude
        ]
        self.group_by = {
            name: (p if isinstance(p, EpcPattern) else EpcPattern(p))
            for name, p in (group_by or {}).items()
        }
        self.reports: list[CycleReport] = []
        self._on_report = on_report
        self._seen: set[str] = set()
        self._previous: frozenset[str] = frozenset()
        self._cycle_index = 0
        self._cycle_start = engine.now if start is None else start
        self._stopped = False
        self._unsubscribes = [
            engine.streams.get(name).subscribe(self._on_tuple) for name in streams
        ]
        self._arm()

    def stop(self) -> None:
        self._stopped = True
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    def _arm(self) -> None:
        deadline = self._cycle_start + self.duration
        self.engine.clock.schedule(deadline, self._close_cycle, periodic=True)

    def _passes(self, tag: str) -> bool:
        if self.include and not any(p.matches(tag) for p in self.include):
            return False
        if any(p.matches(tag) for p in self.exclude):
            return False
        return True

    def _on_tuple(self, tup: Tuple) -> None:
        tag = tup.get(self.tag_field)
        if tag is None:
            return
        tag = str(tag)
        if tup.ts < self._cycle_start:
            return  # before the first cycle opened
        if self._passes(tag):
            self._seen.add(tag)

    def _close_cycle(self, fired_at: float) -> None:
        if self._stopped:
            return
        current = frozenset(self._seen)
        additions = current - self._previous
        deletions = self._previous - current
        group_counts = {
            name: sum(1 for tag in current if pattern.matches(tag))
            for name, pattern in self.group_by.items()
        }
        report = CycleReport(
            self._cycle_index,
            self._cycle_start,
            self._cycle_start + self.duration,
            current,
            frozenset(additions),
            frozenset(deletions),
            group_counts,
        )
        self.reports.append(report)
        if self._on_report is not None:
            self._on_report(report)
        self._previous = current
        self._seen = set()
        self._cycle_index += 1
        self._cycle_start += self.duration
        self._arm()

    def __repr__(self) -> str:
        return (
            f"EventCycle(duration={self.duration:g}s, "
            f"cycle={self._cycle_index}, reports={len(self.reports)})"
        )
