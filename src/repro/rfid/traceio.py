"""Trace persistence: CSV import/export for reading streams.

Real deployments capture reader output as flat files; this module moves
traces between disk and the engine:

* :func:`save_trace` — write ``(stream, row, ts)`` records to CSV, one
  file per format: a ``stream`` column, a ``ts`` column, and the union of
  the row fields;
* :func:`load_trace` — read them back, coercing values against the
  engine's declared stream schemas (so ints stay ints);
* :func:`replay` — feed a loaded trace into an engine, optionally scaled
  (time-compressed replays for testing, as middleware test rigs do).

The format is deliberately trivial — one reading per line — so traces are
diffable and editable by hand.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..dsms.engine import Engine
from ..dsms.errors import EslSemanticError

TraceRecord = tuple[str, dict[str, Any], float]

#: Reserved CSV column names.
STREAM_COLUMN = "stream"
TS_COLUMN = "ts"


def save_trace(trace: Iterable[TraceRecord], path: str | Path) -> int:
    """Write *trace* to *path* as CSV.  Returns the record count.

    Columns are ``stream``, ``ts``, then the sorted union of all row
    fields; rows missing a field leave it empty.
    """
    records = list(trace)
    fields: set[str] = set()
    for __, row, __ts in records:
        if STREAM_COLUMN in row or TS_COLUMN in row:
            raise EslSemanticError(
                f"row fields may not be named {STREAM_COLUMN!r} or {TS_COLUMN!r}"
            )
        fields.update(row)
    header = [STREAM_COLUMN, TS_COLUMN, *sorted(fields)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for stream, row, ts in records:
            writer.writerow(
                [stream, repr(ts) if isinstance(ts, float) else ts]
                + [_cell(row.get(field)) for field in sorted(fields)]
            )
    return len(records)


def _cell(value: Any) -> Any:
    return "" if value is None else value


def load_trace(
    path: str | Path, engine: Engine | None = None
) -> list[TraceRecord]:
    """Read a CSV trace written by :func:`save_trace`.

    With *engine* given, each row is coerced against the declared schema of
    its stream (unknown streams raise); without it, all values stay
    strings except ``ts``.
    """
    records: list[TraceRecord] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or STREAM_COLUMN not in reader.fieldnames:
            raise EslSemanticError(f"{path}: not a trace file (no stream column)")
        field_names = [
            name for name in reader.fieldnames
            if name not in (STREAM_COLUMN, TS_COLUMN)
        ]
        for line in reader:
            stream_name = line[STREAM_COLUMN]
            ts = float(line[TS_COLUMN])
            row: dict[str, Any] = {}
            if engine is not None:
                schema = engine.streams.get(stream_name).schema
                for name in field_names:
                    if name not in schema:
                        continue
                    raw = line.get(name, "")
                    value = None if raw == "" else raw
                    position = schema.position(name)
                    row[name] = schema.fields[position].type.coerce(value)
            else:
                for name in field_names:
                    raw = line.get(name, "")
                    row[name] = None if raw == "" else raw
            records.append((stream_name, row, ts))
    records.sort(key=lambda record: record[2])
    return records


def replay(
    engine: Engine,
    trace: Iterable[TraceRecord],
    time_scale: float = 1.0,
    offset: float = 0.0,
) -> int:
    """Feed *trace* into *engine*, rescaling timestamps.

    ``time_scale=0.1`` compresses a 10-minute capture into one virtual
    minute; ``offset`` shifts the epoch (useful when appending a second
    capture after a first).  Returns the number of tuples pushed.
    """
    if time_scale <= 0:
        raise EslSemanticError("time_scale must be positive")
    count = 0
    for stream, row, ts in trace:
        engine.push(stream, row, ts=offset + ts * time_scale)
        count += 1
    return count


def iter_stream(
    trace: Iterable[TraceRecord], stream: str
) -> Iterator[TraceRecord]:
    """Yield only the records of one stream (case-insensitive)."""
    wanted = stream.lower()
    for record in trace:
        if record[0].lower() == wanted:
            yield record
