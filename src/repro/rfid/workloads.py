"""Workload generators with ground truth for every paper scenario.

Each generator produces a :class:`WorkloadResult`:

* ``trace`` — time-sorted ``(stream, row_dict, ts)`` records ready for
  :meth:`repro.dsms.engine.Engine.run_trace`;
* ``truth`` — the scenario-specific ground truth (what a perfect detector
  should output), used by the benchmarks to score accuracy.

The parameters default to the paper's numbers where it gives them:
t0 = 5 s (case gap, Example 4), t1 = 1 s (intra-case product gap),
1 hour (lab deadline, Example 5), 1 minute (door window, section 3.2).
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from ..epc.codes import EpcCode, generate_epcs
from .readers import Reading, ReaderModel, merge_readings

TraceRecord = tuple[str, dict[str, Any], float]


class WorkloadResult:
    """A generated trace plus its ground truth."""

    def __init__(self, trace: list[TraceRecord], truth: Any) -> None:
        self.trace = trace
        self.truth = truth

    def __len__(self) -> int:
        return len(self.trace)

    def __repr__(self) -> str:
        return f"WorkloadResult({len(self.trace)} records)"


def _sorted_trace(records: Iterable[TraceRecord]) -> list[TraceRecord]:
    return sorted(records, key=lambda record: record[2])


# ---------------------------------------------------------------------------
# E1: duplicate elimination
# ---------------------------------------------------------------------------


def dedup_workload(
    n_tags: int = 50,
    presences_per_tag: int = 5,
    dwell: float = 0.8,
    read_interval: float = 0.25,
    presence_gap: float = 5.0,
    seed: int = 7,
    stream: str = "readings",
) -> WorkloadResult:
    """Tags dwelling in one reader's field, producing duplicate reports.

    Each presence lasts *dwell* seconds (several repeat reads at
    *read_interval*); presences of the same tag are *presence_gap* seconds
    apart, far beyond the 1 s dedup threshold.  Ground truth = one logical
    reading per presence (the first report), as Example 1's filter should
    output.
    """
    rng = random.Random(seed)
    reader = ReaderModel("door1", read_interval=read_interval,
                         rng=random.Random(seed + 1))
    readings: list[Reading] = []
    truth: list[tuple[str, float]] = []
    for tag_index in range(n_tags):
        tag = f"20.1.{1000 + tag_index}"
        offset = rng.uniform(0.0, 2.0)
        for presence in range(presences_per_tag):
            start = offset + presence * presence_gap
            reports = reader.observe(tag, start, start + dwell)
            if reports:
                truth.append((tag, reports[0].ts))
            readings.extend(reports)
    merged = merge_readings([readings])
    trace = [(stream, r.as_row(), r.ts) for r in merged]
    return WorkloadResult(_sorted_trace(trace), sorted(truth, key=lambda t: t[1]))


# ---------------------------------------------------------------------------
# E2: location tracking
# ---------------------------------------------------------------------------


def location_workload(
    n_tags: int = 20,
    n_locations: int = 4,
    moves_per_tag: int = 6,
    reads_per_stay: int = 3,
    stay_duration: float = 30.0,
    seed: int = 11,
    stream: str = "tag_locations",
) -> WorkloadResult:
    """Tags wandering across locations, re-read repeatedly at each stop.

    Ground truth = the movement history each tag should leave in
    ``object_movement``: one entry per *first visit* to a location (the
    paper's query suppresses re-inserts of an already-recorded
    (tag, location) pair).
    """
    rng = random.Random(seed)
    locations = [f"loc{i}" for i in range(n_locations)]
    records: list[TraceRecord] = []
    truth: list[tuple[str, str, float]] = []
    for tag_index in range(n_tags):
        tag = f"20.2.{2000 + tag_index}"
        seen: set[str] = set()
        t = rng.uniform(0.0, 10.0)
        previous: str | None = None
        for __ in range(moves_per_tag):
            choices = [loc for loc in locations if loc != previous]
            location = rng.choice(choices)
            previous = location
            first_ts = t
            for read in range(reads_per_stay):
                records.append(
                    (
                        stream,
                        {"readerid": f"rd_{location}", "tid": tag,
                         "tagtime": t, "loc": location},
                        t,
                    )
                )
                t += stay_duration / reads_per_stay
            if location not in seen:
                seen.add(location)
                truth.append((tag, location, first_ts))
            t += rng.uniform(5.0, 20.0)
    return WorkloadResult(
        _sorted_trace(records), sorted(truth, key=lambda item: item[2])
    )


# ---------------------------------------------------------------------------
# E3: EPC-pattern aggregation
# ---------------------------------------------------------------------------


def epc_stream_workload(
    n_readings: int = 2000,
    companies: Sequence[int] = (20, 21, 37),
    serial_range: tuple[int, int] = (1, 12000),
    pattern_company: int = 20,
    pattern_serial: tuple[int, int] = (5000, 9999),
    seed: int = 13,
    stream: str = "readings",
) -> WorkloadResult:
    """A mixed-company EPC reading stream.

    Ground truth = how many readings match the ALE pattern
    ``{pattern_company}.*.[lo-hi]`` — strictly, with the paper's Example 3
    open interval ``> 5000 AND < 9999`` counted separately as
    ``truth['paper_count']``.
    """
    rng = random.Random(seed)
    records: list[TraceRecord] = []
    pattern_count = 0
    paper_count = 0
    lo, hi = pattern_serial
    for index in range(n_readings):
        company = rng.choice(list(companies))
        product = rng.randint(1, 50)
        serial = rng.randint(*serial_range)
        epc = EpcCode(company, product, serial)
        ts = index * 0.01
        records.append(
            (stream, {"reader_id": "agg1", "tid": str(epc), "read_time": ts}, ts)
        )
        if company == pattern_company and lo <= serial <= hi:
            pattern_count += 1
        if company == pattern_company and lo < serial < hi:
            paper_count += 1
    truth = {"pattern_count": pattern_count, "paper_count": paper_count}
    return WorkloadResult(records, truth)


# ---------------------------------------------------------------------------
# E4 / Figure 1: containment (packing)
# ---------------------------------------------------------------------------


def packing_workload(
    n_cases: int = 40,
    products_per_case: tuple[int, int] = (2, 8),
    intra_gap: float = 0.4,
    case_delay: float = 3.0,
    inter_case_gap: float = 2.0,
    overlap_next_case: bool = True,
    seed: int = 17,
    product_stream: str = "r1",
    case_stream: str = "r2",
) -> WorkloadResult:
    """Figure 1's packing station: product runs followed by case readings.

    * products of one case are read *intra_gap* seconds apart
      (< t1 = 1 s);
    * the case tag is read *case_delay* seconds after its last product
      (< t0 = 5 s);
    * consecutive cases' product runs are *inter_case_gap* seconds apart
      (> t1), and with ``overlap_next_case`` (requires case_delay >
      inter_case_gap) the next case's products begin streaming before the
      previous case tag is read — the hard part of Figure 1(b).

    Ground truth maps each case tag to its product tag list (in packing
    order).
    """
    if intra_gap >= 1.0:
        raise ValueError("intra_gap must stay below the paper's t1 = 1 s")
    rng = random.Random(seed)
    epcs = list(generate_epcs(
        n_cases * products_per_case[1] + n_cases,
        company=20,
        rng=random.Random(seed + 1),
    ))
    records: list[TraceRecord] = []
    truth: dict[str, list[str]] = {}
    t = 0.0
    epc_iter = iter(epcs)
    pending_case: tuple[str, float] | None = None
    for case_index in range(n_cases):
        count = rng.randint(*products_per_case)
        products = [str(next(epc_iter)) for __ in range(count)]
        case_tag = f"case.{case_index}.{1 + case_index}"
        start = t
        for position, product in enumerate(products):
            ts = start + position * intra_gap
            records.append(
                (
                    product_stream,
                    {"readerid": "r1", "tagid": product, "tagtime": ts},
                    ts,
                )
            )
        last_product_ts = start + (count - 1) * intra_gap
        case_ts = last_product_ts + case_delay
        if pending_case is not None and overlap_next_case:
            # The previous case tag is read after this case's products have
            # started streaming in (Figure 1(b) overlap).
            prev_tag, prev_ts = pending_case
            records.append(
                (
                    case_stream,
                    {"readerid": "r2", "tagid": prev_tag, "tagtime": prev_ts},
                    prev_ts,
                )
            )
            pending_case = None
        if overlap_next_case and case_index < n_cases - 1:
            pending_case = (case_tag, case_ts)
        else:
            records.append(
                (
                    case_stream,
                    {"readerid": "r2", "tagid": case_tag, "tagtime": case_ts},
                    case_ts,
                )
            )
        truth[case_tag] = products
        t = last_product_ts + inter_case_gap
    if pending_case is not None:
        tag, ts = pending_case
        records.append(
            (case_stream, {"readerid": "r2", "tagid": tag, "tagtime": ts}, ts)
        )
    return WorkloadResult(_sorted_trace(records), truth)


# ---------------------------------------------------------------------------
# E5: lab workflow with injected violations
# ---------------------------------------------------------------------------


def lab_workflow_workload(
    n_runs: int = 60,
    violation_rate: float = 0.3,
    step_gap: float = 300.0,
    deadline: float = 3600.0,
    seed: int = 19,
    streams: tuple[str, str, str] = ("a1", "a2", "a3"),
) -> WorkloadResult:
    """Staff performing the A->B->C lab procedure, with injected violations.

    Each run is one of: ``ok`` (A, B, C in order within the deadline),
    ``wrong_order`` (A then C), ``wrong_start`` (B first), or ``timeout``
    (A then B, then silence past the deadline).  Ground truth counts each
    category and records the per-run labels in order.
    """
    rng = random.Random(seed)
    records: list[TraceRecord] = []
    labels: list[str] = []
    counts = {"ok": 0, "wrong_order": 0, "wrong_start": 0, "timeout": 0}
    t = 0.0
    for run in range(n_runs):
        tag = f"op{run}"
        if rng.random() < violation_rate:
            kind = rng.choice(["wrong_order", "wrong_start", "timeout"])
        else:
            kind = "ok"
        labels.append(kind)
        counts[kind] += 1
        a_stream, b_stream, c_stream = streams
        if kind == "ok":
            for stream, offset in ((a_stream, 0.0), (b_stream, step_gap),
                                   (c_stream, 2 * step_gap)):
                ts = t + offset
                records.append((stream, {"tagid": tag, "tagtime": ts}, ts))
            t += 2 * step_gap
        elif kind == "wrong_order":
            records.append((a_stream, {"tagid": tag, "tagtime": t}, t))
            ts = t + step_gap
            records.append((c_stream, {"tagid": tag, "tagtime": ts}, ts))
            t += step_gap
        elif kind == "wrong_start":
            records.append((b_stream, {"tagid": tag, "tagtime": t}, t))
        else:  # timeout: start, one step, then silence past the deadline
            records.append((a_stream, {"tagid": tag, "tagtime": t}, t))
            ts = t + step_gap
            records.append((b_stream, {"tagid": tag, "tagtime": ts}, ts))
            t += deadline + step_gap
        t += rng.uniform(deadline * 1.1, deadline * 1.5)
    truth = {"counts": counts, "labels": labels,
             "violations": n_runs - counts["ok"]}
    return WorkloadResult(_sorted_trace(records), truth)


# ---------------------------------------------------------------------------
# E6: four-step quality check
# ---------------------------------------------------------------------------


def quality_check_workload(
    n_products: int = 200,
    step_delay: tuple[float, float] = (5.0, 60.0),
    dropout_rate: float = 0.15,
    interleave: bool = True,
    seed: int = 23,
    streams: tuple[str, str, str, str] = ("c1", "c2", "c3", "c4"),
    rereads: int = 1,
) -> WorkloadResult:
    """Products passing the four checking steps of Example 6.

    A *dropout_rate* fraction abandon the line mid-way (uniformly after
    step 1, 2 or 3).  With ``interleave`` products overlap in time, so the
    operator must disentangle them by tag id.  Ground truth lists the tag
    ids that complete all four steps, with their step timestamps.

    ``rereads`` > 1 models a checkpoint reader reporting the same tag
    several times while it dwells in the field (0.5 s apart) — the raw
    RFID condition Example 1 deduplicates away.  Fed *without* a dedup
    stage, an UNRESTRICTED SEQ then pairs every combination of re-reads,
    which is what the ``operator_state`` benchmark uses to stress match
    enumeration.  Ground truth timestamps remain the first read per step.
    """
    rng = random.Random(seed)
    reread_gap = min(0.5, step_delay[0] / (rereads + 1))
    records: list[TraceRecord] = []
    completed: dict[str, list[float]] = {}
    start = 0.0
    for index in range(n_products):
        tag = f"20.6.{6000 + index}"
        steps = 4
        if rng.random() < dropout_rate:
            steps = rng.randint(1, 3)
        t = start
        stamps: list[float] = []
        for step in range(steps):
            t += rng.uniform(*step_delay)
            for read in range(rereads):
                read_ts = t + read * reread_gap
                records.append(
                    (
                        streams[step],
                        {
                            "readerid": streams[step],
                            "tagid": tag,
                            "tagtime": read_ts,
                        },
                        read_ts,
                    )
                )
            stamps.append(t)
        if steps == 4:
            completed[tag] = stamps
        start += rng.uniform(1.0, 10.0) if interleave else t + 1.0
    return WorkloadResult(_sorted_trace(records), completed)


# ---------------------------------------------------------------------------
# E8: door security (theft detection)
# ---------------------------------------------------------------------------


def door_workload(
    n_events: int = 150,
    theft_rate: float = 0.15,
    lone_person_rate: float = 0.2,
    tau: float = 60.0,
    escort_offset: float = 20.0,
    seed: int = 29,
    stream: str = "tag_readings",
) -> WorkloadResult:
    """Items and persons passing the door reader of section 3.2.

    Event kinds:

    * ``escorted`` — an item with a person within *escort_offset* (< tau);
    * ``theft`` — an item with no person within tau either side;
    * ``lone_person`` — a person with no item nearby.

    Ground truth lists the theft item ids (text-faithful reading: alert on
    items without a person) and the lone-person ids (the literal Example 8
    query's output).  Events are separated by > 2*tau so windows never
    bleed into each other.
    """
    rng = random.Random(seed)
    records: list[TraceRecord] = []
    thefts: list[str] = []
    lone_persons: list[str] = []
    t = 0.0
    for index in range(n_events):
        roll = rng.random()
        if roll < theft_rate:
            item = f"item{index}"
            records.append(
                (stream, {"tagid": item, "tagtype": "item", "tagtime": t}, t)
            )
            thefts.append(item)
        elif roll < theft_rate + lone_person_rate:
            person = f"person{index}"
            records.append(
                (stream, {"tagid": person, "tagtype": "person", "tagtime": t}, t)
            )
            lone_persons.append(person)
        else:
            item = f"item{index}"
            person = f"person{index}"
            offset = rng.uniform(-escort_offset, escort_offset)
            item_ts = t
            person_ts = max(t + offset, 0.0)
            records.append(
                (stream, {"tagid": item, "tagtype": "item",
                          "tagtime": item_ts}, item_ts)
            )
            records.append(
                (stream, {"tagid": person, "tagtype": "person",
                          "tagtime": person_ts}, person_ts)
            )
        t += 2 * tau + rng.uniform(10.0, 60.0)
    truth = {"thefts": thefts, "lone_persons": lone_persons,
             "horizon": t + 2 * tau}
    return WorkloadResult(_sorted_trace(records), truth)


# ---------------------------------------------------------------------------
# Generic multi-stream sequence workload (ablation benches)
# ---------------------------------------------------------------------------


def uniform_sequence_workload(
    n_streams: int = 4,
    n_tuples: int = 1000,
    mean_gap: float = 1.0,
    n_tags: int = 10,
    seed: int = 31,
    stream_prefix: str = "s",
) -> WorkloadResult:
    """Tuples arriving uniformly at random across *n_streams* streams.

    The stress-test shape for pairing-mode state and the join baseline:
    no structure, so UNRESTRICTED match counts grow combinatorially.
    Ground truth is None (these benches measure cost, not accuracy).
    """
    rng = random.Random(seed)
    records: list[TraceRecord] = []
    t = 0.0
    for __ in range(n_tuples):
        t += rng.expovariate(1.0 / mean_gap)
        stream = f"{stream_prefix}{rng.randrange(n_streams)}"
        tag = f"tag{rng.randrange(n_tags)}"
        records.append((stream, {"tagid": tag, "tagtime": t}, t))
    return WorkloadResult(records, None)
