"""Simulated RFID readers.

The paper's deployments use physical readers (warehouse portals, packing
stations, wrist-band readers).  We replace them with stochastic simulators
that reproduce the artifacts the paper's queries exist to handle:

* **duplicate reads** — a tag sitting in an antenna field is reported many
  times ("Duplication is common in RFID data"), with sub-second spacing;
* **missed reads** — a configurable probability that a tag present in the
  field is never reported;
* **timestamp jitter** — small random offsets on report times;
* **ghost reads** — rare spurious tag IDs (malformed or foreign EPCs).

A reader turns *presence intervals* (tag X was in the field during
[t0, t1]) into a list of timestamped readings.  Scenario generators in
:mod:`repro.rfid.workloads` compose readers into full traces with ground
truth.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from ..epc.codes import EpcCode


class Reading:
    """One raw reader report: (reader, tag, time)."""

    __slots__ = ("reader_id", "tag_id", "ts")

    def __init__(self, reader_id: str, tag_id: str, ts: float) -> None:
        self.reader_id = reader_id
        self.tag_id = tag_id
        self.ts = ts

    def as_row(self) -> dict[str, object]:
        return {"reader_id": self.reader_id, "tag_id": self.tag_id,
                "read_time": self.ts}

    def __repr__(self) -> str:
        return f"Reading({self.reader_id}, {self.tag_id}, {self.ts:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Reading):
            return NotImplemented
        return (
            self.reader_id == other.reader_id
            and self.tag_id == other.tag_id
            and self.ts == other.ts
        )

    def __lt__(self, other: "Reading") -> bool:
        return self.ts < other.ts


class ReaderModel:
    """Stochastic model of one reader's reporting behaviour.

    Args:
        reader_id: identifier stamped on every reading.
        read_interval: seconds between repeated reports while a tag stays in
            the field (the duplicate cadence; typical hardware reports every
            0.2-0.5 s).
        miss_rate: probability that a presence interval produces no readings
            at all.
        drop_rate: probability that any individual repeat report is dropped.
        jitter: uniform +/- jitter applied to each report time.
        ghost_rate: probability (per presence) of an extra spurious reading
            with a corrupted tag id.
        rng: random source (pass a seeded Random for reproducibility).
    """

    def __init__(
        self,
        reader_id: str,
        read_interval: float = 0.25,
        miss_rate: float = 0.0,
        drop_rate: float = 0.0,
        jitter: float = 0.0,
        ghost_rate: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if read_interval <= 0:
            raise ValueError("read_interval must be positive")
        for name, rate in (
            ("miss_rate", miss_rate),
            ("drop_rate", drop_rate),
            ("ghost_rate", ghost_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.reader_id = reader_id
        self.read_interval = read_interval
        self.miss_rate = miss_rate
        self.drop_rate = drop_rate
        self.jitter = jitter
        self.ghost_rate = ghost_rate
        self.rng = rng or random.Random(0)

    def observe(
        self, tag_id: str | EpcCode, start: float, end: float | None = None
    ) -> list[Reading]:
        """Readings produced for a tag present during [start, end].

        With ``end=None`` the tag is observed exactly once (a drive-by read).
        Output is time-sorted.
        """
        tag = str(tag_id)
        if self.rng.random() < self.miss_rate:
            return []
        readings: list[Reading] = []
        if end is None or end <= start:
            times = [start]
        else:
            times = []
            t = start
            while t <= end:
                times.append(t)
                t += self.read_interval
        for t in times:
            if readings and self.rng.random() < self.drop_rate:
                continue  # never drop the very first report of a presence
            stamp = t
            if self.jitter:
                stamp += self.rng.uniform(-self.jitter, self.jitter)
                stamp = max(stamp, 0.0)
            readings.append(Reading(self.reader_id, tag, stamp))
        if readings and self.rng.random() < self.ghost_rate:
            ghost_time = readings[-1].ts + self.read_interval / 2
            readings.append(
                Reading(self.reader_id, _corrupt(tag, self.rng), ghost_time)
            )
        readings.sort(key=lambda r: r.ts)
        return readings

    def __repr__(self) -> str:
        return (
            f"ReaderModel({self.reader_id!r}, interval={self.read_interval:g}s, "
            f"miss={self.miss_rate:g}, drop={self.drop_rate:g})"
        )


def _corrupt(tag: str, rng: random.Random) -> str:
    """Flip one character of a tag id to simulate a ghost read."""
    if not tag:
        return "???"
    index = rng.randrange(len(tag))
    replacement = rng.choice("0123456789")
    return tag[:index] + replacement + tag[index + 1:]


def merge_readings(groups: Iterable[Sequence[Reading]]) -> list[Reading]:
    """Merge several readers' outputs into one time-sorted list.

    Ties keep the per-group order, matching how middleware serializes
    simultaneous reports.
    """
    merged: list[Reading] = []
    for group in groups:
        merged.extend(group)
    merged.sort(key=lambda r: r.ts)
    return merged


def readings_to_trace(
    readings: Iterable[Reading], stream_name: str
) -> Iterator[tuple[str, dict[str, object], float]]:
    """Convert readings into ``engine.run_trace`` records."""
    for reading in readings:
        yield (stream_name, reading.as_row(), reading.ts)
