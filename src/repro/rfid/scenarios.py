"""The paper's eight scenarios, packaged end-to-end.

Each ``build_*`` function creates a fresh :class:`Engine`, declares the
scenario's streams/tables, registers the paper's query (verbatim where the
paper gives one), and returns a :class:`Scenario` that can feed a workload
trace and expose results.  Examples and benchmarks share these builders so
the query text lives in exactly one place.
"""

from __future__ import annotations

from typing import Any

from ..dsms.engine import Engine, QueryHandle
from ..dsms.sharding import ShardedEngine
from .workloads import WorkloadResult


class Scenario:
    """A wired engine + query + workload bundle."""

    def __init__(
        self,
        engine: Any,  # Engine or ShardedEngine (same feeding surface)
        handle: Any,  # QueryHandle or ShardedQueryHandle
        workload: WorkloadResult,
        name: str,
    ) -> None:
        self.engine = engine
        self.handle = handle
        self.workload = workload
        self.name = name
        self.fed = False

    def feed(self, advance_to: float | None = None) -> "Scenario":
        """Run the workload trace through the engine (idempotent).

        ``advance_to`` optionally pushes virtual time past the last tuple so
        trailing timers (timeouts, symmetric windows) fire.
        """
        if not self.fed:
            self.engine.run_trace(self.workload.trace)
            if advance_to is not None:
                self.engine.advance_time(advance_to)
            else:
                self.engine.flush()
            self.fed = True
        return self

    def rows(self) -> list[dict[str, Any]]:
        """Result rows: the handle's collected output, or — for queries that
        persist into a table (Example 2) — the table contents."""
        sink_table = getattr(self.handle, "sink_table", None)
        if self.handle._collector is None and sink_table is not None:
            return list(sink_table.scan())
        return self.handle.rows()

    @property
    def truth(self) -> Any:
        return self.workload.truth

    def __repr__(self) -> str:
        return f"Scenario({self.name}, fed={self.fed})"


# -- Example 1: duplicate elimination -----------------------------------------

DEDUP_QUERY = """
INSERT INTO cleaned_readings
SELECT * FROM readings AS r1
WHERE NOT EXISTS
  (SELECT * FROM TABLE( readings OVER
     (RANGE 1 SECONDS PRECEDING CURRENT)) AS r2
   WHERE r2.reader_id = r1.reader_id
     AND r2.tag_id = r1.tag_id)
"""


def build_dedup(
    workload: WorkloadResult, compile_expressions: bool = True
) -> Scenario:
    engine = Engine(compile_expressions=compile_expressions)
    engine.create_stream("readings", "reader_id str, tag_id str, read_time float")
    engine.create_stream(
        "cleaned_readings", "reader_id str, tag_id str, read_time float"
    )
    engine.query(DEDUP_QUERY, name="dedup")
    collector = engine.collect("cleaned_readings")
    handle = QueryHandle(engine, "dedup-out", None, collector)
    return Scenario(engine, handle, workload, "example1-dedup")


def build_dedup_sharded(
    workload: WorkloadResult,
    n_shards: int = 4,
    executor: str = "serial",
    compile_expressions: bool = True,
    codec: str = "framed",
    **engine_kwargs: Any,
) -> Scenario:
    """Example 1 dedup on a :class:`ShardedEngine`.

    The dedup predicate correlates only within one ``tag_id`` (the EXISTS
    window matches on the same reader *and* tag), so an explicit
    ``shard_by`` keys the stream even though the equality lives inside the
    sub-query where the analyzer cannot hoist it.
    """
    engine = ShardedEngine(
        n_shards=n_shards,
        executor=executor,
        shard_by={"readings": "tag_id"},
        compile_expressions=compile_expressions,
        codec=codec,
        **engine_kwargs,
    )
    engine.create_stream("readings", "reader_id str, tag_id str, read_time float")
    engine.create_stream(
        "cleaned_readings", "reader_id str, tag_id str, read_time float"
    )
    engine.query(DEDUP_QUERY, name="dedup")
    handle = engine.collect("cleaned_readings")
    return Scenario(engine, handle, workload, "example1-dedup-sharded")


# -- Example 2: location tracking ----------------------------------------------

LOCATION_QUERY = """
INSERT INTO object_movement
SELECT tid, loc, tagtime
FROM tag_locations WHERE NOT EXISTS
  (SELECT tagid FROM object_movement
   WHERE tagid = tid AND location = loc)
"""


def build_location(
    workload: WorkloadResult, compile_expressions: bool = True
) -> Scenario:
    engine = Engine(compile_expressions=compile_expressions)
    engine.create_stream(
        "tag_locations", "readerid str, tid str, tagtime float, loc str"
    )
    engine.create_table("object_movement", "tagid str, location str, start_time float")
    handle = engine.query(LOCATION_QUERY, name="location")
    return Scenario(engine, handle, workload, "example2-location")


# -- Example 3: EPC pattern aggregation -----------------------------------------

EPC_AGG_QUERY = """
SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
AND extract_serial(tid) > 5000
AND extract_serial(tid) < 9999
"""


def build_epc_aggregation(
    workload: WorkloadResult, compile_expressions: bool = True
) -> Scenario:
    engine = Engine(compile_expressions=compile_expressions)
    engine.create_stream("readings", "reader_id str, tid str, read_time float")
    handle = engine.query(EPC_AGG_QUERY, name="epc-agg")
    return Scenario(engine, handle, workload, "example3-epc")


# -- Example 4 / 7 / Figure 1: containment ----------------------------------------

CONTAINMENT_QUERY = """
SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
FROM R1, R2
WHERE SEQ(R1*, R2) MODE CHRONICLE
AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
"""

CONTAINMENT_PER_ITEM_QUERY = """
SELECT R1.tagid, R1.tagtime, R2.tagid, R2.tagtime
FROM R1, R2
WHERE SEQ(R1*, R2) MODE CHRONICLE
AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
"""


def build_containment(
    workload: WorkloadResult,
    per_item: bool = False,
    compile_expressions: bool = True,
) -> Scenario:
    engine = Engine(compile_expressions=compile_expressions)
    engine.create_stream("r1", "readerid str, tagid str, tagtime float")
    engine.create_stream("r2", "readerid str, tagid str, tagtime float")
    query = CONTAINMENT_PER_ITEM_QUERY if per_item else CONTAINMENT_QUERY
    handle = engine.query(query, name="containment")
    return Scenario(engine, handle, workload, "fig1-containment")


# -- Example 5: lab workflow exceptions --------------------------------------------

WORKFLOW_QUERY = """
SELECT A1.tagid, A2.tagid, A3.tagid
FROM A1, A2, A3
WHERE EXCEPTION_SEQ(A1, A2, A3)
OVER [1 HOURS FOLLOWING A1]
"""

WORKFLOW_CLEVEL_QUERY = """
SELECT A1.tagid, A2.tagid, A3.tagid
FROM A1, A2, A3
WHERE (CLEVEL_SEQ(A1, A2, A3)
OVER [1 HOURS FOLLOWING A1]) < 3
"""

# Example 5 with the per-sample equality chain made explicit.  The paper's
# verbatim query tracks one global automaton; this variant keys the
# automaton by tagid — the form that partitions cleanly across shards (the
# analyzer hoists the chain to partition_by exactly as in Example 6).
WORKFLOW_PARTITIONED_QUERY = """
SELECT A1.tagid, A2.tagid, A3.tagid
FROM A1, A2, A3
WHERE EXCEPTION_SEQ(A1, A2, A3)
OVER [1 HOURS FOLLOWING A1]
AND A1.tagid=A2.tagid AND A1.tagid=A3.tagid
"""


def build_lab_workflow(
    workload: WorkloadResult,
    use_clevel: bool = False,
    partitioned: bool = False,
    compile_expressions: bool = True,
    indexed_state: bool = True,
) -> Scenario:
    engine = Engine(
        compile_expressions=compile_expressions, indexed_state=indexed_state
    )
    for name in ("a1", "a2", "a3"):
        engine.create_stream(name, "tagid str, tagtime float")
    if use_clevel:
        query = WORKFLOW_CLEVEL_QUERY
    elif partitioned:
        query = WORKFLOW_PARTITIONED_QUERY
    else:
        query = WORKFLOW_QUERY
    handle = engine.query(query, name="workflow")
    return Scenario(engine, handle, workload, "example5-workflow")


def build_lab_workflow_sharded(
    workload: WorkloadResult,
    n_shards: int = 4,
    executor: str = "serial",
    compile_expressions: bool = True,
    codec: str = "framed",
    **engine_kwargs: Any,
) -> Scenario:
    """Example 5 on a :class:`ShardedEngine`, using the tagid-partitioned
    query variant.  Active-expiration timeouts fire on every shard via the
    broadcast clock, so timer-driven violations merge deterministically."""
    engine = ShardedEngine(
        n_shards=n_shards,
        executor=executor,
        compile_expressions=compile_expressions,
        codec=codec,
        **engine_kwargs,
    )
    for name in ("a1", "a2", "a3"):
        engine.create_stream(name, "tagid str, tagtime float")
    handle = engine.query(WORKFLOW_PARTITIONED_QUERY, name="workflow")
    return Scenario(engine, handle, workload, "example5-workflow-sharded")


# -- Example 6: four-step quality check ---------------------------------------------

QUALITY_QUERY = """
SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
FROM C1, C2, C3, C4
WHERE SEQ(C1, C2, C3, C4)
AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
AND C1.tagid=C4.tagid
"""


def quality_query_text(
    mode: str | None = "RECENT", window_minutes: float | None = None
) -> str:
    """Example 6's query text, optionally with MODE / the windowed variant."""
    query = QUALITY_QUERY
    if window_minutes is not None:
        query = query.replace(
            "WHERE SEQ(C1, C2, C3, C4)",
            f"WHERE SEQ(C1, C2, C3, C4) OVER [{window_minutes:g} MINUTES "
            "PRECEDING C4]",
        )
    if mode is not None:
        query = query.replace(
            "AND C1.tagid=C2.tagid",
            f"MODE {mode}\nAND C1.tagid=C2.tagid",
        )
    return query


def build_quality_check(
    workload: WorkloadResult,
    mode: str | None = "RECENT",
    window_minutes: float | None = None,
    compile_expressions: bool = True,
    indexed_state: bool = True,
) -> Scenario:
    """Example 6, optionally with MODE and the 30-minute window variant.

    The paper's verbatim query is UNRESTRICTED; RECENT is the optimized
    evaluation it recommends for this scenario, so it is the default here.
    """
    engine = Engine(
        compile_expressions=compile_expressions, indexed_state=indexed_state
    )
    for name in ("c1", "c2", "c3", "c4"):
        engine.create_stream(name, "readerid str, tagid str, tagtime float")
    handle = engine.query(quality_query_text(mode, window_minutes), name="quality")
    return Scenario(engine, handle, workload, "example6-quality")


def build_quality_check_sharded(
    workload: WorkloadResult,
    n_shards: int = 4,
    executor: str = "serial",
    mode: str | None = "RECENT",
    window_minutes: float | None = None,
    compile_expressions: bool = True,
    indexed_state: bool = True,
    batch_size: int = 2048,
    codec: str = "framed",
    **engine_kwargs: Any,
) -> Scenario:
    """Example 6 on a :class:`ShardedEngine`.

    The query's tagid equality chain is hoisted to a partition key by the
    analyzer, so every input stream hash-routes by tagid with no overrides.
    """
    engine = ShardedEngine(
        n_shards=n_shards,
        executor=executor,
        compile_expressions=compile_expressions,
        indexed_state=indexed_state,
        batch_size=batch_size,
        codec=codec,
        **engine_kwargs,
    )
    for name in ("c1", "c2", "c3", "c4"):
        engine.create_stream(name, "readerid str, tagid str, tagtime float")
    handle = engine.query(quality_query_text(mode, window_minutes), name="quality")
    return Scenario(engine, handle, workload, "example6-quality-sharded")


# -- Example 8: door security ----------------------------------------------------

DOOR_QUERY_PERSONS = """
SELECT person.tagid
FROM tag_readings AS person
WHERE person.tagtype = 'person' AND NOT EXISTS
  (SELECT * FROM tag_readings AS item
   OVER [1 MINUTES PRECEDING AND FOLLOWING person]
   WHERE item.tagtype = 'item')
"""

# The text of section 3.2 actually asks for the inverse alert — an *item*
# leaving with no person nearby is the potential theft.  Same construct,
# roles swapped:
DOOR_QUERY_THEFT = """
SELECT item.tagid
FROM tag_readings AS item
WHERE item.tagtype = 'item' AND NOT EXISTS
  (SELECT * FROM tag_readings AS person
   OVER [1 MINUTES PRECEDING AND FOLLOWING item]
   WHERE person.tagtype = 'person')
"""


def build_door(
    workload: WorkloadResult,
    theft_variant: bool = True,
    compile_expressions: bool = True,
) -> Scenario:
    engine = Engine(compile_expressions=compile_expressions)
    engine.create_stream("tag_readings", "tagid str, tagtype str, tagtime float")
    query = DOOR_QUERY_THEFT if theft_variant else DOOR_QUERY_PERSONS
    handle = engine.query(query, name="door")
    return Scenario(engine, handle, workload, "example8-door")
