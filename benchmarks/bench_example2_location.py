"""E2 — Example 2: location tracking (stream -> table updates).

Regenerates: correctness of the change-only persistence semantics (rows in
``object_movement`` == first visits in ground truth) and the write
suppression factor (readings vs persisted rows), plus insert throughput.

Expected shape: persisted rows exactly match ground truth; suppression
grows with reads-per-stay.
"""

from repro.bench import Accuracy, ResultTable
from repro.rfid import build_location, location_workload


def test_location_persistence_shape(table_printer):
    table = ResultTable(
        "E2  Example 2: location tracking",
        ["reads_per_stay", "stream_tuples", "table_rows", "suppression",
         "exact"],
    )
    for reads in (1, 3, 6, 12):
        workload = location_workload(
            n_tags=15, moves_per_tag=5, reads_per_stay=reads, seed=81
        )
        scenario = build_location(workload).feed()
        table_rows = list(scenario.engine.table("object_movement").scan())
        detected = {
            (r["tagid"], r["location"], r["start_time"]) for r in table_rows
        }
        accuracy = Accuracy.from_sets(detected, set(workload.truth))
        table.add(
            reads, len(workload.trace), len(table_rows),
            len(workload.trace) / max(len(table_rows), 1), accuracy.exact,
        )
        assert accuracy.exact
    table_printer(table)


def test_location_throughput(benchmark):
    workload = location_workload(n_tags=25, moves_per_tag=6, seed=82)

    def run():
        scenario = build_location(workload)
        scenario.feed()
        return len(scenario.engine.table("object_movement"))

    rows = benchmark(run)
    assert rows == len(workload.truth)
