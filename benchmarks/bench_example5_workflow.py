"""E5 — Example 5: lab workflow exception detection.

Regenerates: violation detection across injected violation mixes with
EXCEPTION_SEQ OVER [1 HOURS FOLLOWING A1]; confirms the CLEVEL_SEQ
formulation is equivalent (the paper asserts the two queries are the same);
and breaks detections down by exception reason.

Expected shape: alerts == injected violations at every rate; clean runs
raise nothing; the three violation kinds map to the three paper scenarios
(wrong extension / wrong start / window expiration).
"""

from repro.bench import ResultTable
from repro.core.operators import ExceptionReason
from repro.rfid import build_lab_workflow, lab_workflow_workload


def test_violation_detection_table(table_printer):
    table = ResultTable(
        "E5  Example 5: EXCEPTION_SEQ(A1,A2,A3) OVER [1 HOURS FOLLOWING A1]",
        ["violation_rate", "runs", "injected", "alerts", "wrong_tuple",
         "wrong_start", "expired", "exact"],
    )
    for rate in (0.0, 0.2, 0.5, 0.8):
        workload = lab_workflow_workload(
            n_runs=60, violation_rate=rate, seed=111
        )
        scenario = build_lab_workflow(workload).feed()
        outcomes = scenario.handle.operator.outcomes
        by_reason = {
            reason: sum(
                1 for o in outcomes
                if o.is_exception and o.reason is reason
            )
            for reason in ExceptionReason
        }
        alerts = len(scenario.rows())
        injected = workload.truth["violations"]
        table.add(
            rate, 60, injected, alerts,
            by_reason[ExceptionReason.WRONG_TUPLE],
            by_reason[ExceptionReason.WRONG_START],
            by_reason[ExceptionReason.WINDOW_EXPIRED],
            alerts == injected,
        )
        assert alerts == injected
    table_printer(table)


def test_clevel_equivalence():
    workload = lab_workflow_workload(n_runs=50, violation_rate=0.4, seed=112)
    via_exception = build_lab_workflow(workload).feed()
    # Rebuild the same workload for an independent engine.
    workload2 = lab_workflow_workload(n_runs=50, violation_rate=0.4, seed=112)
    via_clevel = build_lab_workflow(workload2, use_clevel=True).feed()
    assert len(via_exception.rows()) == len(via_clevel.rows())


def test_workflow_throughput(benchmark):
    workload = lab_workflow_workload(n_runs=150, violation_rate=0.3, seed=113)

    def run():
        scenario = build_lab_workflow(workload)
        scenario.feed()
        return len(scenario.rows())

    alerts = benchmark(run)
    assert alerts == workload.truth["violations"]
