"""SHARD — partition-sharded engine scaling on the Example 6 SEQ workload.

Regenerates: the throughput curve of :class:`repro.ShardedEngine` with the
process-backed parallel executor at 1/2/4/8 shards, against the single
:class:`repro.Engine` reference, on the four-step quality-check SEQ query
(hash-routed by the hoisted ``tagid`` equality chain).  Correctness is part
of the measurement: every arm's merged output must equal the single-engine
output row for row, or the runner raises.

Expected shape: speedup at 4 shards over 1 shard is >= 1.5x *when the host
has cores to scale onto*.  On a 1-core container the shards serialize onto
one CPU and the curve is flat-to-negative (dispatch overhead with nothing
to parallelize), so the scaling floor is asserted only when
``effective_cpu_count() >= 4`` — or unconditionally when
``REPRO_BENCH_REQUIRE_SCALING=1`` (set it in CI runs that guarantee
cores).  The report always records ``cpu_count`` in its meta so an
archived flat curve is self-explaining.

Writes ``BENCH_sharded_scaling.json`` to the repository root.
"""

import os

from repro.bench import (
    ResultTable,
    effective_cpu_count,
    run_sharded_scaling,
    scaling_speedup,
)

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_PRODUCTS = int(os.environ.get("REPRO_BENCH_SHARD_PRODUCTS", "400"))
MIN_SPEEDUP_AT_4 = 1.5


def _require_scaling() -> bool:
    override = os.environ.get("REPRO_BENCH_REQUIRE_SCALING")
    if override is not None:
        return override not in ("", "0")
    return effective_cpu_count() >= 4


def test_sharded_scaling_curve(table_printer):
    report = run_sharded_scaling(
        n_products=N_PRODUCTS,
        shard_counts=(1, 2, 4, 8),
        executor="parallel",
        reps=REPS,
    )
    report.meta["reps"] = REPS

    table = ResultTable(
        "SHARD  Example 6 SEQ across shards (parallel executor)",
        ["config", "shards", "tuples", "seconds", "tuples/s", "speedup"],
    )
    curve = next(
        entry for entry in report.experiments
        if entry.get("kind") == "scaling_curve"
    )
    for entry in report.experiments:
        if entry.get("kind") == "scaling_curve":
            continue
        shards = entry.get("shards", "-")
        speedup = scaling_speedup(report, shards) if shards != "-" else "-"
        table.add(
            entry["label"], shards, entry["n_tuples"], entry["seconds"],
            entry["throughput_tuples_per_s"],
            speedup if isinstance(speedup, str) else f"{speedup:.2f}x",
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # The curve must contain every arm and a sane baseline.
    assert [point["shards"] for point in curve["curve"]] == [1, 2, 4, 8]
    assert curve["baseline_shards"] == 1

    speedup_at_4 = scaling_speedup(report, 4)
    assert speedup_at_4 is not None
    if _require_scaling():
        assert speedup_at_4 >= MIN_SPEEDUP_AT_4, (
            f"expected >= {MIN_SPEEDUP_AT_4}x at 4 shards on a "
            f"{effective_cpu_count()}-CPU host, got {speedup_at_4:.2f}x"
        )
    else:
        print(
            f"\n(scaling floor skipped: {effective_cpu_count()} CPU(s) "
            f"available; measured {speedup_at_4:.2f}x at 4 shards)"
        )


def test_sharded_serial_matches_single():
    """The serial executor arm: pure determinism check, no scaling claim."""
    report = run_sharded_scaling(
        n_products=min(N_PRODUCTS, 120),
        shard_counts=(1, 2),
        executor="serial",
        reps=1,
    )
    # run_sharded_scaling raises if any arm diverges from the single
    # engine; reaching here means both shard counts matched row for row.
    assert scaling_speedup(report, 2) is not None
