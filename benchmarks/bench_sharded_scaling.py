"""SHARD — partition-sharded engine weak scaling on the Example 6 workload.

Regenerates: the weak-scaling report of :class:`repro.ShardedEngine` with
the process-backed parallel executor at 1/2/4/8 shards, against the single
:class:`repro.Engine` reference, on the four-step quality-check SEQ query
(hash-routed by the hoisted ``tagid`` equality chain).  Each arm feeds
``REPRO_BENCH_SHARD_PRODUCTS * n_shards`` products, so every arm has
enough tuples to amortize process hand-off — a fixed-size trace across 8
shards measures dispatch overhead, not scaling (the old report's
negative-scaling artifact).  Correctness is part of the measurement: every
arm's merged output must equal the single-engine output on the same
workload row for row, or the runner raises.

Expected shape: weak-scaling efficiency at 4 shards is >= 0.5 (seconds no
more than double while the workload quadruples) *when the host has cores
to scale onto*.  On a 1-core container the shards serialize onto one CPU;
those arms are tagged ``cpu_limited`` in the report and the efficiency
floor is asserted only when ``effective_cpu_count() >= 4`` — or
unconditionally when ``REPRO_BENCH_REQUIRE_SCALING=1`` (set it in CI runs
that guarantee cores).

Writes ``BENCH_sharded_scaling.json`` to the repository root.
"""

import os

from repro.bench import (
    ResultTable,
    effective_cpu_count,
    run_sharded_scaling,
    weak_efficiency,
)

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_PRODUCTS = int(os.environ.get("REPRO_BENCH_SHARD_PRODUCTS", "150"))
MIN_EFFICIENCY_AT_4 = 0.5
SHARD_COUNTS = (1, 2, 4, 8)


def _require_scaling() -> bool:
    override = os.environ.get("REPRO_BENCH_REQUIRE_SCALING")
    if override is not None:
        return override not in ("", "0")
    return effective_cpu_count() >= 4


def test_sharded_weak_scaling(table_printer):
    report = run_sharded_scaling(
        n_products=N_PRODUCTS,
        shard_counts=SHARD_COUNTS,
        executor="parallel",
        reps=REPS,
    )

    table = ResultTable(
        "SHARD  Example 6 SEQ weak scaling (parallel executor)",
        ["config", "shards", "tuples", "seconds", "tuples/s",
         "vs single", "efficiency"],
    )
    for entry in report.experiments:
        shards = entry.get("shards")
        speedup = entry.get("speedup_vs_single")
        efficiency = entry.get("weak_efficiency")
        label = entry["label"]
        if entry.get("cpu_limited"):
            label += " (cpu-limited)"
        table.add(
            label, shards if shards is not None else "-",
            entry["n_tuples"], entry["seconds"],
            entry["throughput_tuples_per_s"],
            f"{speedup:.2f}x" if speedup is not None else "-",
            f"{efficiency:.2f}" if efficiency is not None else "-",
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Report shape: weak-scaling mode, every sharded arm carries its
    # efficiency and a cpu_limited tag, and the workload actually grew.
    assert report.meta["scaling_mode"] == "weak"
    sharded = [e for e in report.experiments if "weak_efficiency" in e]
    assert [e["shards"] for e in sharded] == list(SHARD_COUNTS)
    assert all("cpu_limited" in e for e in sharded)
    tuples_by_shards = {e["shards"]: e["n_tuples"] for e in sharded}
    assert tuples_by_shards[8] > tuples_by_shards[1] * 4
    cpus = effective_cpu_count()
    for entry in sharded:
        assert entry["cpu_limited"] == (entry["shards"] > cpus)

    efficiency_at_4 = weak_efficiency(report, 4)
    assert efficiency_at_4 is not None
    if _require_scaling():
        assert efficiency_at_4 >= MIN_EFFICIENCY_AT_4, (
            f"expected >= {MIN_EFFICIENCY_AT_4} weak-scaling efficiency at "
            f"4 shards on a {cpus}-CPU host, got {efficiency_at_4:.2f}"
        )
    else:
        print(
            f"\n(efficiency floor skipped: {cpus} CPU(s) available; "
            f"measured {efficiency_at_4:.2f} at 4 shards)"
        )


def test_sharded_serial_matches_single():
    """The serial executor arm: pure determinism check, no scaling claim."""
    report = run_sharded_scaling(
        n_products=min(N_PRODUCTS, 60),
        shard_counts=(1, 2),
        executor="serial",
        reps=1,
    )
    # run_sharded_scaling raises if any arm diverges from the single
    # engine; reaching here means both shard counts matched row for row.
    assert weak_efficiency(report, 2) is not None
