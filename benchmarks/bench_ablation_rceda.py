"""A3 — ablation: ESL-EV vs the RCEDA-style graph event engine [23].

Regenerates: the paper's critique of the standalone event engine it builds
on — same detection quality, but "a simple graph-based processing model
[that] lacks optimization techniques": full instance histories, no
window-driven purging (only explicit sweeps).

Expected shape on the Figure 1 containment workload:

* both systems recover the exact ground truth (accuracy parity);
* RCEDA retains strictly more state than the CHRONICLE star operator at
  every scale, and its state grows with the trace while ESL-EV's does not.
"""

from repro.baselines import StarContainmentDetector
from repro.bench import ResultTable, containment_accuracy
from repro.dsms import Engine
from repro.rfid import build_containment, packing_workload


def run_rceda(workload):
    engine = Engine()
    engine.create_stream("r1", "readerid str, tagid str, tagtime float")
    engine.create_stream("r2", "readerid str, tagid str, tagtime float")
    detector = StarContainmentDetector(
        engine, "r1", "r2", intra_gap=1.0, case_delay=5.0
    )
    engine.run_trace(workload.trace)
    return detector


def test_accuracy_parity_and_state_table(table_printer):
    table = ResultTable(
        "A3  ESL-EV star SEQ vs RCEDA graph engine (Fig 1 workload)",
        ["cases", "tuples", "eslev_exact", "rceda_exact", "eslev_state",
         "rceda_state", "state_ratio"],
    )
    eslev_states = {}
    rceda_states = {}
    for n_cases in (20, 60, 120):
        workload = packing_workload(n_cases=n_cases, seed=181)
        scenario = build_containment(workload).feed()
        eslev_counts = {
            row["tagid"]: row["count_R1"] for row in scenario.rows()
        }
        eslev_exact = eslev_counts == {
            case: len(items) for case, items in workload.truth.items()
        }

        detector = run_rceda(
            packing_workload(n_cases=n_cases, seed=181)
        )
        rceda_pairs = [(case, items) for case, items in detector.results]
        rceda_exact = containment_accuracy(rceda_pairs, workload.truth).exact

        eslev_state = scenario.handle.operator.state_size
        rceda_state = detector.state_size
        eslev_states[n_cases] = eslev_state
        rceda_states[n_cases] = rceda_state
        table.add(
            n_cases, len(workload.trace), eslev_exact, rceda_exact,
            eslev_state, rceda_state,
            rceda_state / max(eslev_state, 1),
        )
        assert eslev_exact and rceda_exact
        assert rceda_state > eslev_state
    table_printer(table)
    # RCEDA state grows with the trace; ESL-EV stays bounded.
    assert rceda_states[120] > 3 * rceda_states[20]
    assert eslev_states[120] <= eslev_states[20] + 10


def test_eslev_containment_throughput(benchmark):
    workload = packing_workload(n_cases=80, seed=182)

    def run():
        scenario = build_containment(workload)
        scenario.feed()
        return len(scenario.rows())

    benchmark(run)


def test_rceda_containment_throughput(benchmark):
    workload = packing_workload(n_cases=80, seed=182)

    def run():
        detector = run_rceda(workload)
        return len(detector.results)

    benchmark(run)
