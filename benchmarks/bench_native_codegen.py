"""NATIVE — C admission kernels vs the closure and interpreted tiers.

Regenerates: the three-arm ablation of
:func:`repro.bench.run_native_codegen`.  All arms consume the *same*
pre-built ``ColumnBatch`` streams; the only difference is the Engine's
tier flags.  The native arm runs with ``vectorized_admission`` off so
the measured gap is C kernel vs Python closure, not a mix of tiers.
Correctness is part of the measurement: every arm must produce
byte-identical output (values, timestamps, order) or the runner raises.

Three workloads:

* the uniform-pressure filter selectivity sweep (mirrors
  ``BENCH_vectorized_admission`` so the native and vector tiers are
  directly comparable),
* the quality SEQ pairing workload (lenient masks feeding a temporal
  operator — admission is only part of the work, so the gap narrows),
* the paper's Example 1 dedup query, whose NOT EXISTS subquery cannot
  lower to C — this arm pins the fallback chain at closure parity.

The speedup floor self-gates: it is only asserted when a C compiler is
present (otherwise the native arm legitimately degrades to the closure
tier) and the host has more than one effective CPU (``cpu_limited``
runs are recorded but not gated — a shared single core makes best-of
timings too noisy for a hard floor).

Writes ``BENCH_native_codegen.json`` to the repository root.
"""

import os

from repro.bench import ResultTable, native_speedup, run_native_codegen

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_ROWS = int(os.environ.get("REPRO_BENCH_ADMISSION_ROWS", "100000"))
SELECTIVITIES = (0.01, 0.10, 0.50)
MIN_NATIVE_VS_CLOSURE = 1.5


def test_native_codegen_ablation(table_printer):
    report = run_native_codegen(
        n_rows=N_ROWS,
        selectivities=SELECTIVITIES,
        reps=REPS,
    )

    table = ResultTable(
        "NATIVE  codegen tier ablation (filter sweep / SEQ / dedup)",
        ["config", "workload", "tuples", "seconds", "tuples/s",
         "admitted", "kernels"],
    )
    for entry in report.experiments:
        params = entry["params"]
        workload = params["workload"]
        if "selectivity" in params:
            workload = f"filter {params['selectivity'] * 100:g}%"
        native = entry.get("native") or {}
        table.add(
            entry["label"],
            workload,
            entry["n_tuples"],
            entry["seconds"],
            entry["throughput_tuples_per_s"],
            entry["rows_admitted"],
            native.get("active_kernels", 0),
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Uniform meta: the report says what it ran on and at which tier.
    assert report.meta["effective_cpu_count"] >= 1
    assert report.meta["execution_tier"] in ("native", "closure")

    # Report shape: every arm ran every workload, and the admitted
    # fraction of the filter sweep tracks the selectivity.  Reaching
    # here at all means every arm produced byte-identical output.
    for threshold in SELECTIVITIES:
        pct = f"{threshold * 100:g}pct"
        for arm in ("interpreted", "closure", "native"):
            (entry,) = [
                e for e in report.experiments
                if e["label"] == f"{arm}-{pct}"
            ]
            admitted = entry["rows_admitted"]
            assert abs(admitted / entry["n_tuples"] - threshold) < 0.02
    for suffix in ("seq", "dedup"):
        labels = {e["label"] for e in report.experiments}
        for arm in ("interpreted", "closure", "native"):
            assert f"{arm}-{suffix}" in labels

    # With a compiler present the native filter arms must actually have
    # run kernels (the dedup arm must NOT have: its predicate is a
    # subquery and stays on the closure path by design).
    has_compiler = report.meta["compiler"] is not None
    if has_compiler:
        for threshold in SELECTIVITIES:
            pct = f"{threshold * 100:g}pct"
            (entry,) = [
                e for e in report.experiments
                if e["label"] == f"native-{pct}"
            ]
            assert entry["native"]["masked_batches"] > 0
        (dedup,) = [
            e for e in report.experiments if e["label"] == "native-dedup"
        ]
        assert dedup["native"]["active_kernels"] == 0

    # The headline claim: native kernels >= 1.5x over the compiled
    # Python closure at 1% selectivity.  Self-gated on compiler
    # presence and on having a whole CPU to time on.
    speedup = native_speedup(report, min(SELECTIVITIES))
    assert speedup is not None
    if has_compiler and not report.meta["cpu_limited"]:
        assert speedup >= MIN_NATIVE_VS_CLOSURE, (
            f"expected native kernels >= {MIN_NATIVE_VS_CLOSURE}x over "
            f"the closure tier at {min(SELECTIVITIES):.0%} selectivity, "
            f"got {speedup:.2f}x"
        )
