"""A4 — ablation: Active Expiration (section 3.1.3).

Regenerates: the requirement that "window expiration has to be detected
without any new tuple arrivals".  We measure the *detection lag* of
EXCEPTION_SEQ timeouts as a function of the heartbeat period: with
tuple-driven evaluation only (no heartbeats until end of stream), a
timeout on a quiet stream is detected arbitrarily late; with heartbeats,
the lag is bounded by the heartbeat period.

Expected shape: detection lag ~ heartbeat period; the no-heartbeat row
shows the pathological lag the paper's Active Expiration exists to avoid.
"""

from repro.bench import ResultTable
from repro.core.operators import (
    ExceptionSeqOperator,
    OperatorWindow,
    SeqArg,
)
from repro.dsms import Engine

DEADLINE = 100.0     # the FOLLOWING window on stage 0
QUIET_UNTIL = 5000.0  # next tuple-driven activity after the lone start


def run_with_heartbeat(period: float | None) -> float:
    """Return the detection lag of a timeout on a quiet stream."""
    engine = Engine()
    engine.create_stream("a", "tagid str, tagtime float")
    engine.create_stream("b", "tagid str, tagtime float")
    detected_at: list[float] = []

    def record(outcome) -> None:
        if outcome.is_exception:
            # The moment the *system* learns of the violation is the virtual
            # time of the advance that fired the timer — not the deadline
            # label the outcome carries.
            detected_at.append(engine.clock.now)

    op = ExceptionSeqOperator(
        engine,
        [SeqArg("a"), SeqArg("b")],
        window=OperatorWindow(DEADLINE, 0, "following"),
        on_outcome=record,
    )
    engine.push("a", {"tagid": "x", "tagtime": 0.0}, ts=0.0)
    if period is None:
        # No heartbeats: nothing happens until the next real tuple.
        engine.push("b", {"tagid": "late", "tagtime": QUIET_UNTIL},
                    ts=QUIET_UNTIL)
    else:
        t = 0.0
        while t < QUIET_UNTIL and not detected_at:
            t += period
            engine.advance_time(t)
    assert detected_at, "timeout must eventually be detected"
    assert op.exceptions_emitted >= 1
    return detected_at[0] - DEADLINE


def test_detection_lag_table(table_printer):
    table = ResultTable(
        "A4  Active Expiration: timeout detection lag vs heartbeat period",
        ["heartbeat_s", "deadline_s", "detected_lag_s"],
    )
    lags = {}
    for period in (1.0, 10.0, 60.0, None):
        lag = run_with_heartbeat(period)
        label = "none (tuple-driven)" if period is None else period
        table.add(label, DEADLINE, lag)
        lags[period] = lag
    table_printer(table)
    # With heartbeats, the lag is bounded by the heartbeat period...
    assert lags[1.0] <= 1.0
    assert lags[10.0] <= 10.0
    assert lags[60.0] <= 60.0
    # ...whereas with no heartbeat the lag is the whole quiet period.
    assert lags[None] == QUIET_UNTIL - DEADLINE


def test_timer_load(benchmark):
    """Cost of arming/cancelling one timer per sequence instance."""

    def run():
        engine = Engine()
        engine.create_stream("a", "tagid str, tagtime float")
        engine.create_stream("b", "tagid str, tagtime float")
        op = ExceptionSeqOperator(
            engine,
            [SeqArg("a"), SeqArg("b")],
            window=OperatorWindow(10.0, 0, "following"),
            partition_by=lambda t: t["tagid"],
        )
        for i in range(500):
            t = float(i)
            engine.push("a", {"tagid": f"k{i}", "tagtime": t}, ts=t)
            engine.push("b", {"tagid": f"k{i}", "tagtime": t + 0.5},
                        ts=t + 0.5)
        return op.completions_emitted

    completions = benchmark(run)
    assert completions == 500
