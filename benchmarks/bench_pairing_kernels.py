"""PAIRING — mask tiers on the SEQ match-enumeration hot path.

Regenerates: the four-arm ablation of
:func:`repro.bench.run_pairing_kernels` on the dense re-read
quality-SEQ workload.  All arms consume the *same* pre-built
``ColumnBatch`` streams through the same windowed SEQ query; only the
Engine's tier flags differ:

* ``interpreted`` — tree-walking guard, the byte-identity reference,
* ``scalar`` — compiled closures, one pairing check per candidate (the
  pre-mask hot path),
* ``vector`` — per-anchor columnar masks over each partition's history
  mirror (Python lists),
* ``native`` — two-operand C pairing kernels over the mirror's packed
  buffers, vector tier off so the gap is kernel vs scalar.

The query hash-partitions on the tag equality, leaving ``Y.w - X.v >
threshold`` as the only cross conjunct — deliberately not hoistable to
admission, so every arm pays for it at match-enumeration time.  Masks
only prune: survivors re-run the scalar pairing check, and every arm
must produce byte-identical output (values, timestamps, order) or the
runner raises.

The speedup floors self-gate the way ``bench_native_codegen`` does:
the native floor needs a C compiler present, and both floors need more
than one effective CPU (``cpu_limited`` runs are recorded but not
gated — a shared single core makes best-of timings too noisy for a
hard floor).

Writes ``BENCH_pairing_kernels.json`` to the repository root.
"""

import os

from repro.bench import ResultTable, pairing_speedup, run_pairing_kernels

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_ROWS = int(os.environ.get("REPRO_BENCH_PAIRING_ROWS", "20000"))
MIN_VECTOR_VS_SCALAR = 2.0
MIN_NATIVE_VS_SCALAR = 2.0


def test_pairing_kernels_ablation(table_printer):
    report = run_pairing_kernels(n_rows=N_ROWS, reps=REPS)

    table = ResultTable(
        "PAIRING  mask tier ablation (dense re-read quality SEQ)",
        ["config", "tuples", "seconds", "tuples/s", "matches",
         "masked windows", "masked rows"],
    )
    for entry in report.experiments:
        native = entry.get("native") or {}
        table.add(
            entry["label"],
            entry["n_tuples"],
            entry["seconds"],
            entry["throughput_tuples_per_s"],
            entry["rows_admitted"],
            native.get("pairing_masked_windows", 0),
            native.get("pairing_masked_rows", 0),
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Uniform meta: both the admission and the pairing tier are recorded.
    assert report.meta["effective_cpu_count"] >= 1
    assert report.meta["execution_tier"] in ("native", "vector", "closure")
    assert report.meta["pairing_tier"] in ("native", "closure")

    # Report shape: every arm ran, with identical match counts (reaching
    # here at all means byte-identical output — the runner raises on
    # divergence, this re-checks the recorded counts).
    labels = {e["label"] for e in report.experiments}
    assert labels == {
        f"{arm}-pairing"
        for arm in ("interpreted", "scalar", "vector", "native")
    }
    counts = {e["rows_admitted"] for e in report.experiments}
    assert len(counts) == 1 and counts.pop() > 0

    # With a compiler present the native arm must actually have consulted
    # pairing kernels inside the run.
    has_compiler = report.meta["compiler"] is not None
    if has_compiler:
        (native_entry,) = [
            e for e in report.experiments if e["label"] == "native-pairing"
        ]
        assert native_entry["native"]["pairing_masked_windows"] > 0
        assert native_entry["native"]["pairing_masked_rows"] > 0

    # The headline claim: columnar pairing masks >= 2x over the scalar
    # per-candidate loop on the dense workload; the C kernels at least
    # match that floor.  Self-gated as described in the module docstring.
    vector = pairing_speedup(report, "vector")
    native = pairing_speedup(report, "native")
    assert vector is not None and native is not None
    if not report.meta["cpu_limited"]:
        assert vector >= MIN_VECTOR_VS_SCALAR, (
            f"expected vectorized pairing >= {MIN_VECTOR_VS_SCALAR}x over "
            f"scalar, got {vector:.2f}x"
        )
        if has_compiler:
            assert native >= MIN_NATIVE_VS_SCALAR, (
                f"expected native pairing kernels >= "
                f"{MIN_NATIVE_VS_SCALAR}x over scalar, got {native:.2f}x"
            )
