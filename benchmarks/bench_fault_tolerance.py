"""FAULT — checkpoint overhead and crash-recovery latency.

Regenerates: the fault-tolerance measurement of
:func:`repro.bench.run_fault_tolerance` on the Example 6 quality-check
workload, hash-sharded over persistent pipe workers.

Two claims, one trace:

* **Protection is cheap when idle.**  ``fault_tolerance="restart"``
  without checkpoints (replay logging only) must cost within noise of the
  ``fail_fast`` hot path, and the relaxed 10 s checkpoint cadence must
  stay under 15% overhead — asserted only on hosts with cores for the
  router and workers to overlap (``effective_cpu_count() >= n_shards +
  1``); on smaller hosts every checkpoint drain stalls an already
  serialized pipeline and the run is tagged ``cpu_limited``.  Set
  ``REPRO_BENCH_REQUIRE_OVERHEAD=1`` to assert regardless.

* **Recovery is bounded and exact.**  A ``FaultPlan`` SIGTERMs one worker
  mid-trace; the supervisor respawns it, restores the latest checkpoint
  (or replays from the trace start in the no-checkpoint arm), replays the
  post-checkpoint log, and the merged rows must equal the single-engine
  reference exactly — correctness is part of the measurement, the runner
  raises on divergence.  Restoring a checkpoint must not replay more than
  the no-checkpoint arm does; its recovery latency is reported alongside.

Writes ``BENCH_fault_tolerance.json`` to the repository root.
"""

import os

from repro.bench import (
    ResultTable,
    checkpoint_overhead,
    effective_cpu_count,
    run_fault_tolerance,
)

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_PRODUCTS = int(os.environ.get("REPRO_BENCH_FAULT_PRODUCTS", "1500"))
N_SHARDS = 2
CHECKPOINT_INTERVALS = (1.0, 10.0)
MAX_OVERHEAD_RELAXED = 0.15


def _require_overhead() -> bool:
    override = os.environ.get("REPRO_BENCH_REQUIRE_OVERHEAD")
    if override is not None:
        return override not in ("", "0")
    return effective_cpu_count() >= N_SHARDS + 1


def test_fault_tolerance(table_printer):
    report = run_fault_tolerance(
        n_products=N_PRODUCTS,
        n_shards=N_SHARDS,
        checkpoint_intervals=CHECKPOINT_INTERVALS,
        reps=REPS,
    )

    table = ResultTable(
        "FAULT  checkpoint overhead and crash recovery (Example 6)",
        ["config", "tuples", "seconds", "tuples/s", "ckpts",
         "overhead", "recoveries", "latency ms"],
    )
    for entry in report.experiments:
        label = entry["label"]
        if entry.get("cpu_limited"):
            label += " (cpu-limited)"
        overhead = entry.get("overhead_vs_fail_fast")
        latency = entry.get("recovery_latency_s")
        table.add(
            label, entry["n_tuples"], entry["seconds"],
            entry["throughput_tuples_per_s"],
            entry.get("checkpoints", "-"),
            f"{overhead * 100:+.1f}%" if overhead is not None else "-",
            entry.get("recoveries", "-"),
            f"{latency * 1000:.1f}" if latency is not None else "-",
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Shape: the checkpoint cadence followed the normalized stream clock
    # (reaching here at all means every arm, faulted or not, matched the
    # single-engine reference row for row).
    by_label = {e["label"]: e for e in report.experiments}
    assert by_label["overhead-fail-fast"]["checkpoints"] == 0
    assert by_label["overhead-ft-off"]["checkpoints"] == 0
    tight = by_label[f"overhead-ft-{CHECKPOINT_INTERVALS[0]:g}s"]
    relaxed = by_label[f"overhead-ft-{CHECKPOINT_INTERVALS[-1]:g}s"]
    assert tight["checkpoints"] > relaxed["checkpoints"] >= 3

    # Every recovery arm actually recovered, with a measured latency.
    for label in ("recovery-replay-from-start",
                  f"recovery-restore-{CHECKPOINT_INTERVALS[-1]:g}s"):
        entry = by_label[label]
        assert entry["recoveries"] >= REPS
        assert entry["recovery_latency_s"] > 0.0

    overhead = checkpoint_overhead(report, CHECKPOINT_INTERVALS[-1])
    assert overhead is not None
    if _require_overhead():
        assert overhead <= MAX_OVERHEAD_RELAXED, (
            f"expected <= {MAX_OVERHEAD_RELAXED:.0%} overhead at a "
            f"{CHECKPOINT_INTERVALS[-1]:g}s checkpoint cadence on a "
            f"{effective_cpu_count()}-CPU host, got {overhead:.1%}"
        )
