"""A2 — ablation: SEQ vs the join-based baseline (footnote 3).

Regenerates: the cost argument for native temporal operators.  The join
formulation examines history-product many candidates per arrival, where
SEQ's greedy modes do near-constant work; and the join needs unbounded
history unless the author adds a window by hand.

Expected shape:

* identical output between UNRESTRICTED SEQ and the join baseline (same
  retention) — the equivalence that makes the comparison fair;
* join probe count grows super-linearly with trace length; RECENT SEQ
  match attempts stay linear;
* wall-clock: RECENT SEQ beats the unbounded join increasingly with n.
"""

import time

from repro.baselines import JoinSequenceBaseline
from repro.bench import ResultTable
from repro.core.operators import PairingMode, SeqArg, make_sequence_operator
from repro.dsms import Engine
from repro.rfid import uniform_sequence_workload

STREAMS = ["s0", "s1", "s2"]


def build_engine():
    engine = Engine()
    for name in STREAMS:
        engine.create_stream(name, "tagid str, tagtime float")
    return engine


def run_seq(workload, mode):
    engine = build_engine()
    op = make_sequence_operator(
        engine, [SeqArg(s) for s in STREAMS], mode=mode, store_matches=False
    )
    started = time.perf_counter()
    engine.run_trace(workload.trace)
    elapsed = time.perf_counter() - started
    return op, elapsed


def run_join(workload, retention=None):
    engine = build_engine()
    baseline = JoinSequenceBaseline(
        engine, STREAMS, retention=retention, store_matches=False
    )
    started = time.perf_counter()
    engine.run_trace(workload.trace)
    elapsed = time.perf_counter() - started
    return baseline, elapsed


def test_equivalence_and_cost_table(table_printer):
    table = ResultTable(
        "A2  SEQ vs n-way join (3 streams, random trace)",
        ["tuples", "matches", "join_probes", "join_ms", "seq_recent_ms",
         "speedup"],
    )
    probes = {}
    for n_tuples in (100, 200, 400):
        workload = uniform_sequence_workload(
            n_streams=3, n_tuples=n_tuples, seed=171
        )
        seq_op, __ = run_seq(workload, PairingMode.UNRESTRICTED)
        join, join_s = run_join(workload)
        assert seq_op.matches_emitted == join.matches_emitted
        recent_op, recent_s = run_seq(workload, PairingMode.RECENT)
        probes[n_tuples] = join.join_probes
        table.add(
            n_tuples, join.matches_emitted, join.join_probes,
            join_s * 1000, recent_s * 1000,
            join_s / recent_s if recent_s else float("inf"),
        )
    table_printer(table)
    # Super-linear probe growth: 4x tuples -> far more than 4x probes.
    assert probes[400] > 8 * probes[100]


def test_windowed_join_still_heavier(table_printer):
    table = ResultTable(
        "A2b  Join with explicit retention window vs RECENT SEQ",
        ["retention_s", "join_probes", "join_state", "recent_state"],
    )
    workload = uniform_sequence_workload(n_streams=3, n_tuples=600, seed=172)
    recent_op, __ = run_seq(workload, PairingMode.RECENT)
    for retention in (10.0, 60.0, 300.0):
        join, __ = run_join(workload, retention=retention)
        table.add(retention, join.join_probes, join.state_size,
                  recent_op.state_size)
        assert recent_op.state_size < max(join.state_size, 10)
    table_printer(table)


def test_join_throughput(benchmark):
    workload = uniform_sequence_workload(n_streams=3, n_tuples=400, seed=173)

    def run():
        baseline, __ = run_join(workload, retention=60.0)
        return baseline.matches_emitted

    benchmark(run)


def test_seq_recent_throughput(benchmark):
    workload = uniform_sequence_workload(n_streams=3, n_tuples=400, seed=173)

    def run():
        op, __ = run_seq(workload, PairingMode.RECENT)
        return op.matches_emitted

    benchmark(run)
