"""A1 — ablation: tuple-history state per pairing mode.

Regenerates: the paper's optimization argument for Tuple Pairing Modes
(section 3.1.1): "RECENT allows aggressive purge of tuple history",
"CHRONICLE ... participating tuples can be removed", "CONSECUTIVE ...
tuple history can be safely purged", while UNRESTRICTED must retain
everything a window admits.

Expected shape, on a shared random trace, measured as retained tuples:

* CONSECUTIVE: O(n) — at most one partial run;
* RECENT: small frontier, independent of trace length;
* CHRONICLE: bounded by unconsumed tuples;
* UNRESTRICTED (no window): grows linearly with the trace;
* UNRESTRICTED (with window): bounded by window content.
"""

from repro.bench import ResultTable
from repro.core.operators import (
    OperatorWindow,
    PairingMode,
    SeqArg,
    make_sequence_operator,
)
from repro.dsms import Engine
from repro.rfid import uniform_sequence_workload


def measure_state(mode, n_tuples, window=None, seed=161):
    """State after a long per-tag trace (the realistic RFID shape: state is
    partitioned by tag id, as the compiler's hoisting would arrange)."""
    engine = Engine()
    for index in range(3):
        engine.create_stream(f"s{index}", "tagid str, tagtime float")
    op = make_sequence_operator(
        engine, [SeqArg(f"s{i}") for i in range(3)], mode=mode, window=window,
        partition_by=lambda tup: tup["tagid"],
    )
    workload = uniform_sequence_workload(
        n_streams=3, n_tuples=n_tuples, mean_gap=1.0, n_tags=10, seed=seed
    )
    engine.run_trace(workload.trace)
    return op.state_size


def test_state_growth_table(table_printer):
    table = ResultTable(
        "A1  Retained tuples per pairing mode (3-stream random trace)",
        ["tuples", "unrestricted", "unrestricted+60s_win", "recent",
         "chronicle", "consecutive"],
    )
    rows = {}
    for n_tuples in (200, 500, 1000, 2000):
        window = OperatorWindow(60.0, 2, "preceding")
        rows[n_tuples] = {
            "unrestricted": measure_state(PairingMode.UNRESTRICTED, n_tuples),
            "windowed": measure_state(
                PairingMode.UNRESTRICTED, n_tuples, window=window
            ),
            "recent": measure_state(PairingMode.RECENT, n_tuples),
            "chronicle": measure_state(PairingMode.CHRONICLE, n_tuples),
            "consecutive": measure_state(PairingMode.CONSECUTIVE, n_tuples),
        }
        table.add(n_tuples, *rows[n_tuples].values())
    table_printer(table)

    small, large = rows[200], rows[2000]
    # UNRESTRICTED grows ~linearly with the trace...
    assert large["unrestricted"] >= 5 * small["unrestricted"]
    # ...while RECENT stays a bounded frontier (per partition)...
    assert large["recent"] <= small["recent"] + 30
    # ...CONSECUTIVE holds at most one partial run per partition...
    assert large["consecutive"] <= 20
    # ...and a window bounds even UNRESTRICTED.
    assert large["windowed"] <= 1.5 * small["windowed"] + 150
    # Mode ordering at scale.
    assert large["consecutive"] <= large["recent"] + 20
    assert large["recent"] <= large["unrestricted"]


def test_recent_state_benchmark(benchmark):
    def run():
        return measure_state(PairingMode.RECENT, 1000)

    state = benchmark(run)
    assert state <= 40  # bounded frontier: a few tuples per partition
