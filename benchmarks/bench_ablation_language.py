"""A5 — ablation: compiled ESL-EV vs. direct operator API.

Regenerates: the cost of the language layer.  The same Figure 1
containment detection runs three ways — verbatim ESL-EV text, the operator
API with an equivalent Python guard, and the operator API with hoisted
``max_gap`` (what the compiler produces for the `previous` constraint).

Expected shape: identical detections in all three; the compiled query's
per-tuple overhead stays within a small factor of the hand-built operator
(the compiler wires the same runtime; the extra cost is guard expressions
interpreted per extension).
"""

import time

from repro.bench import ResultTable
from repro.core.operators import PairingMode, SeqArg, make_sequence_operator
from repro.dsms import Engine
from repro.rfid import CONTAINMENT_QUERY, packing_workload


def run_sql(workload):
    engine = Engine()
    engine.create_stream("r1", "readerid str, tagid str, tagtime float")
    engine.create_stream("r2", "readerid str, tagid str, tagtime float")
    handle = engine.query(CONTAINMENT_QUERY)
    started = time.perf_counter()
    engine.run_trace(workload.trace)
    elapsed = time.perf_counter() - started
    return len(handle.rows()), elapsed


def run_operator(workload, hoisted_gap: bool):
    engine = Engine()
    engine.create_stream("r1", "readerid str, tagid str, tagtime float")
    engine.create_stream("r2", "readerid str, tagid str, tagtime float")

    def guard(bindings):
        run = bindings.get("r1")
        case = bindings.get("r2")
        if isinstance(run, list) and run and case is not None and not isinstance(
            case, list
        ):
            if case["tagtime"] - run[-1]["tagtime"] > 5.0:
                return False
        if not hoisted_gap and isinstance(run, list) and len(run) >= 2:
            if run[-1]["tagtime"] - run[-2]["tagtime"] > 1.0:
                return False
        return True

    args = [
        SeqArg("r1", starred=True, max_gap=1.0 if hoisted_gap else None),
        SeqArg("r2"),
    ]
    operator = make_sequence_operator(
        engine, args, mode=PairingMode.CHRONICLE, guard=guard
    )
    started = time.perf_counter()
    engine.run_trace(workload.trace)
    elapsed = time.perf_counter() - started
    return operator.matches_emitted, elapsed


def test_language_overhead_table(table_printer):
    table = ResultTable(
        "A5  Language overhead: compiled ESL-EV vs direct operator API",
        ["cases", "sql_detections", "api_detections", "sql_ms", "api_ms",
         "overhead"],
    )
    for n_cases in (20, 60, 120):
        workload = packing_workload(n_cases=n_cases, seed=191)
        sql_count, sql_s = run_sql(workload)
        api_count, api_s = run_operator(workload, hoisted_gap=True)
        assert sql_count == api_count == n_cases
        table.add(
            n_cases, sql_count, api_count, sql_s * 1000, api_s * 1000,
            sql_s / api_s if api_s else float("inf"),
        )
    table_printer(table)


def test_guard_vs_hoisted_gap_equivalent():
    """The compiler's gap hoisting is behaviour-preserving: checking the
    `previous` constraint inside the guard finds the same containment."""
    workload = packing_workload(n_cases=40, seed=192)
    hoisted_count, __ = run_operator(workload, hoisted_gap=True)
    guarded_count, __ = run_operator(workload, hoisted_gap=False)
    assert hoisted_count == guarded_count == 40


def test_sql_containment_benchmark(benchmark):
    workload = packing_workload(n_cases=40, seed=193)

    def run():
        count, __ = run_sql(workload)
        return count

    assert benchmark(run) == 40


def test_api_containment_benchmark(benchmark):
    workload = packing_workload(n_cases=40, seed=193)

    def run():
        count, __ = run_operator(workload, hoisted_gap=True)
        return count

    assert benchmark(run) == 40
