"""E8 — Example 8: symmetric PRECEDING-AND-FOLLOWING windows.

Regenerates: theft-alert accuracy across theft rates and window widths
(tau), for both the text-faithful variant (items without an escort) and
the paper's literal query (persons without items), plus decision latency —
alerts must fire exactly tau after the item reading, driven by timers.

Expected shape: exact detection at every rate; every alert's decision time
is item_time + tau.
"""

from repro.bench import Accuracy, ResultTable
from repro.rfid import build_door, door_workload


def test_theft_detection_table(table_printer):
    table = ResultTable(
        "E8  Example 8: NOT EXISTS over [1 MIN PRECEDING AND FOLLOWING]",
        ["theft_rate", "events", "true_thefts", "alerts", "precision",
         "recall"],
    )
    for rate in (0.05, 0.2, 0.5):
        workload = door_workload(n_events=80, theft_rate=rate, seed=151)
        scenario = build_door(workload).feed(
            advance_to=workload.truth["horizon"]
        )
        detected = {row["tagid"] for row in scenario.rows()}
        accuracy = Accuracy.from_sets(detected, set(workload.truth["thefts"]))
        table.add(rate, 80, len(workload.truth["thefts"]), len(detected),
                  accuracy.precision, accuracy.recall)
        assert accuracy.exact
    table_printer(table)


def test_literal_paper_variant():
    workload = door_workload(n_events=60, seed=152)
    scenario = build_door(workload, theft_variant=False).feed(
        advance_to=workload.truth["horizon"]
    )
    detected = {row["tagid"] for row in scenario.rows()}
    assert detected == set(workload.truth["lone_persons"])


def test_decision_latency_is_tau():
    """Alerts fire exactly at item_time + tau (the FOLLOWING half-width)."""
    workload = door_workload(n_events=40, tau=60.0, seed=153)
    scenario = build_door(workload).feed(advance_to=workload.truth["horizon"])
    item_times = {
        row["tagid"]: ts
        for __, row, ts in workload.trace
        if row["tagtype"] == "item"
    }
    for tup in scenario.handle.results:
        assert tup.ts == item_times[tup["tagid"]] + 60.0


def test_door_throughput(benchmark):
    workload = door_workload(n_events=150, seed=154)

    def run():
        scenario = build_door(workload)
        scenario.feed(advance_to=workload.truth["horizon"])
        return len(scenario.rows())

    alerts = benchmark(run)
    assert alerts == len(workload.truth["thefts"])
