"""E7 — Example 7: star-sequence aggregates and per-tuple return.

Regenerates: FIRST/LAST/COUNT correctness on the containment query across
case sizes, the per-tuple (multi-return) row counts of footnote 4, and the
cost of per-tuple vs aggregated output.

Expected shape: COUNT(R1*) == |case| for every case; the per-tuple variant
emits exactly sum(|case|) rows; aggregated output is cheaper than
per-tuple on large cases.
"""

from collections import defaultdict

from repro.bench import ResultTable
from repro.rfid import build_containment, packing_workload


def test_star_aggregate_correctness(table_printer):
    table = ResultTable(
        "E7  Example 7: FIRST/LAST/COUNT over star runs",
        ["cases", "items_total", "count_ok", "first_ok", "last_ok"],
    )
    for n_cases in (10, 30, 60):
        workload = packing_workload(
            n_cases=n_cases, products_per_case=(1, 9), seed=141
        )
        scenario = build_containment(workload).feed()
        product_times = {}
        for stream, row, ts in workload.trace:
            if stream == "r1":
                product_times[row["tagid"]] = ts
        count_ok = first_ok = last_ok = 0
        for row in scenario.rows():
            case = row["tagid"]
            items = workload.truth[case]
            if row["count_R1"] == len(items):
                count_ok += 1
            if row["first_R1_tagtime"] == product_times[items[0]]:
                first_ok += 1
        # LAST is implied by the guard (R2 - LAST <= 5s) holding; recompute:
        for row in scenario.rows():
            case = row["tagid"]
            items = workload.truth[case]
            if row["tagtime"] - product_times[items[-1]] <= 5.0:
                last_ok += 1
        total_items = sum(len(v) for v in workload.truth.values())
        table.add(n_cases, total_items, f"{count_ok}/{n_cases}",
                  f"{first_ok}/{n_cases}", f"{last_ok}/{n_cases}")
        assert count_ok == first_ok == last_ok == n_cases
    table_printer(table)


def test_multi_return_row_counts():
    """Footnote 4: K tuples in the star run -> K returned rows."""
    workload = packing_workload(n_cases=20, seed=142)
    scenario = build_containment(workload, per_item=True).feed()
    grouped = defaultdict(list)
    for row in scenario.rows():
        grouped[row["tagid_2"]].append(row["tagid"])
    for case, items in workload.truth.items():
        assert grouped[case] == items
    assert len(scenario.rows()) == sum(
        len(items) for items in workload.truth.values()
    )


def test_aggregated_output_throughput(benchmark):
    workload = packing_workload(n_cases=50, products_per_case=(4, 10),
                                seed=143)

    def run():
        scenario = build_containment(workload)
        scenario.feed()
        return len(scenario.rows())

    benchmark(run)


def test_per_tuple_output_throughput(benchmark):
    workload = packing_workload(n_cases=50, products_per_case=(4, 10),
                                seed=143)

    def run():
        scenario = build_containment(workload, per_item=True)
        scenario.feed()
        return len(scenario.rows())

    benchmark(run)
