"""STATE — indexed SEQ state layer vs. the reference enumeration.

Regenerates: the ``operator_state`` report comparing ``indexed_state=True``
(predecessor cuts, bisected window eviction, partition expiry heap) against
the reference path on the dense re-read variant of the Example 6 quality
workload, plus the idle-partition arms that show per-tick expiry work.
Correctness is part of the measurement: the arms must emit identical match
counts (operator driver) and identical rows (query driver), or the runner
raises.

Expected shape:

* the indexed operator arm is >= 2x the reference arm's throughput on the
  dense-enumeration workload (the floor is relaxable via
  ``REPRO_BENCH_MIN_STATE_SPEEDUP`` for pathologically noisy hosts, but
  defaults to the claim in ``docs/PERFORMANCE.md``);
* the reference path's worst single expiry tick (``max_tick_touches``)
  grows with the idle-partition count, while the expiry heap's stays flat
  — that is the O(partitions)-sweep fix in one number;
* after the closing heartbeat the heap arm holds zero state (the
  arrival-driven sweep cannot drain without another arrival).

Writes ``BENCH_operator_state.json`` to the repository root.
"""

import os

from repro.bench import ResultTable, run_operator_state

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_PRODUCTS = int(os.environ.get("REPRO_BENCH_STATE_PRODUCTS", "150"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_STATE_SPEEDUP", "2.0"))
IDLE_COUNTS = (500, 2000)


def _entry(report, label):
    return next(e for e in report.experiments if e["label"] == label)


def test_operator_state_report(table_printer):
    report = run_operator_state(
        n_products=N_PRODUCTS, idle_counts=IDLE_COUNTS, reps=REPS
    )

    table = ResultTable(
        "STATE  indexed vs. reference SEQ state layer",
        ["config", "tuples", "tuples/s", "p99 us", "peak state",
         "max tick touches"],
    )
    for entry in report.experiments:
        latency = entry.get("latency_us")
        table.add(
            entry["label"], entry["n_tuples"],
            entry["throughput_tuples_per_s"],
            f"{latency['p99']:.0f}" if latency else "-",
            entry.get("state_size", "-"),
            entry.get("max_tick_touches", "-"),
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # The headline claim: indexed enumeration beats the reference path by
    # at least MIN_SPEEDUP on the dense many-partition workload.
    speedup = report.meta["speedup_indexed_vs_naive"]
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x indexed-vs-naive, got {speedup:.2f}x"
    )

    # Both arms saw identical state high-water marks (same admissions and
    # evictions — the index changes cost, not semantics).
    assert (
        _entry(report, "indexed")["state_size"]
        == _entry(report, "naive")["state_size"]
    )

    # Per-tick expiry work: the reference sweep's worst tick grows with
    # the idle-partition count; the heap's does not.
    small, large = IDLE_COUNTS
    naive_small = _entry(report, f"idle-{small}-naive")["max_tick_touches"]
    naive_large = _entry(report, f"idle-{large}-naive")["max_tick_touches"]
    heap_small = _entry(report, f"idle-{small}-indexed")["max_tick_touches"]
    heap_large = _entry(report, f"idle-{large}-indexed")["max_tick_touches"]
    assert naive_large >= naive_small * (large // small) * 0.5, (
        f"reference sweep should scale with partitions: "
        f"{naive_small} -> {naive_large}"
    )
    assert heap_large <= max(8, heap_small * 2), (
        f"expiry heap per-tick work should stay flat: "
        f"{heap_small} -> {heap_large}"
    )
    assert heap_large < naive_large

    # The heartbeat drained the heap arm completely; the arrival-driven
    # sweep still holds every in-window one-shot tag.
    assert _entry(report, f"idle-{large}-indexed")["final_state_size"] == 0
