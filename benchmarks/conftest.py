"""Shared helpers for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets each benchmark print its result table — the rows and
series that stand in for the paper's (non-existent) measurement tables.
Every benchmark also asserts the *shape* claims from EXPERIMENTS.md, so a
regression in who-wins/by-how-much fails the run, not just the numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def table_printer(capsys):
    """Print a ResultTable even under output capture."""

    def show(table) -> None:
        with capsys.disabled():
            table.print()

    return show
