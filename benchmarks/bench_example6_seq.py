"""E6 — Example 6: the four-step quality-check SEQ query.

Regenerates: detection correctness (completed products only) and the cost
profile of SEQ(C1..C4) with per-tag equality joins as the product count
grows, under the paper's recommended RECENT evaluation and the verbatim
UNRESTRICTED default.

Expected shape: both modes find exactly the completed products (per-tag
partitions make them equivalent here); RECENT holds less state than
UNRESTRICTED on the same trace.
"""

from repro.bench import ResultTable
from repro.rfid import build_quality_check, quality_check_workload


def test_quality_check_scaling_table(table_printer):
    table = ResultTable(
        "E6  Example 6: SEQ(C1,C2,C3,C4) + tagid equality joins",
        ["products", "dropout", "tuples", "completed", "detected",
         "chronicle_state", "recent_state", "unrestricted_state"],
    )
    for n_products, dropout in ((50, 0.0), (100, 0.15), (200, 0.3)):
        scenarios = {}
        for label, mode in (("chronicle", "CHRONICLE"), ("recent", "RECENT"),
                            ("unrestricted", None)):
            workload = quality_check_workload(
                n_products=n_products, dropout_rate=dropout, seed=121
            )
            scenario = build_quality_check(workload, mode=mode).feed()
            detected = {row["tagid"] for row in scenario.rows()}
            assert detected == set(workload.truth), label
            scenarios[label] = scenario
        states = {
            label: scenario.handle.operator.state_size
            for label, scenario in scenarios.items()
        }
        table.add(
            n_products, dropout, len(workload.trace), len(workload.truth),
            len(detected), states["chronicle"], states["recent"],
            states["unrestricted"],
        )
        # CHRONICLE consumes completed products' tuples: only dropouts and
        # in-flight products remain in its history.
        assert states["chronicle"] <= states["unrestricted"]
        if dropout == 0.0:
            assert states["chronicle"] < states["unrestricted"]
    table_printer(table)


def test_seq_throughput_recent(benchmark):
    workload = quality_check_workload(n_products=150, seed=122)

    def run():
        scenario = build_quality_check(workload)
        scenario.feed()
        return len(scenario.rows())

    detected = benchmark(run)
    assert detected == len(workload.truth)


def test_seq_throughput_unrestricted(benchmark):
    workload = quality_check_workload(n_products=150, seed=122)

    def run():
        scenario = build_quality_check(workload, mode=None)
        scenario.feed()
        return len(scenario.rows())

    detected = benchmark(run)
    assert detected == len(workload.truth)
