"""MULTIQ — shared multi-query execution vs one engine per query.

Regenerates: the registered-query scaling sweep of
:func:`repro.bench.run_multi_query`.  The workload is N per-tag filter
queries over one ``readings`` stream — the paper's deployment shape,
where every department and reader registers its own continuous query.
The shared arm runs all N through one Engine + QueryRegistry (ingestion
once per tuple, tag-equality predicates hoisted into a hash-indexed
router, identical plans deduped); the naive arm pays the full price of
N private engines.  Correctness is part of the measurement: the runner
raises unless sampled subscriptions are byte-identical to independent
single-engine runs and every subscription's answer count is exact.

Expected shape: naive cost grows linearly with N (every tuple is pushed
N times) while shared dispatch is one hash lookup per tuple regardless
of N, so the gap widens with scale; the ``dedup-seq`` arm shows N
identical SEQ registrations collapsing onto a single operator.

Both arms are single-process and single-threaded, so the speedup floor
is asserted whenever the report is not tagged ``cpu_limited`` (it never
is for this benchmark, but the gate keeps the convention).

Writes ``BENCH_multi_query.json`` to the repository root.
"""

import os

from repro.bench import ResultTable, multi_query_speedup, run_multi_query

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_ROWS = int(os.environ.get("REPRO_BENCH_MQ_ROWS", "2000"))
QUERY_COUNTS = tuple(
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_MQ_QUERIES", "1000,10000,100000"
    ).split(",")
)
NAIVE_AT = int(os.environ.get("REPRO_BENCH_MQ_NAIVE_AT", "1000"))
MIN_SHARED_VS_NAIVE = 5.0


def test_multi_query_scaling(table_printer):
    report = run_multi_query(
        query_counts=QUERY_COUNTS,
        n_rows=N_ROWS,
        naive_at=NAIVE_AT,
        dedup_queries=min(QUERY_COUNTS),
        reps=REPS,
    )

    table = ResultTable(
        "MULTIQ  shared multi-query execution vs per-query engines",
        ["config", "queries", "tuples", "seconds", "tuples/s",
         "register_s"],
    )
    for entry in report.experiments:
        table.add(
            entry["label"],
            entry["params"]["queries"],
            entry["n_tuples"],
            entry["seconds"],
            entry["throughput_tuples_per_s"],
            round(entry.get("register_seconds", 0.0), 3),
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Every scale ran a shared arm; reaching here at all means sampled
    # subscriptions were byte-identical to single-engine runs and the
    # dedup arm collapsed to one shared plan.
    labels = {entry["label"] for entry in report.experiments}
    for count in QUERY_COUNTS:
        assert f"shared-{count}" in labels

    # The headline claim: shared execution >= 5x over naive per-query
    # engines at the smallest measured scale.  Single process — the
    # cpu_limited gate is the repo convention, not a real expectation.
    floor_scale = min(count for count in QUERY_COUNTS if count <= NAIVE_AT)
    speedup = multi_query_speedup(report, floor_scale)
    assert speedup is not None
    if not report.meta.get("cpu_limited"):
        assert speedup >= MIN_SHARED_VS_NAIVE, (
            f"expected shared execution >= {MIN_SHARED_VS_NAIVE}x over "
            f"naive per-query engines at {floor_scale} queries, got "
            f"{speedup:.2f}x"
        )
