"""ADMIT — columnar vectorized admission vs the scalar compiled path.

Regenerates: the selectivity sweep of
:func:`repro.bench.run_vectorized_admission`.  Both headline arms
consume the *same* pre-built ``ColumnBatch`` stream through the same
compiled filter query; the only difference is the Engine's
``vectorized_admission`` flag, so the gap is the admission tier itself —
whole-column predicate evaluation plus survivor-only ``Tuple``
materialization versus materialize-then-check per row.  A third ``rows``
arm feeds identical records through the per-record ``push_batch`` path
for context.  Correctness is part of the measurement: every arm must
produce byte-identical output (values, timestamps, order) or the runner
raises.

Expected shape: the vectorized arm wins biggest at low selectivity
(at 1% it skips materializing ~99% of rows) and the gap narrows as the
filter passes more rows and materialization dominates both arms.  The
speedup floor is asserted unconditionally — the benchmark is single
process, so there is no CPU-count gate.

Writes ``BENCH_vectorized_admission.json`` to the repository root.
"""

import os

from repro.bench import (
    ResultTable,
    run_vectorized_admission,
    vectorized_speedup,
)

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_ROWS = int(os.environ.get("REPRO_BENCH_ADMISSION_ROWS", "100000"))
SELECTIVITIES = (0.01, 0.10, 0.50)
MIN_VECTORIZED_VS_SCALAR = 2.0


def test_vectorized_admission_ablation(table_printer):
    report = run_vectorized_admission(
        n_rows=N_ROWS,
        selectivities=SELECTIVITIES,
        reps=REPS,
    )

    table = ResultTable(
        "ADMIT  vectorized admission ablation (uniform-pressure filter)",
        ["config", "selectivity", "tuples", "seconds", "tuples/s",
         "admitted"],
    )
    for entry in report.experiments:
        table.add(
            entry["label"],
            f"{entry['params']['selectivity'] * 100:g}%",
            entry["n_tuples"],
            entry["seconds"],
            entry["throughput_tuples_per_s"],
            entry["rows_admitted"],
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Report shape: every arm ran at every selectivity and admitted the
    # expected fraction; reaching here at all means all three arms
    # produced byte-identical outputs.
    assert report.meta["effective_cpu_count"] >= 1
    for threshold in SELECTIVITIES:
        pct = f"{threshold * 100:g}pct"
        for arm in ("scalar", "vectorized", "rows"):
            (entry,) = [
                e for e in report.experiments
                if e["label"] == f"{arm}-{pct}"
            ]
            admitted = entry["rows_admitted"]
            # Uniform pressures: the admitted fraction tracks the
            # threshold (generous tolerance — it's a sanity check on the
            # workload, not a statistics test).
            assert abs(admitted / entry["n_tuples"] - threshold) < 0.02

    # The headline claim: vectorized admission >= 2x over the scalar
    # compiled path at 1% selectivity, single process — no CPU gate.
    speedup = vectorized_speedup(report, min(SELECTIVITIES))
    assert speedup is not None
    assert speedup >= MIN_VECTORIZED_VS_SCALAR, (
        f"expected vectorized admission >= {MIN_VECTORIZED_VS_SCALAR}x "
        f"over the scalar compiled path at {min(SELECTIVITIES):.0%} "
        f"selectivity, got {speedup:.2f}x"
    )
