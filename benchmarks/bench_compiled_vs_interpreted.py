"""A6 — ablation: compiled execution fast path vs. interpreted AST walk.

Regenerates: the cost of interpreting expression trees per tuple.  The
same two workloads run twice each — once on an engine built with
``compile_expressions=False`` and fed tuple-by-tuple through
:meth:`Engine.push` (the interpreted baseline: AST walks for every
predicate, full clock advancement and stream lookup per record), and once
on the default compiled engine fed through :meth:`Engine.run_trace`
(closure-compiled predicates, per-subscription operator dispatch, fused
batch ingestion).

Workloads:

* **quality** — Example 6's four-stream SEQ with a tagid equality chain
  (hoisted to ``partition_by`` in both arms, so the speedup isolates the
  runtime fast path rather than guard compilation).
* **dedup** — Example 1's windowed ``NOT EXISTS`` duplicate filter,
  where the residual predicate really is interpreted vs. compiled.

Expected shape: identical result rows in both arms, and compiled
throughput at least ``MIN_RATIO`` times the interpreted throughput
(typically 2x or better on both workloads).  Results are also written to
``BENCH_compiled_vs_interpreted.json`` via :class:`repro.bench.BenchReport`
for the perf-trajectory archive.

Methodology notes: the two arms are interleaved within each repetition
(so thermal/background drift hits both equally), the timed region runs
with GC disabled, and each arm's best (minimum) time across repetitions
is what's compared — the standard way to reject scheduler noise when
benchmarking CPython.
"""

from __future__ import annotations

import gc
import os
import time

from repro.bench import BenchReport, ResultTable
from repro.rfid import (
    build_dedup,
    build_quality_check,
    dedup_workload,
    quality_check_workload,
)

# Repetitions for best-of-N timing; override with REPRO_BENCH_REPS for
# quick smoke runs (CI uses 3).
REPS = int(os.environ.get("REPRO_BENCH_REPS", "7"))

# Conservative floor for the assertion: measured ratios sit around 2x,
# but a loaded CI box deserves headroom before the run goes red.
MIN_RATIO = 1.4


def _run_interpreted(build, workload):
    """Seed-style execution: AST walks + per-record Engine.push."""
    scn = build(workload, compile_expressions=False)
    push = scn.engine.push
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for stream_name, values, ts in workload.trace:
            push(stream_name, values, ts)
        scn.engine.flush()
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return scn.rows(), elapsed


def _run_compiled(build, workload):
    """Fast path: compiled expressions + batched trace ingestion."""
    scn = build(workload)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        scn.engine.run_trace(workload.trace)
        scn.engine.flush()
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return scn.rows(), elapsed, scn


def _sample_latencies(build, workload):
    """Per-tuple delivery latencies (seconds) on the compiled path.

    Times each record individually through the same ingester closures
    ``run_trace`` uses; a separate pass from the throughput runs so the
    per-record clock reads never pollute the batch timing.
    """
    scn = build(workload)
    engine = scn.engine
    ingesters = {}
    get = engine.streams.get
    advance = engine.clock.advance_if_due
    clock = time.perf_counter
    latencies = []
    append = latencies.append
    for stream_name, values, ts in workload.trace:
        ingest = ingesters.get(stream_name)
        if ingest is None:
            ingest = ingesters[stream_name] = get(stream_name).batch_ingester()
        started = clock()
        advance(ts)
        ingest(values, ts)
        append(clock() - started)
    engine.flush()
    return latencies


def _measure(build, workload):
    """Interleaved best-of-REPS comparison of the two arms."""
    best_interp = float("inf")
    best_comp = float("inf")
    last_scn = None
    for _ in range(REPS):
        rows_i, secs_i = _run_interpreted(build, workload)
        rows_c, secs_c, last_scn = _run_compiled(build, workload)
        assert rows_c == rows_i, (
            "compiled and interpreted paths disagree: "
            f"{len(rows_c)} vs {len(rows_i)} rows"
        )
        best_interp = min(best_interp, secs_i)
        best_comp = min(best_comp, secs_c)
    return best_interp, best_comp, len(rows_i), last_scn


def test_compiled_vs_interpreted(table_printer):
    table = ResultTable(
        "A6  Compiled fast path vs interpreted AST walk",
        ["workload", "tuples", "rows", "interp_ms", "compiled_ms", "speedup"],
    )
    report = BenchReport(
        "compiled_vs_interpreted",
        meta={"reps": REPS, "best_of": True, "gc_disabled": True},
    )

    cases = [
        (
            "quality_seq",
            build_quality_check,
            quality_check_workload(n_products=400, seed=122),
        ),
        (
            "dedup_exists",
            build_dedup,
            dedup_workload(n_tags=60, presences_per_tag=4, dwell=1.0, seed=72),
        ),
    ]

    ratios = {}
    for label, build, workload in cases:
        n_tuples = len(workload.trace)
        secs_i, secs_c, n_rows, scn = _measure(build, workload)
        latencies = _sample_latencies(build, workload)
        operator = getattr(scn.handle, "operator", None)
        state = operator.state_size if operator is not None else None
        ratio = secs_i / secs_c if secs_c > 0 else float("inf")
        ratios[label] = ratio
        table.add(
            label, n_tuples, n_rows, secs_i * 1000, secs_c * 1000, ratio
        )
        report.add_experiment(
            f"{label}:interpreted",
            n_tuples=n_tuples,
            seconds=secs_i,
            params={"compile_expressions": False, "ingestion": "push"},
            rows=n_rows,
        )
        report.add_experiment(
            f"{label}:compiled",
            n_tuples=n_tuples,
            seconds=secs_c,
            latencies_s=latencies,
            state_size=state,
            params={"compile_expressions": True, "ingestion": "run_trace"},
            rows=n_rows,
            speedup_vs_interpreted=ratio,
        )

    path = report.write()
    table_printer(table)
    print(f"wrote {path}")

    for label, ratio in ratios.items():
        assert ratio >= MIN_RATIO, (
            f"{label}: compiled path only {ratio:.2f}x faster than "
            f"interpreted (floor {MIN_RATIO}x)"
        )
