"""E1 — Example 1: duplicate elimination.

Regenerates: compression and accuracy of the paper's windowed NOT EXISTS
dedup filter across duplication intensities, plus its throughput.

Expected shape: output size == ground-truth logical readings at every
duplication level (precision = recall = 1), and raw/clean ratio grows with
the dwell time.
"""

from repro.bench import Accuracy, ResultTable
from repro.rfid import build_dedup, dedup_workload


def run_dedup(dwell: float, read_interval: float = 0.25):
    workload = dedup_workload(
        n_tags=40, presences_per_tag=3, dwell=dwell,
        read_interval=read_interval, seed=71,
        # Presences of a tag must be separated by more than the 1s dedup
        # window beyond the dwell, or consecutive presences merge into one
        # duplicate chain (which the filter would — correctly — collapse).
        presence_gap=dwell + 5.0,
    )
    scenario = build_dedup(workload).feed()
    detected = {(r["tag_id"], r["read_time"]) for r in scenario.rows()}
    accuracy = Accuracy.from_sets(detected, set(workload.truth))
    return workload, scenario, accuracy


def test_dedup_accuracy_across_duplication_levels(table_printer):
    table = ResultTable(
        "E1  Example 1: duplicate elimination (1s window)",
        ["dwell_s", "raw_reads", "clean_reads", "dup_factor", "precision",
         "recall"],
    )
    for dwell in (0.0, 0.5, 1.0, 2.0, 4.0):
        workload, scenario, accuracy = run_dedup(dwell)
        raw = len(workload.trace)
        clean = len(scenario.rows())
        table.add(dwell, raw, clean, raw / clean if clean else 0,
                  accuracy.precision, accuracy.recall)
        assert accuracy.exact, f"dedup must be exact at dwell={dwell}"
    table_printer(table)


def test_dedup_throughput(benchmark):
    workload = dedup_workload(n_tags=60, presences_per_tag=4, dwell=1.0,
                              seed=72)

    def run():
        scenario = build_dedup(workload)
        scenario.feed()
        return len(scenario.rows())

    clean = benchmark(run)
    assert clean == len(workload.truth)
