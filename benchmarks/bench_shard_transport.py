"""WIRE — shard-transport ablation: futures pool vs persistent pipe workers.

Regenerates: the three-arm transport ablation of
:func:`repro.bench.run_shard_transport` on the Example 6 quality-check
workload.  The arms move the same records to the same shard engines over
different plumbing — the legacy ``ProcessPoolExecutor`` submit-per-batch
transport (``futures-pickle``), persistent pipe workers with whole-pickle
payloads (``pipe-pickle``), and persistent pipe workers with struct-packed
columnar frames (``pipe-framed``).  Correctness is part of the
measurement: every arm's merged rows must equal the single-engine output
row for row, or the runner raises.

Expected shape: ``pipe-framed`` beats ``futures-pickle`` by >= 2x
wall-clock *when the host has cores for the pipeline to overlap onto*
(router and workers on separate CPUs, so latency hiding and the smaller
frames pay off).  On a 1-core container every arm serializes onto the
same CPU, wall-clock collapses to total CPU work, and the arms read as a
parity check; those runs are tagged ``cpu_limited`` in the report and the
speedup floor is asserted only when ``effective_cpu_count()`` covers the
smallest shard count — or unconditionally when
``REPRO_BENCH_REQUIRE_SCALING=1``.

The wire accounting (bytes each way per record, round trips, heartbeat
share) comes from :meth:`repro.ShardedEngine.transport_stats` and is
asserted unconditionally — it is deterministic plumbing behavior, not a
timing claim.

Writes ``BENCH_shard_transport.json`` to the repository root.
"""

import os

from repro.bench import (
    TRANSPORT_ARMS,
    ResultTable,
    effective_cpu_count,
    run_shard_transport,
    transport_speedup,
    wire_summary,
)

REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))
N_PRODUCTS = int(os.environ.get("REPRO_BENCH_TRANSPORT_PRODUCTS", "600"))
SHARD_COUNTS = (2, 4)
MIN_FRAMED_VS_FUTURES = 2.0


def _require_speedup() -> bool:
    override = os.environ.get("REPRO_BENCH_REQUIRE_SCALING")
    if override is not None:
        return override not in ("", "0")
    return effective_cpu_count() >= min(SHARD_COUNTS) + 1


def test_shard_transport_ablation(table_printer):
    report = run_shard_transport(
        n_products=N_PRODUCTS,
        shard_counts=SHARD_COUNTS,
        reps=REPS,
    )

    table = ResultTable(
        "WIRE  shard-transport ablation (Example 6, weak scaling)",
        ["config", "shards", "tuples", "seconds", "tuples/s",
         "B/rec out", "B/rec in", "rt/1k"],
    )
    for entry in report.experiments:
        label = entry["label"]
        if entry.get("cpu_limited"):
            label += " (cpu-limited)"
        totals = entry.get("transport")
        wire = wire_summary(totals, entry["n_tuples"]) if totals else None
        table.add(
            label, entry.get("shards", "-"),
            entry["n_tuples"], entry["seconds"],
            entry["throughput_tuples_per_s"],
            f"{wire['bytes_sent_per_record']:.0f}" if wire else "-",
            f"{wire['bytes_received_per_record']:.0f}" if wire else "-",
            f"{wire['round_trips_per_1k_records']:.1f}" if wire else "-",
        )
    table_printer(table)

    path = report.write(os.path.join(os.path.dirname(__file__), ".."))
    assert os.path.exists(path)

    # Report shape: every arm ran at every shard count, with transport
    # counters and a cpu_limited tag; reaching here at all means every
    # arm matched the single-engine reference row for row.
    cpus = effective_cpu_count()
    assert report.meta["scaling_mode"] == "weak"
    assert report.meta["cpu_limited"] == (cpus < max(SHARD_COUNTS) + 1)
    arm_labels = [label for label, _, _ in TRANSPORT_ARMS]
    for n_shards in SHARD_COUNTS:
        for label in arm_labels:
            (entry,) = [
                e for e in report.experiments
                if e["label"] == f"{label}-{n_shards}"
            ]
            assert entry["cpu_limited"] == (n_shards + 1 > cpus)
            totals = entry["transport"]
            # Deterministic wire accounting, independent of host speed:
            # hash routing ships each record once, the pipe arms count
            # bytes both ways, and every frame sent was acknowledged.
            assert totals["records_sent"] == entry["n_tuples"]
            assert totals["bytes_sent"] > 0
            if label.startswith("pipe-"):
                assert totals["bytes_received"] > 0
                assert totals["round_trips"] > 0

    # The framed codec's whole point is fewer bytes on the wire: its
    # per-record payload must undercut whole-pickle on the same records.
    for n_shards in SHARD_COUNTS:
        by_label = {
            e["label"]: e for e in report.experiments
            if e.get("transport")
        }
        framed = by_label[f"pipe-framed-{n_shards}"]["transport"]
        pickled = by_label[f"pipe-pickle-{n_shards}"]["transport"]
        assert framed["bytes_sent"] < pickled["bytes_sent"], (
            f"framed codec sent more bytes than pickle at {n_shards} "
            f"shards: {framed['bytes_sent']} vs {pickled['bytes_sent']}"
        )

    speedup = transport_speedup(report, min(SHARD_COUNTS))
    assert speedup is not None
    if _require_speedup():
        assert speedup >= MIN_FRAMED_VS_FUTURES, (
            f"expected pipe-framed >= {MIN_FRAMED_VS_FUTURES}x over "
            f"futures-pickle at {min(SHARD_COUNTS)} shards on a "
            f"{cpus}-CPU host, got {speedup:.2f}x"
        )
    else:
        print(
            f"\n(speedup floor skipped: {cpus} CPU(s) available, arms "
            f"share cores; measured {speedup:.2f}x at "
            f"{min(SHARD_COUNTS)} shards — parity is the pass bar here)"
        )
